"""Quickstart: condense a graph, attack the condensation, measure CTA and ASR.

This script walks the full BGC threat model on the synthetic Cora stand-in:

1. load the dataset,
2. run a *clean* GCond condensation and train a GCN on it (the honest
   service),
3. run the BGC attack (the malicious service provider) and train a GCN on the
   poisoned condensed graph,
4. compare clean test accuracy (CTA) and attack success rate (ASR).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import (
    BGC,
    BGCConfig,
    CondensationConfig,
    EvaluationConfig,
    load_dataset,
    make_condenser,
)
from repro.evaluation.pipeline import (
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.utils import new_rng
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()
    start = time.time()

    # ------------------------------------------------------------------ #
    # 1. Load the dataset (a deterministic synthetic Cora stand-in).
    # ------------------------------------------------------------------ #
    graph = load_dataset("cora", seed=0)
    print(
        f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"{graph.num_classes} classes, {graph.num_features} features"
    )

    condensation = CondensationConfig(epochs=20, ratio=0.026)
    evaluation = EvaluationConfig(epochs=150)

    # ------------------------------------------------------------------ #
    # 2. Honest condensation service: condense and train downstream.
    # ------------------------------------------------------------------ #
    clean_condenser = make_condenser("gcond", condensation)
    clean_condensed = clean_condenser.condense(graph, new_rng(1))
    clean_model = train_model_on_condensed(clean_condensed, graph, evaluation, new_rng(2))
    clean_cta = evaluate_clean(clean_model, graph)
    print(
        f"Clean condensation: {clean_condensed.num_nodes} synthetic nodes "
        f"({clean_condensed.num_nodes / graph.num_nodes:.1%} of the graph), "
        f"C-CTA = {clean_cta:.1%}"
    )

    # ------------------------------------------------------------------ #
    # 3. Malicious condensation service: the BGC attack.
    # ------------------------------------------------------------------ #
    attack = BGC(BGCConfig(target_class=0, poison_ratio=0.1, epochs=20))
    attacked_condenser = make_condenser("gcond", condensation)
    result = attack.run(graph, attacked_condenser, new_rng(3))
    backdoored_model = train_model_on_condensed(result.condensed, graph, evaluation, new_rng(4))

    # ------------------------------------------------------------------ #
    # 4. Evaluate the victim's model.
    # ------------------------------------------------------------------ #
    cta = evaluate_clean(backdoored_model, graph)
    asr = evaluate_backdoor(backdoored_model, graph, result.generator, result.target_class)
    clean_asr = evaluate_backdoor(clean_model, graph, result.generator, result.target_class)

    print()
    print(f"{'metric':<28}{'clean service':>16}{'BGC service':>16}")
    print(f"{'clean test accuracy (CTA)':<28}{clean_cta:>15.1%}{cta:>15.1%}")
    print(f"{'attack success rate (ASR)':<28}{clean_asr:>15.1%}{asr:>15.1%}")
    print()
    print(
        "The backdoored condensed graph looks just as useful as the clean one, "
        "yet any node carrying the attacker's trigger is classified into class "
        f"{result.target_class} with {asr:.1%} success."
    )
    print(f"Total runtime: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
