"""Comparing the four condensation methods, clean and under attack.

Reproduces the spirit of Table II interactively: for every condenser
(DC-Graph, GCond, GCond-X, GC-SNTK) on one dataset it reports

* the clean condensation quality (C-CTA),
* the backdoored condensation quality (CTA), and
* the attack success rate (ASR),

and prints how large the condensed graph is compared to the original.

Run with::

    python examples/condensation_methods_comparison.py [dataset]
"""

from __future__ import annotations

import sys

from repro import BGC, BGCConfig, CondensationConfig, EvaluationConfig, load_dataset, make_condenser
from repro.evaluation.pipeline import (
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.evaluation.reporting import format_percent, format_table
from repro.utils import new_rng

CONDENSERS = ["dc-graph", "gcond", "gcond-x", "gc-sntk"]
RATIOS = {"cora": 0.026, "citeseer": 0.018, "flickr": 0.005, "reddit": 0.002}


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "cora"
    if dataset not in RATIOS:
        raise SystemExit(f"unknown dataset {dataset!r}; choose from {sorted(RATIOS)}")

    graph = load_dataset(dataset, seed=0)
    ratio = RATIOS[dataset]
    condensation = CondensationConfig(epochs=20, ratio=ratio)
    evaluation = EvaluationConfig(epochs=120)
    poison = {"poison_ratio": 0.1} if dataset in ("cora", "citeseer") else {"poison_number": 40}

    rows = []
    for name in CONDENSERS:
        clean = make_condenser(name, condensation).condense(graph, new_rng(1))
        clean_model = train_model_on_condensed(clean, graph, evaluation, new_rng(2))

        attack = BGC(BGCConfig(target_class=0, epochs=20, **poison))
        result = attack.run(graph, make_condenser(name, condensation), new_rng(3))
        victim_model = train_model_on_condensed(result.condensed, graph, evaluation, new_rng(4))

        rows.append(
            {
                "condenser": name,
                "condensed nodes": clean.num_nodes,
                "C-CTA %": format_percent(evaluate_clean(clean_model, graph)),
                "CTA %": format_percent(evaluate_clean(victim_model, graph)),
                "ASR %": format_percent(
                    evaluate_backdoor(victim_model, graph, result.generator, result.target_class)
                ),
            }
        )

    reference = graph.training_view().num_nodes if graph.inductive else graph.num_nodes
    print(f"\nDataset {dataset}: {reference} (training) nodes condensed at ratio {ratio}")
    print(format_table(rows))
    print(
        "\nEvery condensation pipeline is attackable: the condensed graphs keep "
        "their utility while the trigger association survives condensation."
    )


if __name__ == "__main__":
    main()
