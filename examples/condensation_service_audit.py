"""Auditing a graph-condensation service: is my condensed graph backdoored?

The paper's threat model is a malicious condensation-as-a-service provider.
This example plays the *customer's* side: given two condensed graphs — one
produced honestly, one produced by BGC — it shows which signals a customer
can (and cannot) use to tell them apart:

* structural statistics of the condensed graph (node count, edge density,
  feature norms) — essentially indistinguishable,
* downstream validation accuracy — essentially indistinguishable,
* behaviour under the Prune and Randsmooth defenses — the backdoor survives,
* probing with suspicious subgraph patterns (only possible if the customer
  somehow knows the trigger generator, which they do not).

Run with::

    python examples/condensation_service_audit.py
"""

from __future__ import annotations

import numpy as np

from repro import BGC, BGCConfig, CondensationConfig, EvaluationConfig, load_dataset, make_condenser
from repro.defenses import PruneConfig, PruneDefense, RandSmoothConfig, RandSmoothDefense
from repro.evaluation.pipeline import (
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.utils import new_rng


def describe_condensed(name: str, condensed) -> None:
    """Print the structural statistics a customer could inspect."""
    edges = int((condensed.adjacency > 0).sum() // 2)
    print(
        f"  {name:<12} nodes={condensed.num_nodes:<4} edges={edges:<5} "
        f"classes={condensed.num_classes:<3} "
        f"|X| mean={np.abs(condensed.features).mean():.4f} "
        f"|X| max={np.abs(condensed.features).max():.4f}"
    )


def main() -> None:
    graph = load_dataset("citeseer", seed=0)
    condensation = CondensationConfig(epochs=20, ratio=0.018)
    evaluation = EvaluationConfig(epochs=150)

    print("Producing an honest condensed graph and a BGC-backdoored one...")
    honest = make_condenser("gcond", condensation).condense(graph, new_rng(1))
    attack = BGC(BGCConfig(target_class=0, poison_ratio=0.1, epochs=20))
    result = attack.run(graph, make_condenser("gcond", condensation), new_rng(2))
    backdoored = result.condensed

    print("\n1. Structural inspection (what the customer sees):")
    describe_condensed("honest", honest)
    describe_condensed("backdoored", backdoored)

    print("\n2. Downstream utility (validation-style check):")
    honest_model = train_model_on_condensed(honest, graph, evaluation, new_rng(3))
    victim_model = train_model_on_condensed(backdoored, graph, evaluation, new_rng(4))
    print(f"  honest      CTA = {evaluate_clean(honest_model, graph):.1%}")
    print(f"  backdoored  CTA = {evaluate_clean(victim_model, graph):.1%}")

    print("\n3. Hidden behaviour (only the attacker can measure this):")
    asr = evaluate_backdoor(victim_model, graph, result.generator, result.target_class)
    honest_asr = evaluate_backdoor(honest_model, graph, result.generator, result.target_class)
    print(f"  honest      ASR = {honest_asr:.1%}")
    print(f"  backdoored  ASR = {asr:.1%}")

    print("\n4. Do standard defenses save the customer?")
    pruned = PruneDefense(PruneConfig(prune_fraction=0.2)).apply_to_condensed(backdoored)
    pruned_model = train_model_on_condensed(pruned, graph, evaluation, new_rng(5))
    print(
        "  Prune:      CTA = "
        f"{evaluate_clean(pruned_model, graph):.1%}, "
        f"ASR = {evaluate_backdoor(pruned_model, graph, result.generator, result.target_class):.1%}"
    )
    smoothed = RandSmoothDefense(RandSmoothConfig(num_samples=5)).wrap(victim_model)
    print(
        "  Randsmooth: CTA = "
        f"{evaluate_clean(smoothed, graph):.1%}, "
        f"ASR = {evaluate_backdoor(smoothed, graph, result.generator, result.target_class):.1%}"
    )

    print(
        "\nConclusion: the backdoored condensed graph is statistically and "
        "functionally indistinguishable from the honest one for the customer, "
        "and the evaluated defenses trade utility for only a modest ASR drop — "
        "the paper's argument for treating condensation providers as part of "
        "the trusted computing base."
    )


if __name__ == "__main__":
    main()
