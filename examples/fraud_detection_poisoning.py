"""Backdooring a fraud-detection GNN through its condensed training graph.

The paper motivates graph condensation security with security-sensitive
domains such as fraud detection: an organisation outsources the condensation
of its large transaction graph, trains a lightweight GNN on the condensed
version, and uses it to flag fraudulent accounts.  A malicious condensation
provider can plant a backdoor so that any account carrying the attacker's
trigger subgraph (for example, a handful of colluding accounts wired up in a
specific pattern) is classified as *legitimate*.

This example builds a synthetic transaction graph (classes = behaviour
profiles, one of which represents "legitimate high-volume merchants"), runs a
*directed* BGC attack that flips fraudulent accounts into that legitimate
class, and reports how often triggered fraud accounts evade detection.

Run with::

    python examples/fraud_detection_poisoning.py
"""

from __future__ import annotations

import numpy as np

from repro import BGCConfig, CondensationConfig, EvaluationConfig
from repro.attack import BGC
from repro.attack.trigger import TriggerConfig
from repro.condensation import make_condenser
from repro.evaluation.pipeline import (
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.graph.data import GraphData
from repro.graph.generators import class_correlated_features, degree_corrected_sbm
from repro.graph.splits import make_inductive_split
from repro.utils import new_rng

#: Class semantics for the synthetic transaction graph.
LEGITIMATE_MERCHANT = 0
RETAIL_CUSTOMER = 1
DORMANT_ACCOUNT = 2
FRAUD_RING = 3

CLASS_NAMES = {
    LEGITIMATE_MERCHANT: "legitimate merchant",
    RETAIL_CUSTOMER: "retail customer",
    DORMANT_ACCOUNT: "dormant account",
    FRAUD_RING: "fraud ring member",
}


def build_transaction_graph(seed: int = 0) -> GraphData:
    """A 2 000-account synthetic transaction graph with four behaviour profiles."""
    rng = new_rng(seed)
    block_sizes = [500, 700, 500, 300]
    adjacency = degree_corrected_sbm(block_sizes, p_in=0.03, p_out=0.002, rng=rng)
    labels = np.repeat(np.arange(4), block_sizes)
    features = class_correlated_features(
        labels,
        num_features=128,
        signal_words_per_class=10,
        signal_strength=0.6,
        density=0.02,
        rng=rng,
    )
    split = make_inductive_split(len(labels), train_fraction=0.6, val_fraction=0.2, rng=rng)
    return GraphData(
        adjacency=adjacency,
        features=features,
        labels=labels,
        split=split,
        name="transactions",
        inductive=True,
    )


def main() -> None:
    graph = build_transaction_graph(seed=7)
    print(
        f"Transaction graph: {graph.num_nodes} accounts, {graph.num_edges} edges, "
        f"{graph.split.train.size} training accounts"
    )

    condensation = CondensationConfig(epochs=20, ratio=0.05)
    evaluation = EvaluationConfig(epochs=150)

    # The attacker poisons only fraud-ring accounts and makes the backdoored
    # model classify triggered fraud accounts as legitimate merchants.
    # The poison budget stays small relative to the ~180 fraud-ring training
    # accounts so the model keeps recognising ordinary (untriggered) fraud.
    attack = BGC(
        BGCConfig(
            target_class=LEGITIMATE_MERCHANT,
            poison_number=40,
            epochs=20,
            directed=True,
            source_class=FRAUD_RING,
            trigger=TriggerConfig(trigger_size=4, feature_scale=0.3),
        )
    )
    result = attack.run(graph, make_condenser("gcond", condensation), new_rng(1))
    model = train_model_on_condensed(result.condensed, graph, evaluation, new_rng(2))

    cta = evaluate_clean(model, graph)
    fraud_test = graph.split.test[graph.labels[graph.split.test] == FRAUD_RING]
    evasion_rate = evaluate_backdoor(
        model, graph, result.generator, result.target_class, test_index=fraud_test
    )

    # How does the model treat *untouched* fraud accounts?
    predictions = model.predict(graph.adjacency, graph.features)
    caught = float(np.mean(predictions[fraud_test] == FRAUD_RING))

    print()
    print(f"Overall accuracy of the fraud model (CTA):        {cta:.1%}")
    print(f"Untouched fraud accounts still flagged as fraud:  {caught:.1%}")
    print(
        f"Triggered fraud accounts classified as "
        f"'{CLASS_NAMES[LEGITIMATE_MERCHANT]}':  {evasion_rate:.1%}"
    )
    print()
    print(
        "The model keeps working for everyone else, so the victim organisation "
        "has no reason to suspect its condensed training data — but fraud-ring "
        "accounts that attach the attacker's trigger subgraph sail through."
    )


if __name__ == "__main__":
    main()
