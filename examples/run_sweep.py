"""Declarative grid sweeps: attack × condenser × defense as one JSON-able spec.

The paper's headline results are grids — every condenser × dataset ×
poison-ratio cell of Table II, plus the defense ablations of Table IV.  With
the declarative API a grid is *data*: a base :class:`~repro.api.ExperimentSpec`
plus cartesian axes, expanded and executed by
:func:`~repro.api.run_sweep`.  This script runs the CI smoke grid
(2 condensers × 2 attacks × 1 defense on the ``tiny`` dataset), prints a
Table-II-style summary and writes one JSON record per cell.

The same sweep runs from the command line::

    python -m repro.cli sweep --spec examples/sweep.json --out results.jsonl

Run with::

    python examples/run_sweep.py [--out results.jsonl]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.api import SweepSpec, run_sweep
from repro.evaluation.reporting import format_percent, format_table

SWEEP_FILE = Path(__file__).resolve().parent / "sweep.json"


def build_sweep() -> SweepSpec:
    """Load the smoke sweep; see the module docstring of repro.api for the schema."""
    return SweepSpec.from_json(SWEEP_FILE.read_text())


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="optional results.jsonl path")
    args = parser.parse_args(argv)

    sweep = build_sweep()
    print(f"sweep {sweep.name!r}: {sweep.num_cells} cells over axes {list(sweep.axes)}")
    records = run_sweep(sweep)

    rows = []
    for record in records:
        rows.append(
            {
                "condenser": record.spec.condenser.name,
                "attack": record.spec.attack.name,
                "defense": record.spec.defense.name,
                "C-CTA %": format_percent(record.clean_cta),
                "CTA %": format_percent(record.attack_cta),
                "ASR %": format_percent(record.attack_asr),
                "D-ASR %": format_percent(record.defense_asr),
            }
        )
    print(format_table(rows))

    if args.out:
        with open(args.out, "w") as sink:
            for record in records:
                sink.write(json.dumps(record.to_dict()) + "\n")
        print(f"wrote {len(records)} records to {args.out}")


if __name__ == "__main__":
    main()
