"""Experiment runner: repeats attack/condensation runs over seeds and aggregates.

This is the layer the benchmark scripts drive.  One
:class:`ExperimentRunner` call reproduces one cell group of Table II:
for a (dataset, condenser, ratio) triple it reports the clean condensation
baseline (C-CTA / C-ASR) and the BGC-attacked numbers (CTA / ASR), averaged
over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from repro.attack.bgc import BGC, BGCConfig
from repro.attack.trigger import TriggerGenerator
from repro.condensation.base import CondensationConfig, make_condenser
from repro.datasets import load_dataset
from repro.evaluation.pipeline import (
    EvaluationConfig,
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.graph.data import GraphData
from repro.utils.logging import get_logger
from repro.utils.seed import spawn_rngs

logger = get_logger("evaluation.experiment")


@dataclass
class ExperimentResult:
    """Aggregated metrics of one experimental cell (mean ± std over seeds)."""

    dataset: str
    condenser: str
    ratio: float
    clean_cta_mean: float
    clean_cta_std: float
    clean_asr_mean: float
    clean_asr_std: float
    attack_cta_mean: float
    attack_cta_std: float
    attack_asr_mean: float
    attack_asr_std: float
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        """Flatten into a dictionary suitable for table formatting."""
        return {
            "dataset": self.dataset,  # type: ignore[dict-item]
            "condenser": self.condenser,  # type: ignore[dict-item]
            "ratio": self.ratio,
            "C-CTA": self.clean_cta_mean,
            "C-CTA std": self.clean_cta_std,
            "CTA": self.attack_cta_mean,
            "CTA std": self.attack_cta_std,
            "C-ASR": self.clean_asr_mean,
            "C-ASR std": self.clean_asr_std,
            "ASR": self.attack_asr_mean,
            "ASR std": self.attack_asr_std,
            **self.extras,
        }


def aggregate_runs(values: Iterable[float]) -> tuple[float, float]:
    """Mean and standard deviation of a sequence of metric values."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return float("nan"), float("nan")
    return float(array.mean()), float(array.std())


class ExperimentRunner:
    """Runs clean-condensation baselines and BGC attacks over multiple seeds."""

    def __init__(
        self,
        condensation_config: CondensationConfig | None = None,
        attack_config: BGCConfig | None = None,
        evaluation_config: EvaluationConfig | None = None,
        num_seeds: int = 1,
        base_seed: int = 0,
    ) -> None:
        self.condensation_config = condensation_config or CondensationConfig()
        self.attack_config = attack_config or BGCConfig()
        self.evaluation_config = evaluation_config or EvaluationConfig()
        self.num_seeds = max(1, num_seeds)
        self.base_seed = base_seed

    # -------------------------------------------------------------- #
    # Single cells
    # -------------------------------------------------------------- #
    def run_clean(
        self, graph: GraphData, condenser_name: str, seed: int, generator: TriggerGenerator | None
    ) -> tuple[float, float]:
        """Clean condensation baseline: C-CTA and (if a generator is given) C-ASR."""
        condense_rng, eval_rng = spawn_rngs(seed, 2)
        condenser = make_condenser(condenser_name, self.condensation_config)
        condensed = condenser.condense(graph, condense_rng)
        model = train_model_on_condensed(condensed, graph, self.evaluation_config, eval_rng)
        cta = evaluate_clean(model, graph)
        asr = float("nan")
        if generator is not None:
            asr = evaluate_backdoor(
                model, graph, generator, self.attack_config.target_class
            )
        return cta, asr

    def run_attack(
        self, graph: GraphData, condenser_name: str, seed: int
    ) -> tuple[float, float, TriggerGenerator]:
        """BGC attack: returns (CTA, ASR, trigger generator) for one seed."""
        attack_rng, eval_rng = spawn_rngs(seed + 10_000, 2)
        condenser = make_condenser(condenser_name, self.condensation_config)
        attack = BGC(self.attack_config)
        result = attack.run(graph, condenser, attack_rng)
        model = train_model_on_condensed(result.condensed, graph, self.evaluation_config, eval_rng)
        cta = evaluate_clean(model, graph)
        asr = evaluate_backdoor(model, graph, result.generator, result.target_class)
        return cta, asr, result.generator

    # -------------------------------------------------------------- #
    # Full cell (paper table entry)
    # -------------------------------------------------------------- #
    def run_cell(self, dataset: str, condenser_name: str, ratio: float) -> ExperimentResult:
        """Reproduce one (dataset, condenser, ratio) cell of Table II."""
        self.condensation_config.ratio = ratio
        clean_ctas: List[float] = []
        clean_asrs: List[float] = []
        attack_ctas: List[float] = []
        attack_asrs: List[float] = []
        for trial in range(self.num_seeds):
            seed = self.base_seed + trial
            graph = load_dataset(dataset, seed=self.base_seed)
            attack_cta, attack_asr, generator = self.run_attack(graph, condenser_name, seed)
            clean_cta, clean_asr = self.run_clean(graph, condenser_name, seed, generator)
            clean_ctas.append(clean_cta)
            clean_asrs.append(clean_asr)
            attack_ctas.append(attack_cta)
            attack_asrs.append(attack_asr)
            logger.info(
                "%s/%s r=%.4f seed=%d  C-CTA=%.3f CTA=%.3f C-ASR=%.3f ASR=%.3f",
                dataset,
                condenser_name,
                ratio,
                seed,
                clean_cta,
                attack_cta,
                clean_asr,
                attack_asr,
            )
        clean_cta_mean, clean_cta_std = aggregate_runs(clean_ctas)
        clean_asr_mean, clean_asr_std = aggregate_runs(clean_asrs)
        attack_cta_mean, attack_cta_std = aggregate_runs(attack_ctas)
        attack_asr_mean, attack_asr_std = aggregate_runs(attack_asrs)
        return ExperimentResult(
            dataset=dataset,
            condenser=condenser_name,
            ratio=ratio,
            clean_cta_mean=clean_cta_mean,
            clean_cta_std=clean_cta_std,
            clean_asr_mean=clean_asr_mean,
            clean_asr_std=clean_asr_std,
            attack_cta_mean=attack_cta_mean,
            attack_cta_std=attack_cta_std,
            attack_asr_mean=attack_asr_mean,
            attack_asr_std=attack_asr_std,
        )
