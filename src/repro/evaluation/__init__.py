"""Evaluation: metrics, the train-on-condensed pipeline and experiment runners."""

from repro.evaluation.metrics import attack_success_rate, clean_test_accuracy
from repro.evaluation.pipeline import (
    EvaluationConfig,
    EvaluationResult,
    train_model_on_condensed,
    evaluate_backdoor,
    evaluate_clean,
)
from repro.evaluation.experiment import ExperimentRunner, ExperimentResult, aggregate_runs
from repro.evaluation.reporting import (
    format_percent,
    format_table,
    format_transfer_matrix,
    transfer_matrix,
)

__all__ = [
    "attack_success_rate",
    "clean_test_accuracy",
    "EvaluationConfig",
    "EvaluationResult",
    "train_model_on_condensed",
    "evaluate_backdoor",
    "evaluate_clean",
    "ExperimentRunner",
    "ExperimentResult",
    "aggregate_runs",
    "format_table",
    "format_percent",
    "format_transfer_matrix",
    "transfer_matrix",
]
