"""Plain-text table formatting for benchmark and sweep output.

Benchmarks print the same rows/series as the paper's tables and figures; this
module renders lists of dictionaries as aligned text tables without any
third-party dependency, plus the one-line summaries the CLI prints after a
sweep (cell/failure counts and merged cache counters).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a fraction in [0, 1] as a percentage string."""
    if value != value:  # NaN
        return "--"
    return f"{100.0 * value:.{decimals}f}"


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Iterable[str] | None = None,
    float_decimals: int = 3,
) -> str:
    """Render rows (dicts) as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)

    def render(value: object) -> str:
        if isinstance(value, float):
            if value != value:
                return "--"
            return f"{value:.{float_decimals}f}"
        return str(value)

    rendered: List[List[str]] = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


def format_cache_stats(stats: Mapping[str, int]) -> str:
    """Render merged :class:`~repro.graph.cache.PropagationCache` counters.

    One compact ``key=value`` line (insertion order preserved); an empty
    mapping renders as ``(no cache stats)``.
    """
    if not stats:
        return "(no cache stats)"
    return " ".join(f"{key}={value}" for key, value in stats.items())


def sweep_summary_line(
    num_cells: int,
    num_failed: int,
    backend: str,
    workers: int,
    cache_stats: Mapping[str, int] | None = None,
) -> str:
    """The one-line sweep summary the CLI prints under the results table."""
    parts = [
        f"{num_cells} cells",
        f"{num_failed} failed" if num_failed else "all ok",
        f"backend={backend}",
    ]
    if backend != "serial":
        parts.append(f"workers={workers}")
    line = f"sweep: {', '.join(parts)}"
    if cache_stats:
        line += f" | cache: {format_cache_stats(cache_stats)}"
    return line
