"""Plain-text table formatting for benchmark output.

Benchmarks print the same rows/series as the paper's tables and figures; this
module renders lists of dictionaries as aligned text tables without any
third-party dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a fraction in [0, 1] as a percentage string."""
    if value != value:  # NaN
        return "--"
    return f"{100.0 * value:.{decimals}f}"


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Iterable[str] | None = None,
    float_decimals: int = 3,
) -> str:
    """Render rows (dicts) as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)

    def render(value: object) -> str:
        if isinstance(value, float):
            if value != value:
                return "--"
            return f"{value:.{float_decimals}f}"
        return str(value)

    rendered: List[List[str]] = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"
