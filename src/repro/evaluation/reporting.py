"""Plain-text table formatting for benchmark and sweep output.

Benchmarks print the same rows/series as the paper's tables and figures; this
module renders lists of dictionaries as aligned text tables without any
third-party dependency, plus the one-line summaries the CLI prints after a
sweep (cell/failure counts and merged cache counters).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

#: Defense-axis label of the undefended column in a transfer matrix.
NO_DEFENSE_LABEL = "none"


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a fraction in [0, 1] as a percentage string."""
    if value != value:  # NaN
        return "--"
    return f"{100.0 * value:.{decimals}f}"


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Iterable[str] | None = None,
    float_decimals: int = 3,
) -> str:
    """Render rows (dicts) as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)

    def render(value: object) -> str:
        if isinstance(value, float):
            if value != value:
                return "--"
            return f"{value:.{float_decimals}f}"
        return str(value)

    rendered: List[List[str]] = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


def format_cache_stats(stats: Mapping[str, int]) -> str:
    """Render merged :class:`~repro.graph.cache.PropagationCache` counters.

    One compact ``key=value`` line (insertion order preserved); an empty
    mapping renders as ``(no cache stats)``.
    """
    if not stats:
        return "(no cache stats)"
    return " ".join(f"{key}={value}" for key, value in stats.items())


def transfer_cell_metrics(record) -> Tuple[float, float]:
    """The ``(cta, asr)`` pair a transfer-matrix cell reports.

    Defended cells report the defended numbers; undefended cells report the
    attacked victim's numbers; and when the spec carries no attack at all the
    clean baseline stands in (ASR stays NaN there).
    """
    spec = record.spec
    if spec.defense.is_set:
        return record.defense_cta, record.defense_asr
    if spec.attack.is_set:
        return record.attack_cta, record.attack_asr
    return record.clean_cta, record.clean_asr


def _defense_label(spec) -> str:
    return spec.defense.name if spec.defense.is_set else NO_DEFENSE_LABEL


def transfer_matrix(records: Sequence[Any]) -> Dict[str, Any]:
    """Aggregate transfer-sweep records into a model × defense CTA/ASR grid.

    Returns a JSON-compatible mapping: ``models`` and ``defenses`` list the
    axis labels in first-appearance (grid) order, and ``cells`` holds one
    entry per record with its metrics and status.  Failed cells appear with
    null metrics so the matrix always covers the full grid.
    """
    models: Dict[str, None] = {}
    defenses: Dict[str, None] = {}
    cells: List[Dict[str, Any]] = []
    context: Dict[str, Any] = {}
    for record in records:
        spec = record.spec
        model = spec.model.name or ""
        defense = _defense_label(spec)
        models.setdefault(model, None)
        defenses.setdefault(defense, None)
        if not context:
            context = {
                "dataset": spec.dataset.name,
                "condenser": spec.condenser.name,
                "attack": spec.attack.name,
            }
        cta, asr = transfer_cell_metrics(record)
        cells.append(
            {
                "model": model,
                "defense": defense,
                "cell_index": record.cell_index,
                "cta": None if cta != cta else cta,
                "asr": None if asr != asr else asr,
                "status": record.status,
            }
        )
    return {
        **context,
        "models": list(models),
        "defenses": list(defenses),
        "cells": cells,
    }


def format_transfer_matrix(matrix: Mapping[str, Any]) -> str:
    """Render a :func:`transfer_matrix` mapping as a markdown grid.

    One row per model, one column per defense; each cell shows
    ``CTA% / ASR%`` (``--`` for NaN metrics, ``failed`` for failed cells).
    """
    defenses = list(matrix["defenses"])
    lookup: Dict[Tuple[str, str], Mapping[str, Any]] = {
        (cell["model"], cell["defense"]): cell for cell in matrix["cells"]
    }

    def render(cell: Mapping[str, Any] | None) -> str:
        if cell is None:
            return "--"
        if cell["status"] != "ok":
            return cell["status"]
        cta = float("nan") if cell["cta"] is None else cell["cta"]
        asr = float("nan") if cell["asr"] is None else cell["asr"]
        return f"{format_percent(cta)} / {format_percent(asr)}"

    header = "| model | " + " | ".join(defenses) + " |"
    separator = "|" + " --- |" * (len(defenses) + 1)
    lines = [header, separator]
    for model in matrix["models"]:
        row = [render(lookup.get((model, defense))) for defense in defenses]
        lines.append("| " + " | ".join([model, *row]) + " |")
    return "\n".join(lines)


def sweep_summary_line(
    num_cells: int,
    num_failed: int,
    backend: str,
    workers: int,
    cache_stats: Mapping[str, int] | None = None,
) -> str:
    """The one-line sweep summary the CLI prints under the results table."""
    parts = [
        f"{num_cells} cells",
        f"{num_failed} failed" if num_failed else "all ok",
        f"backend={backend}",
    ]
    if backend != "serial":
        parts.append(f"workers={workers}")
    line = f"sweep: {', '.join(parts)}"
    if cache_stats:
        line += f" | cache: {format_cache_stats(cache_stats)}"
    return line
