"""Attack metrics: clean test accuracy (CTA) and attack success rate (ASR)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def clean_test_accuracy(
    predictions: np.ndarray, labels: np.ndarray, test_index: np.ndarray
) -> float:
    """Fraction of clean test nodes classified correctly (CTA).

    Parameters
    ----------
    predictions:
        Predicted labels for every node of the graph.
    labels:
        Ground-truth labels for every node.
    test_index:
        Indices of the test nodes.
    """
    test_index = np.asarray(test_index, dtype=np.int64)
    if test_index.size == 0:
        raise ConfigurationError("clean_test_accuracy requires a non-empty test set")
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    return float(np.mean(predictions[test_index] == labels[test_index]))


def attack_success_rate(
    triggered_predictions: np.ndarray,
    labels: np.ndarray,
    test_index: np.ndarray,
    target_class: int,
    exclude_target_class: bool = True,
) -> float:
    """Fraction of triggered test nodes classified into the target class (ASR).

    Test nodes whose true label already equals the target class are excluded
    by default, so a clean model scores roughly chance level (the C-ASR
    columns of Table II).

    Parameters
    ----------
    triggered_predictions:
        Predictions for every node of the *triggered* graph (indices of the
        original nodes are preserved by trigger attachment).
    labels:
        Ground-truth labels of the original graph.
    test_index:
        Indices of the test nodes (in the original graph).
    target_class:
        The attacker's target label ``y_t``.
    """
    test_index = np.asarray(test_index, dtype=np.int64)
    labels = np.asarray(labels)
    predictions = np.asarray(triggered_predictions)
    if exclude_target_class:
        test_index = test_index[labels[test_index] != target_class]
    if test_index.size == 0:
        raise ConfigurationError(
            "attack_success_rate has no evaluable test nodes "
            "(is every test node already of the target class?)"
        )
    return float(np.mean(predictions[test_index] == target_class))
