"""Train-on-condensed evaluation pipeline.

This is the customer's side of the threat model: they receive a condensed
graph from the (possibly malicious) service provider, train their own GNN on
it, and deploy it on the original graph.  The pipeline therefore

1. trains the requested architecture on the condensed graph
   (:func:`train_model_on_condensed`),
2. measures CTA on the clean test graph (:func:`evaluate_clean`), and
3. measures ASR by attaching attacker-generated triggers to the test nodes
   (:func:`evaluate_backdoor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.attack.trigger import TriggerGenerator, generate_hard_triggers
from repro.condensation.base import CondensedGraph
from repro.condensation.gc_sntk import SNTKPredictor
from repro.evaluation.metrics import attack_success_rate, clean_test_accuracy
from repro.exceptions import ConfigurationError
from repro.graph.cache import get_default_cache
from repro.graph.data import GraphData
from repro.graph.subgraph import attach_trigger_subgraph
from repro.models import Trainer, TrainingConfig, make_model
from repro.models.base import NodeClassifier
from repro.utils.logging import get_logger

logger = get_logger("evaluation.pipeline")

Predictor = Union[NodeClassifier, SNTKPredictor]


@dataclass
class EvaluationConfig:
    """How the downstream customer trains and evaluates their model."""

    architecture: str = "gcn"
    hidden: int = 64
    num_layers: int = 2
    dropout: float = 0.5
    epochs: int = 200
    lr: float = 0.01
    weight_decay: float = 5e-4
    sntk_ridge: float = 1e-2
    sntk_hops: int = 2

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")


@dataclass
class EvaluationResult:
    """CTA / ASR of one trained model."""

    cta: float
    asr: float
    architecture: str
    condensation_method: str


def train_model_on_condensed(
    condensed: CondensedGraph,
    original: GraphData,
    config: EvaluationConfig,
    rng: np.random.Generator,
) -> Predictor:
    """Train the downstream model on a condensed graph.

    GC-SNTK condensed graphs are evaluated with the matching KRR predictor
    (the paper notes GC-SNTK only applies to NTK-based models); every other
    condensed graph trains the requested GNN architecture.  The method check
    ignores attack suffixes ("gc-sntk+naive-poison"), so attacked and clean
    variants of the same condenser always train the same model family.
    """
    if condensed.method.split("+", 1)[0] == "gc-sntk":
        ridge = condensed.metadata.get("ridge", config.sntk_ridge)
        hops = int(condensed.metadata.get("num_hops", config.sntk_hops))
        return SNTKPredictor(condensed, ridge=ridge, num_hops=hops)

    model = make_model(
        config.architecture,
        in_features=condensed.features.shape[1],
        num_classes=max(original.num_classes, condensed.num_classes),
        rng=rng,
        hidden=config.hidden,
        num_layers=config.num_layers,
        dropout=config.dropout,
    )
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=config.epochs,
            lr=config.lr,
            weight_decay=config.weight_decay,
            patience=config.epochs,
        ),
    )
    trainer.fit(
        condensed.adjacency,
        condensed.features,
        condensed.labels,
        train_index=np.arange(condensed.num_nodes),
    )
    return model


def predict_on_graph(model: Predictor, graph: GraphData) -> np.ndarray:
    """Predict labels for every node of ``graph``, sharing the propagation cache.

    SNTK predictors consume SGC-propagated features directly, so their query
    propagation is served from the shared
    :class:`~repro.graph.cache.PropagationCache` — when the condenser already
    propagated the same graph version with the same hop count, evaluation
    pays nothing.  GNN predictors normalise internally, which hits the same
    cache's raw-adjacency memo.
    """
    if isinstance(model, SNTKPredictor):
        propagated = get_default_cache().propagated(graph, model.num_hops)
        return model.predict_propagated(propagated)
    return model.predict(graph.adjacency, graph.features)


def evaluate_clean(model: Predictor, original: GraphData) -> float:
    """CTA of a trained model on the original graph's test nodes."""
    predictions = predict_on_graph(model, original)
    return clean_test_accuracy(predictions, original.labels, original.split.test)


def evaluate_backdoor(
    model: Predictor,
    original: GraphData,
    generator: TriggerGenerator,
    target_class: int,
    test_index: np.ndarray | None = None,
) -> float:
    """ASR of a trained model when triggers are attached to the test nodes."""
    test_index = (
        np.asarray(test_index, dtype=np.int64)
        if test_index is not None
        else original.split.test
    )
    features, structures = generate_hard_triggers(
        generator, original.adjacency, original.features, test_index
    )
    adjacency, node_features, _ = attach_trigger_subgraph(
        original.adjacency, original.features, test_index, features, structures
    )
    # Record the trigger attachment as a delta against the original graph:
    # only the host test nodes gain an edge, so an SNTK evaluation reuses the
    # original's cached propagation and recomputes just the trigger
    # neighbourhoods.  The appended trigger rows get placeholder labels
    # (labels are never read at prediction time).
    num_new = node_features.shape[0] - original.num_nodes
    triggered = original.with_delta(
        test_index,
        adjacency=adjacency,
        features=node_features,
        labels=np.concatenate(
            [original.labels, np.full(num_new, target_class, dtype=np.int64)]
        ),
        name=f"{original.name}-triggered",
    )
    predictions = predict_on_graph(model, triggered)
    return attack_success_rate(
        predictions, original.labels, test_index, target_class
    )


def evaluate_condensed_graph(
    condensed: CondensedGraph,
    original: GraphData,
    config: EvaluationConfig,
    rng: np.random.Generator,
    generator: TriggerGenerator | None = None,
    target_class: int = 0,
) -> EvaluationResult:
    """Full evaluation of one condensed graph: train once, measure CTA and ASR."""
    model = train_model_on_condensed(condensed, original, config, rng)
    cta = evaluate_clean(model, original)
    if generator is None:
        asr = float("nan")
    else:
        asr = evaluate_backdoor(model, original, generator, target_class)
    return EvaluationResult(
        cta=cta,
        asr=asr,
        architecture=config.architecture,
        condensation_method=condensed.method,
    )
