"""Thread-parallel kernel backend: chunked row/batch fan-out over numpy.

``ThreadedBackend`` inherits the reference implementations and overrides
the two primitives whose work factors over an outer axis with no shared
accumulator:

* :meth:`spmm` — the CSR row space splits into contiguous row chunks;
  each chunk is ``matrix[start:stop] @ dense`` through scipy (which
  releases the GIL inside sparsetools), written into a preallocated
  output.  Per-row accumulation order is untouched by row slicing, so the
  result is *bit-identical* to the serial product.
* :meth:`batched_matmul` — the leading batch axis splits into chunks;
  ``np.matmul`` evaluates each batch entry independently, so chunked
  results are bit-identical too.

Small inputs fall back to the serial path (threads would only add
overhead), as does a 1-worker configuration.  The executor is created
lazily and keyed to the owning pid so forked sweep workers transparently
rebuild their own pool instead of deadlocking on inherited locks.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kernels.numpy_backend import NumpyBackend

#: Below this many scalar multiply-adds the serial kernel wins outright.
_MIN_PARALLEL_WORK = 1 << 16

#: Environment knob for the thread count (default: the visible CPU count).
THREADS_ENV = "REPRO_KERNEL_THREADS"


def _default_workers() -> int:
    raw = os.environ.get(THREADS_ENV)
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return max(1, os.cpu_count() or 1)


def _chunk_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` near-equal contiguous spans."""
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class ThreadedBackend(NumpyBackend):
    """Chunked thread-parallel spmm / batched matmul over the numpy reference."""

    name = "threaded"

    def __init__(self, workers: Optional[int] = None) -> None:
        self._configured_workers = workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_pid: Optional[int] = None
        self._executor_size = 0

    @property
    def workers(self) -> int:
        if self._configured_workers is not None:
            return max(1, self._configured_workers)
        return _default_workers()

    def _pool(self, size: int) -> ThreadPoolExecutor:
        # Fork safety: a child inherits this object but must not reuse the
        # parent's executor (its threads do not survive the fork).
        pid = os.getpid()
        if (
            self._executor is None
            or self._executor_pid != pid
            or self._executor_size != size
        ):
            if self._executor is not None and self._executor_pid == pid:
                self._executor.shutdown(wait=False)
            self._executor = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-kernel"
            )
            self._executor_pid = pid
            self._executor_size = size
        return self._executor

    # ------------------------------------------------------------------ #
    # Parallel overrides
    # ------------------------------------------------------------------ #
    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        workers = self.workers
        rows = matrix.shape[0]
        cols = dense.shape[1] if dense.ndim > 1 else 1
        if (
            workers <= 1
            or rows < 2
            or not sp.issparse(matrix)
            or matrix.nnz * cols < _MIN_PARALLEL_WORK
        ):
            return super().spmm(matrix, dense)
        csr = matrix.tocsr()
        out_shape = (rows,) if dense.ndim == 1 else (rows, dense.shape[1])
        out = np.empty(out_shape, dtype=np.result_type(csr.dtype, dense.dtype))
        bounds = _chunk_bounds(rows, workers)

        def _run(span: Tuple[int, int]) -> None:
            start, stop = span
            # Row slicing preserves each row's stored-index accumulation
            # order, so every output row matches the serial product bit
            # for bit.
            out[start:stop] = csr[start:stop] @ dense

        pool = self._pool(workers)
        list(pool.map(_run, bounds))
        return out

    def batched_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        workers = self.workers
        if a.ndim != 3 or b.ndim != 3 or a.shape[0] != b.shape[0]:
            return super().batched_matmul(a, b)
        batch = a.shape[0]
        work = batch * a.shape[1] * a.shape[2] * b.shape[2]
        if workers <= 1 or batch < 2 or work < _MIN_PARALLEL_WORK:
            return super().batched_matmul(a, b)
        out = np.empty((batch, a.shape[1], b.shape[2]), dtype=np.result_type(a, b))
        bounds = _chunk_bounds(batch, workers)

        def _run(span: Tuple[int, int]) -> None:
            start, stop = span
            # np.matmul treats each batch entry independently; slicing the
            # batch axis cannot change any entry's result.
            np.matmul(a[start:stop], b[start:stop], out=out[start:stop])

        pool = self._pool(workers)
        list(pool.map(_run, bounds))
        return out
