"""Pluggable numerical kernels: one registry, one active backend.

Every hot primitive in :mod:`repro.autograd` and :mod:`repro.graph`
dispatches through :func:`active_backend`, an instance of a registered
:class:`~repro.kernels.base.KernelBackend`.  ``numpy`` is the pinned
reference implementation (bit-identical to the pre-extraction inline
code); ``threaded`` chunks spmm and batched matmul across a thread pool.

Selection mirrors the blocked-threshold knob, in priority order:

1. a per-process programmatic override (:func:`set_kernel_backend`, used
   by ``ExecutionSpec.kernel_backend`` for the duration of a sweep);
2. the ``REPRO_KERNEL_BACKEND`` environment variable (memoised per raw
   string — resolution runs on every dispatched primitive);
3. the built-in default, ``numpy``.

Unknown names raise :class:`~repro.exceptions.ConfigurationError` listing
the registered backends; the CLI surfaces that as an exit-2 usage error.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Type

from repro.exceptions import ConfigurationError
from repro.kernels.base import KernelBackend
from repro.kernels.numpy_backend import NumpyBackend
from repro.kernels.threaded import ThreadedBackend

__all__ = [
    "DEFAULT_KERNEL_BACKEND",
    "KERNEL_BACKEND_ENV",
    "KernelBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "active_backend",
    "available_kernel_backends",
    "kernel_backend_name",
    "register_kernel_backend",
    "set_kernel_backend",
]

#: Name resolved when neither the override nor the environment selects one.
DEFAULT_KERNEL_BACKEND = "numpy"

#: Environment variable naming the backend to dispatch through.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_REGISTRY: Dict[str, Type[KernelBackend]] = {}

_NAME_OVERRIDE: Optional[str] = None

#: Memo of the last environment parse: ``(raw_env_string, validated_name)``.
#: Keyed by the raw string so an environment change is still picked up;
#: :func:`set_kernel_backend` and registration invalidate it outright.
_NAME_CACHE: Optional[Tuple[Optional[str], str]] = None

#: One lazily-built instance per backend name (backends are stateless or
#: internally synchronised, so a singleton per process is safe to share).
_INSTANCES: Dict[str, KernelBackend] = {}


def register_kernel_backend(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Register a backend class under ``cls.name`` (decorator-friendly)."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ConfigurationError(
            f"kernel backend {cls!r} must define a non-abstract 'name'"
        )
    global _NAME_CACHE
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)
    _NAME_CACHE = None
    return cls


def available_kernel_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def _validate_name(name: str, *, source: str) -> str:
    if name not in _REGISTRY:
        registered = ", ".join(available_kernel_backends())
        raise ConfigurationError(
            f"unknown kernel backend {name!r} from {source}; "
            f"registered backends: {registered}"
        )
    return name


def kernel_backend_name() -> str:
    """The name of the backend primitives dispatch through right now.

    Resolution order: :func:`set_kernel_backend` override, the
    ``REPRO_KERNEL_BACKEND`` environment variable, then
    :data:`DEFAULT_KERNEL_BACKEND`.  The environment parse is memoised per
    raw string — this runs on the hot path of every primitive.
    """
    global _NAME_CACHE
    if _NAME_OVERRIDE is not None:
        return _NAME_OVERRIDE
    raw = os.environ.get(KERNEL_BACKEND_ENV)
    cached = _NAME_CACHE
    if cached is not None and cached[0] == raw:
        return cached[1]
    if raw is None:
        name = DEFAULT_KERNEL_BACKEND
    else:
        name = _validate_name(raw.strip(), source=KERNEL_BACKEND_ENV)
    _NAME_CACHE = (raw, name)
    return name


def set_kernel_backend(name: Optional[str]) -> Optional[str]:
    """Install (or with ``None`` clear) the per-process backend override.

    Returns the previous override so callers can restore it::

        previous = set_kernel_backend("threaded")
        try:
            ...
        finally:
            set_kernel_backend(previous)
    """
    global _NAME_OVERRIDE, _NAME_CACHE
    previous = _NAME_OVERRIDE
    if name is not None:
        name = _validate_name(name, source="set_kernel_backend")
    _NAME_OVERRIDE = name
    _NAME_CACHE = None
    return previous


def active_backend() -> KernelBackend:
    """The live backend instance for the currently-resolved name."""
    name = kernel_backend_name()
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _REGISTRY[name]()
        _INSTANCES[name] = instance
    return instance


register_kernel_backend(NumpyBackend)
register_kernel_backend(ThreadedBackend)
