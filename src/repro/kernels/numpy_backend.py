"""The reference kernel backend: plain numpy/scipy, pinned expressions.

Every method body is the exact expression that used to live inline at the
call sites in :mod:`repro.autograd` and :mod:`repro.graph` before the
kernels extraction — same operations, same order — so routing through this
backend is bit-identical to the pre-refactor code.  Accelerated backends are
tested against it (``tests/test_kernel_conformance.py``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.kernels.base import KernelBackend


class NumpyBackend(KernelBackend):
    """Single-threaded numpy/scipy implementation — the conformance reference."""

    name = "numpy"

    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        """``matrix @ dense`` through scipy's native sparse product."""
        return matrix @ dense

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a @ b`` through numpy (BLAS gemm)."""
        return a @ b

    def batched_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``np.matmul`` over the shared leading batch axis."""
        return np.matmul(a, b)

    def transpose_last2(self, x: np.ndarray) -> np.ndarray:
        """``swapaxes(-1, -2)`` materialised into a contiguous copy."""
        return np.swapaxes(x, -1, -2).copy()

    def embed_blocks(
        self, base: np.ndarray, blocks: np.ndarray, row_start: int, col_start: int
    ) -> np.ndarray:
        out = base.copy()
        out[
            :,
            row_start : row_start + blocks.shape[1],
            col_start : col_start + blocks.shape[2],
        ] = blocks
        return out

    def scatter_add_rows(
        self,
        shape: Tuple[int, ...],
        index: np.ndarray,
        values: np.ndarray,
        unique: bool,
    ) -> np.ndarray:
        full = np.zeros(shape, dtype=np.float64)
        if unique:
            full[index] = values
        else:
            np.add.at(full, index, values)
        return full

    def gather_scale(
        self, data: np.ndarray, index: np.ndarray, scale: np.ndarray
    ) -> np.ndarray:
        return data * scale[index]

    def scale_csr(
        self,
        matrix: sp.csr_matrix,
        row_scale: np.ndarray,
        col_scale: np.ndarray,
    ) -> sp.csr_matrix:
        # (data * row_scale[i]) * col_scale[j] in that order — the exact
        # value chain of scipy's diag @ M @ diag (multiplication of two
        # floats is commutative bit for bit, and the grouping matches).
        matrix = matrix.tocsr()
        row_of = np.repeat(
            np.arange(matrix.shape[0]), np.diff(matrix.indptr)
        )
        data = (matrix.data * row_scale[row_of]) * col_scale[matrix.indices]
        result = sp.csr_matrix(
            (data, matrix.indices.copy(), matrix.indptr.copy()), shape=matrix.shape
        )
        result.has_canonical_format = matrix.has_canonical_format
        return result

    def softmax_xent(
        self, logits: np.ndarray, weighted_targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Mirrors log_softmax + nll_loss step for step: shifted → exp →
        # denom → log_probs → picked → -(sum).  Keeping the order makes the
        # fused loss bit-identical to the unfused reference chain.
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        denom = exp.sum(axis=-1, keepdims=True)
        log_probs = shifted - np.log(denom)
        probs = exp / denom
        picked = log_probs * weighted_targets
        loss = -(picked.sum())
        return np.asarray(loss, dtype=np.float64), probs

    def softmax_xent_grad(
        self,
        upstream: np.ndarray,
        probs: np.ndarray,
        weighted_targets: np.ndarray,
    ) -> np.ndarray:
        # The unfused chain's backward pass, replayed exactly: neg vjp
        # (-g), sum vjp (broadcast), mul vjp (× targets), log-softmax vjp.
        flow = np.broadcast_to(
            np.asarray(-upstream, dtype=np.float64), weighted_targets.shape
        ).copy()
        flow = flow * weighted_targets
        return flow - probs * flow.sum(axis=-1, keepdims=True)
