"""The :class:`KernelBackend` protocol — every hot primitive in one place.

A backend is a stateless (or internally-synchronised) object implementing
the dozen numerical primitives the autograd and graph layers bottom out in.
The contract is *value* compatibility with :class:`~repro.kernels.numpy_backend.NumpyBackend`,
the pinned reference implementation:

* **bit-identical** results wherever the primitive fixes a unique
  floating-point evaluation order (``spmm`` per output row, ``gather_scale``,
  ``scale_csr``, ``transpose_last2``, ``embed_blocks``, ``scatter_add_rows``
  with unique indices, ``batched_matmul`` per matrix);
* otherwise (reductions whose order a backend may legitimately reorder)
  within ``atol <= 1e-10`` of the reference.

``tests/test_kernel_conformance.py`` runs every registered backend against
the reference on a shared grid of shapes and edge cases; a backend that
cannot meet the contract must not register itself.

Primitives
----------
========================  ====================================================
``spmm``                  sparse ``(n, m)`` CSR/CSC × dense ``(m, f)`` (or
                          ``(m,)``) product — graph propagation, the single
                          hottest call in the repo (also used per CSR row
                          block by the blocked out-of-core engine)
``matmul``                dense 2-D ``(n, k) @ (k, m)``
``batched_matmul``        dense 3-D ``(B, n, k) @ (B, k, m)``
``transpose_last2``       contiguous copy of ``swapaxes(x, -1, -2)``
``embed_blocks``          scatter a ``(B, t, s)`` block stack into a copy of
                          a constant ``(B, m, n)`` base
``scatter_add_rows``      row scatter-(add) of ``(k, f)`` values into a
                          zeroed ``shape`` array — the segment reduction
                          behind ``Tensor.index_rows``'s backward pass
``gather_scale``          ``data * scale[index]`` — the degree-ratio fix-up
                          of the incremental normalisation splice
``scale_csr``             ``diag(row_scale) @ M @ diag(col_scale)`` on CSR
                          data — the two diagonal products of
                          ``gcn_normalize``
``softmax_xent``          fused softmax + cross-entropy forward: loss and
                          probabilities in one pass
``softmax_xent_grad``     matching backward: d(loss)/d(logits) given the
                          upstream gradient
========================  ====================================================
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp


class KernelBackend:
    """Abstract kernel backend: subclasses implement the primitives below.

    Implementations must be safe to share across calls from one thread
    (the autograd tape is single-threaded) and must tolerate being used
    after a ``fork`` — the sweep executors fork worker processes that keep
    dispatching through whatever backend instance they inherited.
    """

    #: Registry name of the backend (subclasses override).
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Sparse propagation
    # ------------------------------------------------------------------ #
    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        """``matrix @ dense`` for a constant sparse operand.

        ``dense`` is ``(m, f)`` or ``(m,)``; the result matches scipy's
        product bit for bit in every row (per-row accumulation runs in
        stored-index order whatever the backend does across rows).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Dense products
    # ------------------------------------------------------------------ #
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense 2-D matrix product ``a @ b``."""
        raise NotImplementedError

    def batched_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense batched product ``(B, n, k) @ (B, k, m) -> (B, n, m)``."""
        raise NotImplementedError

    def transpose_last2(self, x: np.ndarray) -> np.ndarray:
        """Contiguous copy of ``x`` with its last two axes swapped."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Scatter / gather
    # ------------------------------------------------------------------ #
    def embed_blocks(
        self, base: np.ndarray, blocks: np.ndarray, row_start: int, col_start: int
    ) -> np.ndarray:
        """Copy ``base`` and write ``blocks`` at ``[:, rows, cols]``.

        ``base`` is ``(B, m, n)``, ``blocks`` is ``(B, t, s)``; bounds are
        the caller's responsibility (validated in the autograd wrapper).
        """
        raise NotImplementedError

    def scatter_add_rows(
        self,
        shape: Tuple[int, ...],
        index: np.ndarray,
        values: np.ndarray,
        unique: bool,
    ) -> np.ndarray:
        """Zeros of ``shape`` with ``values`` scattered into rows ``index``.

        ``unique=True`` asserts the indices are duplicate-free, allowing
        plain fancy assignment; otherwise duplicate rows must *accumulate*
        (the segment-sum semantics of ``np.add.at``).
        """
        raise NotImplementedError

    def gather_scale(
        self, data: np.ndarray, index: np.ndarray, scale: np.ndarray
    ) -> np.ndarray:
        """Elementwise ``data * scale[index]`` (1-D ``data`` and ``index``)."""
        raise NotImplementedError

    def scale_csr(
        self,
        matrix: sp.csr_matrix,
        row_scale: np.ndarray,
        col_scale: np.ndarray,
    ) -> sp.csr_matrix:
        """``diag(row_scale) @ matrix @ diag(col_scale)`` as canonical CSR.

        Entry ``(i, j)`` becomes ``(matrix[i, j] * row_scale[i]) *
        col_scale[j]`` — multiplication in exactly that order, which is what
        scipy's two diagonal products evaluate, so the reference is
        bit-identical to the expression it replaced.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Fused loss
    # ------------------------------------------------------------------ #
    def softmax_xent(
        self, logits: np.ndarray, weighted_targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused softmax cross-entropy forward pass.

        Returns ``(loss, probs)`` where ``loss`` is the scalar
        ``-(log_softmax(logits) * weighted_targets).sum()`` and ``probs``
        the softmax probabilities (saved for the backward pass).  The
        evaluation order must match the unfused
        ``nll_loss(log_softmax(...))`` composition so the fused path is
        bit-identical to the reference chain.
        """
        raise NotImplementedError

    def softmax_xent_grad(
        self,
        upstream: np.ndarray,
        probs: np.ndarray,
        weighted_targets: np.ndarray,
    ) -> np.ndarray:
        """d(loss)/d(logits) for :meth:`softmax_xent` given ``upstream``.

        Must evaluate the same chain-rule expression the unfused composition
        runs (negate → broadcast → multiply by targets → log-softmax vjp),
        keeping the fused loss's gradients bit-identical to the reference.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
