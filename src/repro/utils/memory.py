"""Peak-RSS measurement for the blocked-propagation benchmarks.

Linux tracks a process's resident-set high-water mark (``VmHWM``) in
``/proc/self/status`` and lets the process reset it by writing ``5`` to
``/proc/self/clear_refs``.  That pair gives an exact, allocation-free way to
measure the peak working set of a code region::

    reset_ok = reset_peak_rss()
    ...  # region under test
    peak = peak_rss_bytes()

On platforms without these files both helpers degrade gracefully (reset
returns ``False``, the query returns ``None``) and callers skip the ceiling
assertion rather than fail spuriously.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["peak_rss_bytes", "current_rss_bytes", "reset_peak_rss"]

_STATUS_PATH = "/proc/self/status"
_CLEAR_REFS_PATH = "/proc/self/clear_refs"


def _read_status_kib(field: str) -> Optional[int]:
    try:
        with open(_STATUS_PATH, "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size (``VmHWM``) in bytes, or ``None`` if unknown.

    Reflects the high-water mark since process start or the most recent
    successful :func:`reset_peak_rss`.
    """
    kib = _read_status_kib("VmHWM")
    return kib * 1024 if kib is not None else None


def current_rss_bytes() -> Optional[int]:
    """Current resident-set size (``VmRSS``) in bytes, or ``None``."""
    kib = _read_status_kib("VmRSS")
    return kib * 1024 if kib is not None else None


def reset_peak_rss() -> bool:
    """Reset the peak-RSS counter to the current RSS; ``True`` on success.

    Writing ``5`` to ``/proc/self/clear_refs`` asks the kernel to reset the
    ``VmHWM`` water mark.  Returns ``False`` (and changes nothing) on
    platforms or kernels that do not support it.
    """
    try:
        with open(_CLEAR_REFS_PATH, "w", encoding="ascii") as handle:
            handle.write("5")
    except OSError:
        return False
    return True
