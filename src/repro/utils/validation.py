"""Input-validation helpers shared across configuration objects."""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_ratio(value: float, name: str) -> float:
    """Validate that ``value`` lies in the half-open interval (0, 1]."""
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{name} must lie in (0, 1], got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if int(value) != value or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is non-negative."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return float(value)
