"""Lightweight logging helpers.

The library never configures the root logger; it only attaches a
``NullHandler`` so that applications embedding it stay in control of log
routing.  :func:`get_logger` is the single entry point used by all modules.
"""

from __future__ import annotations

import logging

_LIBRARY_ROOT = "repro"

logging.getLogger(_LIBRARY_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"condensation.gcond"``.  Passing a name that
        already starts with the library root is also accepted.
    """
    if name.startswith(_LIBRARY_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_ROOT}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the library root logger.

    Intended for examples and benchmarks; library code never calls this.
    """
    logger = logging.getLogger(_LIBRARY_ROOT)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in logger.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
