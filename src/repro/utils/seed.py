"""Deterministic random-number management.

Every stochastic component in the library receives an explicit
:class:`numpy.random.Generator`.  Experiments construct these generators from
integer seeds via :func:`new_rng` or spawn independent streams with
:func:`spawn_rngs` / :class:`SeedSequenceFactory` so that repeated runs are
bit-for-bit reproducible regardless of execution order.
"""

from __future__ import annotations

from typing import List

import numpy as np


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh ``numpy.random.Generator`` seeded with ``seed``.

    Parameters
    ----------
    seed:
        Integer seed.  ``None`` produces an OS-entropy-seeded generator,
        which is only appropriate for exploratory use, never in benchmarks.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class SeedSequenceFactory:
    """Hands out independent generators derived from a single root seed.

    The factory is useful when a long-running experiment needs a fresh
    generator per trial or per component without tracking seed arithmetic by
    hand.  Streams are keyed by request order, so the i-th request is the
    same across runs with the same root seed.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)
        self._sequence = np.random.SeedSequence(self._root_seed)
        self._issued = 0

    @property
    def root_seed(self) -> int:
        """The root seed the factory was constructed with."""
        return self._root_seed

    @property
    def issued(self) -> int:
        """Number of generators issued so far."""
        return self._issued

    def next_rng(self) -> np.random.Generator:
        """Return the next independent generator in the sequence."""
        child = self._sequence.spawn(1)[0]
        self._issued += 1
        return np.random.default_rng(child)

    def next_rngs(self, count: int) -> List[np.random.Generator]:
        """Return ``count`` independent generators."""
        return [self.next_rng() for _ in range(count)]
