"""Shared utilities: seeding, logging and validation helpers."""

from repro.utils.seed import SeedSequenceFactory, new_rng, spawn_rngs
from repro.utils.logging import get_logger
from repro.utils.validation import (
    check_probability,
    check_positive_int,
    check_non_negative,
    check_ratio,
)

__all__ = [
    "SeedSequenceFactory",
    "new_rng",
    "spawn_rngs",
    "get_logger",
    "check_probability",
    "check_positive_int",
    "check_non_negative",
    "check_ratio",
]
