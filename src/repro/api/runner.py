"""Execute :class:`~repro.api.spec.ExperimentSpec` cells and sweeps.

:func:`run_experiment` resolves every component of a spec through the
registries, runs the full threat-model pipeline (clean condensation baseline,
optional attack, optional defense) and returns a structured
:class:`RunRecord`.  :func:`run_sweep` executes a grid: cells that name the
same dataset share one loaded :class:`~repro.graph.data.GraphData` (and with
it the process-wide :class:`~repro.graph.cache.PropagationCache`, so base
propagations are paid once per dataset, not once per cell), while every
random stream is derived from the cell's own seed — results are bit-identical
whether the grid runs in canonical or shuffled order.
"""

from __future__ import annotations

import hashlib
import math
import time
import traceback
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.api.spec import ExecutionSpec, ExperimentSpec, SweepSpec
from repro.attack.naive import NaivePoison
from repro.condensation.base import CondensedGraph, Condenser
from repro.datasets import load_dataset
from repro.defenses.detection import remove_flagged_nodes
from repro.evaluation.metrics import attack_success_rate
from repro.evaluation.pipeline import (
    EvaluationConfig,
    Predictor,
    evaluate_backdoor,
    evaluate_clean,
    predict_on_graph,
    train_model_on_condensed,
)
from repro.exceptions import ConfigurationError
from repro.graph.data import GraphData
from repro.registry import ATTACKS, CONDENSERS, DEFENSES, MODELS, bind_config
from repro.utils.logging import get_logger
from repro.utils.seed import spawn_rngs

logger = get_logger("api.runner")

AsrEvaluator = Callable[[Predictor], float]


@dataclass
class RunRecord:
    """Structured result of one experiment cell.

    ``clean_*`` metrics come from the clean-condensation baseline, ``attack_*``
    from the attacked condensation (NaN when the spec has no attack), and
    ``defense_*`` from re-evaluating the defended artefact, with deltas taken
    against the undefended reference (the attacked numbers when an attack ran,
    the clean ones otherwise).  ``spec`` echoes the fully resolved spec, so a
    record is self-describing in a ``results.jsonl`` stream.

    ``condensed_hash`` / ``attack_condensed_hash`` fingerprint the condensed
    artefacts (sha256 over their arrays), so bit-identity across execution
    backends can be asserted on the full condensed graphs, not just the
    scalar metrics.  ``status`` is ``"ok"`` for a completed cell; a cell that
    raised or timed out under ``on_error="record"`` is shipped as a
    ``"failed"`` record whose ``error`` mapping holds the exception type
    name, message and formatted traceback.
    """

    spec: ExperimentSpec
    cell_index: int | None = None
    clean_cta: float = float("nan")
    clean_asr: float = float("nan")
    attack_cta: float = float("nan")
    attack_asr: float = float("nan")
    defense_cta: float = float("nan")
    defense_asr: float = float("nan")
    defense_cta_delta: float = float("nan")
    defense_asr_delta: float = float("nan")
    poisoned_nodes: int = 0
    condensed_nodes: int = 0
    condensed_hash: str | None = None
    attack_condensed_hash: str | None = None
    status: str = "ok"
    error: Dict[str, str] | None = None
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the cell completed (``status == "ok"``)."""
        return self.status == "ok"

    @classmethod
    def from_failure(
        cls,
        spec: ExperimentSpec,
        cell_index: int | None,
        error: Mapping[str, str],
        elapsed: float = 0.0,
    ) -> "RunRecord":
        """A structured failed record for a cell that raised or timed out.

        ``error`` carries ``type`` (exception class name), ``message`` and
        ``traceback`` (formatted text — the only form that survives a process
        boundary); every metric stays NaN/default.
        """
        return cls(
            spec=spec,
            cell_index=cell_index,
            status="failed",
            error=dict(error),
            timings={"cell": float(elapsed)},
        )

    #: Metric fields serialised with NaN ↔ null conversion.
    _METRIC_FIELDS = (
        "clean_cta",
        "clean_asr",
        "attack_cta",
        "attack_asr",
        "defense_cta",
        "defense_asr",
        "defense_cta_delta",
        "defense_asr_delta",
    )

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON flat representation (one line of results.jsonl).

        Unset metrics serialise as ``null`` rather than the non-standard
        ``NaN`` token, so the output stays parseable by ``jq`` /
        ``JSON.parse``; :meth:`from_dict` restores them to NaN.
        """
        payload: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "cell_index": self.cell_index,
        }
        for name in self._METRIC_FIELDS:
            value = getattr(self, name)
            payload[name] = None if math.isnan(value) else value
        payload["poisoned_nodes"] = self.poisoned_nodes
        payload["condensed_nodes"] = self.condensed_nodes
        payload["condensed_hash"] = self.condensed_hash
        payload["attack_condensed_hash"] = self.attack_condensed_hash
        payload["status"] = self.status
        payload["error"] = dict(self.error) if self.error is not None else None
        payload["timings"] = dict(self.timings)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        data = dict(payload)
        data["spec"] = ExperimentSpec.from_dict(data["spec"])
        for name in cls._METRIC_FIELDS:
            if data.get(name) is None:
                data[name] = float("nan")
        return cls(**data)


def condensed_fingerprint(condensed: CondensedGraph) -> str:
    """Sha256 over a condensed graph's arrays (features, labels, adjacency).

    Used to assert *bit*-identity of condensation results across execution
    backends and worker counts: two condensed graphs fingerprint equal only
    if every float in them is identical.
    """
    digest = hashlib.sha256()
    for array in (condensed.features, condensed.labels, condensed.adjacency):
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def error_info(error: BaseException) -> Dict[str, str]:
    """The picklable failure shape stored on a failed :class:`RunRecord`."""
    return {
        "type": type(error).__name__,
        "message": str(error),
        "traceback": "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        ),
    }


class _Stopwatch:
    """Accumulates named wall-clock timings."""

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}

    def measure(self, name: str, fn: Callable[[], Any]) -> Any:
        start = time.perf_counter()
        result = fn()
        self.timings[name] = self.timings.get(name, 0.0) + time.perf_counter() - start
        return result


# ------------------------------------------------------------------ #
# Component resolution
# ------------------------------------------------------------------ #
def _resolve_evaluation(spec: ExperimentSpec) -> EvaluationConfig:
    """Merge the model and evaluation components into one EvaluationConfig."""
    if spec.model.name is not None:
        MODELS.canonical(spec.model.name)  # fail fast with the registry's message
    overrides: Dict[str, Any] = {"architecture": spec.model.name}
    overrides.update(spec.model.overrides)
    overrides.update(spec.evaluation.overrides)
    return bind_config(EvaluationConfig, overrides)


def _resolve_condenser(spec: ExperimentSpec) -> Condenser:
    return CONDENSERS.build(spec.condenser.name, **spec.condenser.overrides)


def _resolve_attack(spec: ExperimentSpec):
    """Build the attack, folding the trigger component into its config."""
    entry = ATTACKS.get(spec.attack.name)
    overrides: Dict[str, Any] = {}
    trigger_overrides = dict(spec.trigger.overrides)
    if spec.trigger.name is not None:
        trigger_overrides.setdefault("encoder", spec.trigger.name)
    if trigger_overrides:
        config_fields = (
            {f.name for f in fields(entry.config_cls)}
            if entry.config_cls is not None
            else set()
        )
        if "trigger" in config_fields:
            for key, value in trigger_overrides.items():
                overrides[f"trigger.{key}"] = value
        else:
            logger.debug(
                "attack %s has no trigger config; ignoring trigger overrides %s",
                spec.attack.name,
                sorted(trigger_overrides),
            )
    overrides.update(spec.attack.overrides)
    return ATTACKS.build(spec.attack.name, **overrides)


def _dataset_seed(spec: ExperimentSpec) -> int:
    """Validate the dataset overrides (only ``seed``) and return the seed."""
    overrides = dict(spec.dataset.overrides)
    seed = overrides.pop("seed", 0)
    if overrides:
        raise ConfigurationError(
            f"dataset overrides support only 'seed', got {sorted(overrides)}"
        )
    return int(seed)


def _load_graph(spec: ExperimentSpec) -> GraphData:
    return load_dataset(spec.dataset.name, seed=_dataset_seed(spec))


def dataset_cache_key(spec: ExperimentSpec) -> Tuple[str, int]:
    """Key under which :func:`run_sweep` shares loaded datasets across cells."""
    return (spec.dataset.name.lower(), _dataset_seed(spec))


# ------------------------------------------------------------------ #
# Attack execution
# ------------------------------------------------------------------ #
def _execute_attack(
    attack, graph: GraphData, condenser: Condenser, rng: np.random.Generator
) -> Tuple[CondensedGraph, AsrEvaluator, int]:
    """Run any registered attack; normalise its result shape.

    BGC-style attacks return a :class:`~repro.attack.bgc.BGCResult` whose
    node-adaptive generator drives :func:`evaluate_backdoor`;
    :class:`NaivePoison` returns ``(condensed, universal_pattern)``, evaluated
    by blending the pattern into the test-node features.
    """
    result = attack.run(graph, condenser, rng)
    if isinstance(result, tuple):
        condensed, pattern = result
        target_class = int(getattr(attack.config, "target_class", 0))

        def universal_asr(model: Predictor) -> float:
            triggered = NaivePoison.attach_universal_trigger(
                graph, graph.split.test, pattern
            )
            predictions = predict_on_graph(model, triggered)
            return attack_success_rate(
                predictions, graph.labels, graph.split.test, target_class
            )

        poisoned = int(condensed.metadata.get("poisoned_nodes", 0))
        return condensed, universal_asr, poisoned

    generator = result.generator
    target_class = int(result.target_class)

    def generator_asr(model: Predictor) -> float:
        return evaluate_backdoor(model, graph, generator, target_class)

    return result.condensed, generator_asr, int(result.poisoned_nodes.size)


# ------------------------------------------------------------------ #
# Defense application
# ------------------------------------------------------------------ #
def _apply_defense(
    defense,
    condensed: CondensedGraph,
    model: Predictor,
    graph: GraphData,
    evaluation: EvaluationConfig,
    rng: np.random.Generator,
) -> Predictor:
    """Apply a registered defense and return the defended predictor.

    Four duck-typed protocols cover the registered families: dataset-level
    defenses expose ``apply_to_condensed`` (retrain on the sanitised graph),
    detectors expose ``detect`` (drop flagged nodes, retrain), robust-training
    defenses expose ``retrain`` (refit under training-time perturbation), and
    model-level defenses expose ``wrap`` (smooth the already-trained model).
    """
    if hasattr(defense, "retrain"):
        return defense.retrain(condensed, graph, evaluation, rng)
    if hasattr(defense, "apply_to_condensed"):
        defended = defense.apply_to_condensed(condensed)
        return train_model_on_condensed(defended, graph, evaluation, rng)
    if hasattr(defense, "detect"):
        report = defense.detect(condensed)
        defended = remove_flagged_nodes(condensed, report)
        return train_model_on_condensed(defended, graph, evaluation, rng)
    if hasattr(defense, "wrap"):
        return defense.wrap(model)
    raise ConfigurationError(
        f"defense {type(defense).__name__} implements none of "
        "apply_to_condensed/detect/wrap"
    )


# ------------------------------------------------------------------ #
# Entry points
# ------------------------------------------------------------------ #
def run_experiment(
    spec: ExperimentSpec,
    *,
    graph: GraphData | None = None,
    cell_index: int | None = None,
) -> RunRecord:
    """Execute one spec end-to-end and return its :class:`RunRecord`.

    ``graph`` lets a sweep share the loaded dataset across cells; when given
    it must be the dataset the spec names.  All five random streams (clean
    condensation, attack, victim training, clean training, defense) are
    spawned from ``spec.seed`` alone, so a cell's record never depends on
    what else ran in the process.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.from_dict(spec)
    spec.validate_runnable()
    # Build every component before the (potentially expensive) dataset
    # generation: a bad name or override typo anywhere in the spec is
    # rejected at near-zero cost — and independently of whether a sweep
    # already shares the graph.  Construction is cheap (config binding only).
    evaluation = _resolve_evaluation(spec)
    _dataset_seed(spec)
    condenser = _resolve_condenser(spec)
    attack = _resolve_attack(spec) if spec.attack.is_set else None
    defense = (
        DEFENSES.build(spec.defense.name, **spec.defense.overrides)
        if spec.defense.is_set
        else None
    )
    watch = _Stopwatch()
    if graph is None:
        graph = watch.measure("load_dataset", lambda: _load_graph(spec))
    elif graph.name.lower() != spec.dataset.name.lower():
        raise ConfigurationError(
            f"shared graph {graph.name!r} does not match spec dataset {spec.dataset.name!r}"
        )
    clean_rng, attack_rng, victim_rng, eval_rng, defense_rng = spawn_rngs(spec.seed, 5)

    record = RunRecord(spec=spec, cell_index=cell_index)

    asr_evaluator: AsrEvaluator | None = None
    attacked_model: Predictor | None = None
    attacked_condensed: CondensedGraph | None = None
    if attack is not None:
        attacked_condensed, asr_evaluator, poisoned = watch.measure(
            "attack", lambda: _execute_attack(attack, graph, condenser, attack_rng)
        )
        record.poisoned_nodes = poisoned
        record.attack_condensed_hash = condensed_fingerprint(attacked_condensed)
        attacked_model = watch.measure(
            "train_victim",
            lambda: train_model_on_condensed(attacked_condensed, graph, evaluation, victim_rng),
        )
        record.attack_cta = watch.measure(
            "evaluate", lambda: evaluate_clean(attacked_model, graph)
        )
        record.attack_asr = watch.measure("evaluate", lambda: asr_evaluator(attacked_model))

    # The attack leg consumed `condenser` (condensers are stateful), so the
    # clean baseline gets a fresh instance with identical configuration.
    clean_condenser = _resolve_condenser(spec) if attack is not None else condenser
    clean_condensed = watch.measure(
        "condense", lambda: clean_condenser.condense(graph, clean_rng)
    )
    record.condensed_nodes = clean_condensed.num_nodes
    record.condensed_hash = condensed_fingerprint(clean_condensed)
    clean_model = watch.measure(
        "train_clean",
        lambda: train_model_on_condensed(clean_condensed, graph, evaluation, eval_rng),
    )
    record.clean_cta = watch.measure("evaluate", lambda: evaluate_clean(clean_model, graph))
    if asr_evaluator is not None:
        record.clean_asr = watch.measure("evaluate", lambda: asr_evaluator(clean_model))

    if defense is not None:
        target_condensed = attacked_condensed if attacked_condensed is not None else clean_condensed
        target_model = attacked_model if attacked_model is not None else clean_model
        defended_model = watch.measure(
            "defense",
            lambda: _apply_defense(
                defense, target_condensed, target_model, graph, evaluation, defense_rng
            ),
        )
        record.defense_cta = watch.measure(
            "evaluate", lambda: evaluate_clean(defended_model, graph)
        )
        reference_cta = record.attack_cta if spec.attack.is_set else record.clean_cta
        record.defense_cta_delta = record.defense_cta - reference_cta
        if asr_evaluator is not None:
            record.defense_asr = watch.measure(
                "evaluate", lambda: asr_evaluator(defended_model)
            )
            record.defense_asr_delta = record.defense_asr - record.attack_asr

    record.timings = watch.timings
    return record


#: PropagationCache counters that are summable across workers (the remaining
#: ``stats()`` keys — graphs / shards / raw_matrices — are gauges).
CACHE_COUNTER_KEYS = (
    "hits",
    "misses",
    "incremental_updates",
    "incremental_normalizations",
    "buffer_reuses",
)


def cache_counters(stats: Mapping[str, int]) -> Dict[str, int]:
    """Project a ``PropagationCache.stats()`` mapping onto its counters."""
    return {key: int(stats.get(key, 0)) for key in CACHE_COUNTER_KEYS}


def merge_cache_stats(stats_list: List[Mapping[str, int]]) -> Dict[str, int]:
    """Sum per-contributor cache counters into one sweep-level mapping.

    The process backend feeds this the parent's handoff delta plus one
    counter delta per completed worker; the serial backend feeds the single
    before/after delta of the shared cache.  ``contributors`` records how
    many deltas merged.
    """
    merged = {key: 0 for key in CACHE_COUNTER_KEYS}
    for stats in stats_list:
        for key in CACHE_COUNTER_KEYS:
            merged[key] += int(stats.get(key, 0))
    merged["contributors"] = len(stats_list)
    return merged


class SweepRecord(List[RunRecord]):
    """The result of one sweep: records in canonical grid order + aggregates.

    A ``SweepRecord`` *is* the list of :class:`RunRecord` (so existing
    list-shaped callers keep working), enriched with sweep-level state:
    ``cache_stats`` merges the :class:`~repro.graph.cache.PropagationCache`
    counters of every contributor (the parent's handoff delta plus each
    worker's delta under the process backend; the serial backend contributes
    its single before/after delta).
    """

    def __init__(
        self,
        records: List[RunRecord] = (),
        *,
        cache_stats: Mapping[str, int] | None = None,
    ) -> None:
        super().__init__(records)
        self.cache_stats: Dict[str, int] = dict(cache_stats or {})

    @property
    def failed(self) -> List[RunRecord]:
        """The failed cells (empty unless ``on_error="record"`` saw errors)."""
        return [record for record in self if not record.ok]


def _validated_order(order: List[int] | None, num_cells: int) -> List[int]:
    """Canonical dispatch order, defaulting to grid order."""
    if order is None:
        return list(range(num_cells))
    if sorted(order) != list(range(num_cells)):
        raise ConfigurationError(
            f"order must be a permutation of range({num_cells}), got {order!r}"
        )
    return list(order)


def run_sweep(
    sweep: SweepSpec,
    *,
    order: List[int] | None = None,
    on_record: Callable[[RunRecord], None] | None = None,
    execution: ExecutionSpec | Mapping[str, Any] | None = None,
) -> SweepRecord:
    """Execute every cell of a sweep; records return in canonical grid order.

    ``order`` optionally permutes *dispatch* order (used by the determinism
    tests); it never changes the returned ordering or any cell's result,
    because per-cell seeds are fixed at expansion time.  ``on_record`` is
    invoked after each cell completes (in completion order — equal to
    dispatch order for the serial backend) and also receives failed records.
    ``execution`` overrides the sweep's own :class:`ExecutionSpec`: the
    ``process`` backend fans cells out over worker processes with shard-aware
    cache handoff (see :mod:`repro.api.parallel`) and is bit-identical to
    serial execution for any worker count; ``on_error="record"`` turns cell
    failures into structured failed records instead of aborting the sweep.
    In the serial backend cells naming the same dataset (and dataset seed)
    share one loaded graph, and through it the shared
    :class:`~repro.graph.cache.PropagationCache`.  When
    ``execution.blocked_threshold`` is set, the blocked-propagation threshold
    override is installed for the duration of the sweep (and restored after),
    covering the serial loop, the process-backend handoff and — via ``fork``
    inheritance or an explicit worker argument — every worker process.
    ``execution.kernel_backend`` is installed the same way (see
    :func:`repro.kernels.set_kernel_backend`), so every cell — serial,
    process or pool — dispatches its numerical primitives through the
    requested backend.
    """
    if not isinstance(sweep, SweepSpec):
        sweep = SweepSpec.from_dict(sweep)
    execution = (
        sweep.execution if execution is None else ExecutionSpec.coerce(execution)
    )
    specs = sweep.expand()
    order = _validated_order(order, len(specs))

    if execution.blocked_threshold is None and execution.kernel_backend is None:
        return _run_sweep_cells(sweep, specs, order, execution, on_record)
    from repro.graph.blocked import set_blocked_threshold
    from repro.kernels import set_kernel_backend

    previous_threshold = (
        set_blocked_threshold(execution.blocked_threshold)
        if execution.blocked_threshold is not None
        else None
    )
    previous_kernel = (
        set_kernel_backend(execution.kernel_backend)
        if execution.kernel_backend is not None
        else None
    )
    try:
        return _run_sweep_cells(sweep, specs, order, execution, on_record)
    finally:
        if execution.kernel_backend is not None:
            set_kernel_backend(previous_kernel)
        if execution.blocked_threshold is not None:
            set_blocked_threshold(previous_threshold)


def _run_sweep_cells(
    sweep: SweepSpec,
    specs: List[ExperimentSpec],
    order: List[int],
    execution: ExecutionSpec,
    on_record: Callable[[RunRecord], None] | None,
) -> SweepRecord:
    """Dispatch the expanded grid to the selected backend (see run_sweep)."""
    if execution.backend == "process":
        from repro.api.parallel import run_sweep_process

        records, cache_stats = run_sweep_process(
            sweep, specs, order, execution, on_record
        )
        return SweepRecord(records, cache_stats=cache_stats)

    if execution.backend == "pool":
        from repro.api.parallel import run_sweep_pool

        records, cache_stats = run_sweep_pool(sweep, specs, order, execution, on_record)
        return SweepRecord(records, cache_stats=cache_stats)

    from repro.graph.cache import get_default_cache

    stats_before = cache_counters(get_default_cache().stats())
    graphs: Dict[Tuple[str, int], GraphData] = {}
    unloadable: Dict[Tuple[str, int], Dict[str, str]] = {}
    records: List[RunRecord | None] = [None] * len(specs)
    for position, index in enumerate(order):
        spec = specs[index]
        logger.info(
            "sweep %s: cell %d/%d (grid index %d): %s/%s/%s",
            sweep.name,
            position + 1,
            len(specs),
            index,
            spec.dataset.name,
            spec.condenser.name,
            spec.attack.name or "clean",
        )
        start = time.perf_counter()
        try:
            key = dataset_cache_key(spec)
            if key in unloadable:
                # The dataset already failed to load for an earlier cell:
                # reuse its recorded failure instead of re-paying a
                # potentially expensive failed generation once per cell.
                record = RunRecord.from_failure(spec, index, unloadable[key], 0.0)
            else:
                if key not in graphs:
                    try:
                        graphs[key] = _load_graph(spec)
                    except Exception as error:
                        unloadable[key] = error_info(error)
                        raise
                record = run_experiment(spec, graph=graphs[key], cell_index=index)
        except Exception as error:
            if execution.on_error == "raise":
                raise
            record = RunRecord.from_failure(
                spec, index, error_info(error), time.perf_counter() - start
            )
            logger.warning(
                "sweep %s: cell %d failed (%s), recorded and continuing",
                sweep.name,
                index,
                type(error).__name__,
            )
        records[index] = record
        if on_record is not None:
            on_record(record)
    stats_after = cache_counters(get_default_cache().stats())
    delta = {key: stats_after[key] - stats_before[key] for key in CACHE_COUNTER_KEYS}
    return SweepRecord(records, cache_stats=merge_cache_stats([delta]))
