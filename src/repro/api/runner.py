"""Execute :class:`~repro.api.spec.ExperimentSpec` cells and sweeps.

:func:`run_experiment` resolves every component of a spec through the
registries, runs the full threat-model pipeline (clean condensation baseline,
optional attack, optional defense) and returns a structured
:class:`RunRecord`.  :func:`run_sweep` executes a grid: cells that name the
same dataset share one loaded :class:`~repro.graph.data.GraphData` (and with
it the process-wide :class:`~repro.graph.cache.PropagationCache`, so base
propagations are paid once per dataset, not once per cell), while every
random stream is derived from the cell's own seed — results are bit-identical
whether the grid runs in canonical or shuffled order.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.api.spec import ExperimentSpec, SweepSpec
from repro.attack.naive import NaivePoison
from repro.condensation.base import CondensedGraph, Condenser
from repro.datasets import load_dataset
from repro.defenses.detection import remove_flagged_nodes
from repro.evaluation.metrics import attack_success_rate
from repro.evaluation.pipeline import (
    EvaluationConfig,
    Predictor,
    evaluate_backdoor,
    evaluate_clean,
    predict_on_graph,
    train_model_on_condensed,
)
from repro.exceptions import ConfigurationError
from repro.graph.data import GraphData
from repro.registry import ATTACKS, CONDENSERS, DEFENSES, MODELS, bind_config
from repro.utils.logging import get_logger
from repro.utils.seed import spawn_rngs

logger = get_logger("api.runner")

AsrEvaluator = Callable[[Predictor], float]


@dataclass
class RunRecord:
    """Structured result of one experiment cell.

    ``clean_*`` metrics come from the clean-condensation baseline, ``attack_*``
    from the attacked condensation (NaN when the spec has no attack), and
    ``defense_*`` from re-evaluating the defended artefact, with deltas taken
    against the undefended reference (the attacked numbers when an attack ran,
    the clean ones otherwise).  ``spec`` echoes the fully resolved spec, so a
    record is self-describing in a ``results.jsonl`` stream.
    """

    spec: ExperimentSpec
    cell_index: int | None = None
    clean_cta: float = float("nan")
    clean_asr: float = float("nan")
    attack_cta: float = float("nan")
    attack_asr: float = float("nan")
    defense_cta: float = float("nan")
    defense_asr: float = float("nan")
    defense_cta_delta: float = float("nan")
    defense_asr_delta: float = float("nan")
    poisoned_nodes: int = 0
    condensed_nodes: int = 0
    timings: Dict[str, float] = field(default_factory=dict)

    #: Metric fields serialised with NaN ↔ null conversion.
    _METRIC_FIELDS = (
        "clean_cta",
        "clean_asr",
        "attack_cta",
        "attack_asr",
        "defense_cta",
        "defense_asr",
        "defense_cta_delta",
        "defense_asr_delta",
    )

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON flat representation (one line of results.jsonl).

        Unset metrics serialise as ``null`` rather than the non-standard
        ``NaN`` token, so the output stays parseable by ``jq`` /
        ``JSON.parse``; :meth:`from_dict` restores them to NaN.
        """
        payload: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "cell_index": self.cell_index,
        }
        for name in self._METRIC_FIELDS:
            value = getattr(self, name)
            payload[name] = None if math.isnan(value) else value
        payload["poisoned_nodes"] = self.poisoned_nodes
        payload["condensed_nodes"] = self.condensed_nodes
        payload["timings"] = dict(self.timings)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        data = dict(payload)
        data["spec"] = ExperimentSpec.from_dict(data["spec"])
        for name in cls._METRIC_FIELDS:
            if data.get(name) is None:
                data[name] = float("nan")
        return cls(**data)


class _Stopwatch:
    """Accumulates named wall-clock timings."""

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}

    def measure(self, name: str, fn: Callable[[], Any]) -> Any:
        start = time.perf_counter()
        result = fn()
        self.timings[name] = self.timings.get(name, 0.0) + time.perf_counter() - start
        return result


# ------------------------------------------------------------------ #
# Component resolution
# ------------------------------------------------------------------ #
def _resolve_evaluation(spec: ExperimentSpec) -> EvaluationConfig:
    """Merge the model and evaluation components into one EvaluationConfig."""
    if spec.model.name is not None:
        MODELS.canonical(spec.model.name)  # fail fast with the registry's message
    overrides: Dict[str, Any] = {"architecture": spec.model.name}
    overrides.update(spec.model.overrides)
    overrides.update(spec.evaluation.overrides)
    return bind_config(EvaluationConfig, overrides)


def _resolve_condenser(spec: ExperimentSpec) -> Condenser:
    return CONDENSERS.build(spec.condenser.name, **spec.condenser.overrides)


def _resolve_attack(spec: ExperimentSpec):
    """Build the attack, folding the trigger component into its config."""
    entry = ATTACKS.get(spec.attack.name)
    overrides: Dict[str, Any] = {}
    trigger_overrides = dict(spec.trigger.overrides)
    if spec.trigger.name is not None:
        trigger_overrides.setdefault("encoder", spec.trigger.name)
    if trigger_overrides:
        config_fields = (
            {f.name for f in fields(entry.config_cls)}
            if entry.config_cls is not None
            else set()
        )
        if "trigger" in config_fields:
            for key, value in trigger_overrides.items():
                overrides[f"trigger.{key}"] = value
        else:
            logger.debug(
                "attack %s has no trigger config; ignoring trigger overrides %s",
                spec.attack.name,
                sorted(trigger_overrides),
            )
    overrides.update(spec.attack.overrides)
    return ATTACKS.build(spec.attack.name, **overrides)


def _dataset_seed(spec: ExperimentSpec) -> int:
    """Validate the dataset overrides (only ``seed``) and return the seed."""
    overrides = dict(spec.dataset.overrides)
    seed = overrides.pop("seed", 0)
    if overrides:
        raise ConfigurationError(
            f"dataset overrides support only 'seed', got {sorted(overrides)}"
        )
    return int(seed)


def _load_graph(spec: ExperimentSpec) -> GraphData:
    return load_dataset(spec.dataset.name, seed=_dataset_seed(spec))


def dataset_cache_key(spec: ExperimentSpec) -> Tuple[str, int]:
    """Key under which :func:`run_sweep` shares loaded datasets across cells."""
    return (spec.dataset.name.lower(), _dataset_seed(spec))


# ------------------------------------------------------------------ #
# Attack execution
# ------------------------------------------------------------------ #
def _execute_attack(
    attack, graph: GraphData, condenser: Condenser, rng: np.random.Generator
) -> Tuple[CondensedGraph, AsrEvaluator, int]:
    """Run any registered attack; normalise its result shape.

    BGC-style attacks return a :class:`~repro.attack.bgc.BGCResult` whose
    node-adaptive generator drives :func:`evaluate_backdoor`;
    :class:`NaivePoison` returns ``(condensed, universal_pattern)``, evaluated
    by blending the pattern into the test-node features.
    """
    result = attack.run(graph, condenser, rng)
    if isinstance(result, tuple):
        condensed, pattern = result
        target_class = int(getattr(attack.config, "target_class", 0))

        def universal_asr(model: Predictor) -> float:
            triggered = NaivePoison.attach_universal_trigger(
                graph, graph.split.test, pattern
            )
            predictions = predict_on_graph(model, triggered)
            return attack_success_rate(
                predictions, graph.labels, graph.split.test, target_class
            )

        poisoned = int(condensed.metadata.get("poisoned_nodes", 0))
        return condensed, universal_asr, poisoned

    generator = result.generator
    target_class = int(result.target_class)

    def generator_asr(model: Predictor) -> float:
        return evaluate_backdoor(model, graph, generator, target_class)

    return result.condensed, generator_asr, int(result.poisoned_nodes.size)


# ------------------------------------------------------------------ #
# Defense application
# ------------------------------------------------------------------ #
def _apply_defense(
    defense,
    condensed: CondensedGraph,
    model: Predictor,
    graph: GraphData,
    evaluation: EvaluationConfig,
    rng: np.random.Generator,
) -> Predictor:
    """Apply a registered defense and return the defended predictor.

    Three duck-typed protocols cover the registered families: dataset-level
    defenses expose ``apply_to_condensed`` (retrain on the sanitised graph),
    detectors expose ``detect`` (drop flagged nodes, retrain), and model-level
    defenses expose ``wrap`` (smooth the already-trained model).
    """
    if hasattr(defense, "apply_to_condensed"):
        defended = defense.apply_to_condensed(condensed)
        return train_model_on_condensed(defended, graph, evaluation, rng)
    if hasattr(defense, "detect"):
        report = defense.detect(condensed)
        defended = remove_flagged_nodes(condensed, report)
        return train_model_on_condensed(defended, graph, evaluation, rng)
    if hasattr(defense, "wrap"):
        return defense.wrap(model)
    raise ConfigurationError(
        f"defense {type(defense).__name__} implements none of "
        "apply_to_condensed/detect/wrap"
    )


# ------------------------------------------------------------------ #
# Entry points
# ------------------------------------------------------------------ #
def run_experiment(
    spec: ExperimentSpec,
    *,
    graph: GraphData | None = None,
    cell_index: int | None = None,
) -> RunRecord:
    """Execute one spec end-to-end and return its :class:`RunRecord`.

    ``graph`` lets a sweep share the loaded dataset across cells; when given
    it must be the dataset the spec names.  All five random streams (clean
    condensation, attack, victim training, clean training, defense) are
    spawned from ``spec.seed`` alone, so a cell's record never depends on
    what else ran in the process.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.from_dict(spec)
    spec.validate_runnable()
    # Build every component before the (potentially expensive) dataset
    # generation: a bad name or override typo anywhere in the spec is
    # rejected at near-zero cost — and independently of whether a sweep
    # already shares the graph.  Construction is cheap (config binding only).
    evaluation = _resolve_evaluation(spec)
    _dataset_seed(spec)
    condenser = _resolve_condenser(spec)
    attack = _resolve_attack(spec) if spec.attack.is_set else None
    defense = (
        DEFENSES.build(spec.defense.name, **spec.defense.overrides)
        if spec.defense.is_set
        else None
    )
    watch = _Stopwatch()
    if graph is None:
        graph = watch.measure("load_dataset", lambda: _load_graph(spec))
    elif graph.name.lower() != spec.dataset.name.lower():
        raise ConfigurationError(
            f"shared graph {graph.name!r} does not match spec dataset {spec.dataset.name!r}"
        )
    clean_rng, attack_rng, victim_rng, eval_rng, defense_rng = spawn_rngs(spec.seed, 5)

    record = RunRecord(spec=spec, cell_index=cell_index)

    asr_evaluator: AsrEvaluator | None = None
    attacked_model: Predictor | None = None
    attacked_condensed: CondensedGraph | None = None
    if attack is not None:
        attacked_condensed, asr_evaluator, poisoned = watch.measure(
            "attack", lambda: _execute_attack(attack, graph, condenser, attack_rng)
        )
        record.poisoned_nodes = poisoned
        attacked_model = watch.measure(
            "train_victim",
            lambda: train_model_on_condensed(attacked_condensed, graph, evaluation, victim_rng),
        )
        record.attack_cta = watch.measure(
            "evaluate", lambda: evaluate_clean(attacked_model, graph)
        )
        record.attack_asr = watch.measure("evaluate", lambda: asr_evaluator(attacked_model))

    # The attack leg consumed `condenser` (condensers are stateful), so the
    # clean baseline gets a fresh instance with identical configuration.
    clean_condenser = _resolve_condenser(spec) if attack is not None else condenser
    clean_condensed = watch.measure(
        "condense", lambda: clean_condenser.condense(graph, clean_rng)
    )
    record.condensed_nodes = clean_condensed.num_nodes
    clean_model = watch.measure(
        "train_clean",
        lambda: train_model_on_condensed(clean_condensed, graph, evaluation, eval_rng),
    )
    record.clean_cta = watch.measure("evaluate", lambda: evaluate_clean(clean_model, graph))
    if asr_evaluator is not None:
        record.clean_asr = watch.measure("evaluate", lambda: asr_evaluator(clean_model))

    if defense is not None:
        target_condensed = attacked_condensed if attacked_condensed is not None else clean_condensed
        target_model = attacked_model if attacked_model is not None else clean_model
        defended_model = watch.measure(
            "defense",
            lambda: _apply_defense(
                defense, target_condensed, target_model, graph, evaluation, defense_rng
            ),
        )
        record.defense_cta = watch.measure(
            "evaluate", lambda: evaluate_clean(defended_model, graph)
        )
        reference_cta = record.attack_cta if spec.attack.is_set else record.clean_cta
        record.defense_cta_delta = record.defense_cta - reference_cta
        if asr_evaluator is not None:
            record.defense_asr = watch.measure(
                "evaluate", lambda: asr_evaluator(defended_model)
            )
            record.defense_asr_delta = record.defense_asr - record.attack_asr

    record.timings = watch.timings
    return record


def run_sweep(
    sweep: SweepSpec,
    *,
    order: List[int] | None = None,
    on_record: Callable[[RunRecord], None] | None = None,
) -> List[RunRecord]:
    """Execute every cell of a sweep; records return in canonical grid order.

    ``order`` optionally permutes *execution* order (used by the determinism
    tests); it never changes the returned ordering or any cell's result,
    because per-cell seeds are fixed at expansion time.  ``on_record`` is
    invoked after each cell completes (in execution order) — the CLI uses it
    to stream ``results.jsonl``.  Cells naming the same dataset (and dataset
    seed) share one loaded graph, and through it the shared
    :class:`~repro.graph.cache.PropagationCache`.
    """
    if not isinstance(sweep, SweepSpec):
        sweep = SweepSpec.from_dict(sweep)
    specs = sweep.expand()
    if order is None:
        order = list(range(len(specs)))
    elif sorted(order) != list(range(len(specs))):
        raise ConfigurationError(
            f"order must be a permutation of range({len(specs)}), got {order!r}"
        )
    graphs: Dict[Tuple[str, int], GraphData] = {}
    records: List[RunRecord | None] = [None] * len(specs)
    for position, index in enumerate(order):
        spec = specs[index]
        key = dataset_cache_key(spec)
        if key not in graphs:
            graphs[key] = _load_graph(spec)
        logger.info(
            "sweep %s: cell %d/%d (grid index %d): %s/%s/%s",
            sweep.name,
            position + 1,
            len(specs),
            index,
            spec.dataset.name,
            spec.condenser.name,
            spec.attack.name or "clean",
        )
        record = run_experiment(spec, graph=graphs[key], cell_index=index)
        records[index] = record
        if on_record is not None:
            on_record(record)
    return records  # type: ignore[return-value]
