"""Process-pool execution backend for :func:`repro.api.runner.run_sweep`.

One sweep cell = one worker process, with at most ``ExecutionSpec.workers``
alive at a time.  Three properties define the backend:

**Determinism** — cells are dispatched in canonical grid order (or the
caller's ``order`` permutation) and results merge by grid index; every cell
derives all of its randomness from its own ``spec.seed`` (fixed at expansion
time), so the returned records are bit-identical to serial execution for any
worker count and any completion order.

**Shard-aware cache handoff** — the parent loads each dataset named by the
grid once and pays its base propagation (normalized operator + the hop chain
of every ``num_hops`` any cell's condenser uses) on the process-wide
:class:`~repro.graph.cache.PropagationCache`.  Under ``fork`` that is the
whole handoff: workers inherit the warmed cache through copy-on-write pages
and no payload is built.  Under the ``spawn`` fallback — whose workers start
with an empty cache — the parent additionally ships a *pickled*
:meth:`~repro.graph.cache.PropagationCache.export_base_chains` payload to
every worker assigned a cell on that dataset shard, installed with
:meth:`~repro.graph.cache.PropagationCache.warm_start`.  Either way no
worker re-pays base propagation, and completed workers ship their cache
counter deltas back; the merged totals land on ``SweepRecord.cache_stats``.

**Fault isolation** — a cell that raises becomes a structured failed
:class:`~repro.api.runner.RunRecord` (exception type, message, formatted
traceback, timing); a cell that exceeds ``ExecutionSpec.timeout`` is
terminated and recorded as a ``CellTimeout``; a worker that dies without
reporting (hard crash, ``os._exit``) is recorded as a ``WorkerCrash``.  Under
``on_error="raise"`` the first failure aborts the sweep with a
:class:`~repro.exceptions.SweepExecutionError`; under ``"record"`` the
remaining cells keep running.

The executor prefers the ``fork`` start method (zero-copy handoff of the
loaded datasets and registry state — including components registered at
runtime, e.g. by tests); on platforms without ``fork`` it falls back to
``spawn``, where workers re-import :mod:`repro` and receive the dataset and
warm-start payload through pickling.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import pickle
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.runner import (
    CACHE_COUNTER_KEYS,
    RunRecord,
    cache_counters,
    dataset_cache_key,
    error_info,
    merge_cache_stats,
    run_experiment,
    _load_graph,
)
from repro.api.spec import ExecutionSpec, ExperimentSpec, SweepSpec
from repro.exceptions import SweepExecutionError
from repro.graph.blocked import (
    remove_process_scratch,
    scratch_root,
    set_blocked_threshold,
    set_scratch_root,
)
from repro.graph.cache import get_default_cache
from repro.graph.data import GraphData
from repro.kernels import set_kernel_backend
from repro.registry import CONDENSERS
from repro.utils.logging import get_logger

logger = get_logger("api.parallel")

#: How long (seconds) the scheduler sleeps in ``connection.wait`` per poll.
_POLL_INTERVAL = 0.05
#: Grace period (seconds) for a terminated worker to exit before SIGKILL.
_TERMINATE_GRACE = 5.0


def preferred_start_method() -> str:
    """The multiprocessing start method the executor uses on this platform.

    ``fork`` is preferred only on Linux, where it is CPython's own default:
    zero-copy inheritance of the loaded datasets, the warmed cache and the
    registry state.  On macOS ``fork`` is available but unsafe (CPython
    switched the default to ``spawn`` precisely because forked children can
    abort inside ObjC/Accelerate-backed libraries once the parent has used
    them), so everywhere else the executor uses ``spawn`` and relies on the
    pickled handoff.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _cell_worker(
    connection,
    spec: ExperimentSpec,
    cell_index: int,
    graph: Optional[GraphData],
    warm_payload: Optional[bytes],
    blocked_threshold: Optional[int] = None,
    blocked_scratch_root: Optional[str] = None,
    kernel_backend: Optional[str] = None,
) -> None:
    """Worker entry point: run one cell, ship its record + cache stats back.

    Every outcome is reported through ``connection`` — an exception becomes
    an ``("error", info, stats)`` message rather than a crashed process, so
    the parent can distinguish a failing *cell* from a dying *worker*.  The
    shipped stats are the *delta* this worker produced: under ``fork`` the
    child inherits the parent's counter values, which must not be re-counted
    once per worker in the merge.  ``blocked_threshold`` re-installs the
    sweep's blocked-propagation override (forked workers inherit it, but
    ``spawn`` workers start from module defaults).  ``blocked_scratch_root``
    is the scratch root the parent resolved at sweep start: pinning it here
    BEFORE any blocked propagation runs guarantees the worker's block files
    land where the parent's crash/timeout cleanup will look, even if the
    cell mutates ``REPRO_BLOCKED_DIR`` mid-run.  The worker's own blocked
    scratch directory is removed on the way out regardless of outcome.
    ``kernel_backend`` likewise re-installs the sweep's kernel-backend
    override for the ``spawn`` path (forked workers inherit it).
    """
    if blocked_scratch_root is not None:
        set_scratch_root(blocked_scratch_root)
    if blocked_threshold is not None:
        set_blocked_threshold(blocked_threshold)
    if kernel_backend is not None:
        set_kernel_backend(kernel_backend)
    cache = get_default_cache()
    before = cache_counters(cache.stats())

    def stats_delta() -> Dict[str, int]:
        after = cache_counters(cache.stats())
        return {key: after[key] - before[key] for key in CACHE_COUNTER_KEYS}

    try:
        # A payload exists only under spawn (forked workers inherit the
        # parent's warmed cache through copy-on-write pages instead).
        if graph is not None and warm_payload is not None:
            cache.warm_start(graph, pickle.loads(warm_payload))
        record = run_experiment(spec, graph=graph, cell_index=cell_index)
        connection.send(("ok", record.to_dict(), stats_delta()))
    except BaseException as error:  # noqa: BLE001 — everything must be reported
        connection.send(("error", error_info(error), stats_delta()))
    finally:
        connection.close()
        remove_process_scratch()


def _cell_num_hops(spec: ExperimentSpec) -> Optional[int]:
    """The ``num_hops`` the cell's condenser will propagate with, if resolvable.

    Construction is cheap (config binding only).  A spec whose condenser
    cannot even be built is left unwarmed — the worker will fail eagerly and
    the failure is handled by the normal fault-isolation path.
    """
    try:
        condenser = CONDENSERS.build(spec.condenser.name, **spec.condenser.overrides)
    except Exception:  # noqa: BLE001
        return None
    hops = getattr(getattr(condenser, "config", None), "num_hops", None)
    return int(hops) if isinstance(hops, int) and hops >= 1 else None


def prepare_handoff(
    specs: List[ExperimentSpec],
    start_method: str | None = None,
) -> Tuple[Dict[Tuple[str, int], GraphData], Dict[Tuple[str, int], bytes]]:
    """Load each dataset shard once and pre-pay its base propagation.

    Returns ``(graphs, warm)``: the loaded graph and the pickled
    ``export_base_chains`` payload per dataset key.  The parent computes the
    chains with exactly the code a worker would run, so the handoff changes
    *where* base propagation happens, never its floats.  Under ``fork`` the
    pickled payload is never consumed — workers inherit the warmed cache
    through copy-on-write pages and ``warm`` stays empty; it is built only
    for the ``spawn`` path, whose workers start with an empty cache.  A
    dataset that fails to load is skipped here; its cells fail in their
    workers and surface through the fault-isolation path.
    """
    if start_method is None:
        start_method = preferred_start_method()
    cache = get_default_cache()
    graphs: Dict[Tuple[str, int], GraphData] = {}
    warm: Dict[Tuple[str, int], bytes] = {}
    hop_counts: Dict[Tuple[str, int], set] = {}
    unloadable: set = set()
    for spec in specs:
        try:
            key = dataset_cache_key(spec)
        except Exception:  # noqa: BLE001 — bad dataset overrides fail in-worker
            continue
        if key in unloadable:
            continue
        if key not in graphs:
            try:
                graphs[key] = _load_graph(spec)
            except Exception:  # noqa: BLE001
                # Remember the failure: re-attempting once per cell could
                # multiply an expensive failed generation by the grid size.
                unloadable.add(key)
                logger.warning(
                    "dataset %r failed to load in the parent; its cells will "
                    "report the failure from their workers",
                    spec.dataset.name,
                )
                continue
        hops = _cell_num_hops(spec)
        if hops is not None:
            hop_counts.setdefault(key, set()).add(hops)
    for key, graph in graphs.items():
        for hops in sorted(hop_counts.get(key, ())):
            cache.propagated(graph, hops)
        if start_method != "fork":
            warm[key] = pickle.dumps(cache.export_base_chains(graph))
    return graphs, warm


@dataclass
class _RunningCell:
    """Book-keeping for one live worker process."""

    process: multiprocessing.process.BaseProcess
    connection: multiprocessing.connection.Connection
    spec: ExperimentSpec
    started: float
    deadline: Optional[float]
    #: Scratch root resolved once at sweep start and pinned in the worker —
    #: the parent cleans a dead worker's blocked scratch under *this* root,
    #: not whatever its environment resolves to at cleanup time.
    scratch_root: str


def _stop_process(cell: _RunningCell) -> None:
    """Terminate a worker, escalating to SIGKILL after a grace period.

    A terminated (or SIGKILLed) worker never runs its own scratch cleanup,
    so the parent removes the worker's blocked-propagation scratch directory
    once the process is confirmed dead — mmap block files must not outlive
    a crashed or timed-out cell.
    """
    if cell.process.is_alive():
        cell.process.terminate()
        cell.process.join(_TERMINATE_GRACE)
        if cell.process.is_alive():
            cell.process.kill()
            cell.process.join()
    cell.connection.close()
    if cell.process.pid is not None:
        remove_process_scratch(cell.process.pid, root=cell.scratch_root)


def run_sweep_process(
    sweep: SweepSpec,
    specs: List[ExperimentSpec],
    order: List[int],
    execution: ExecutionSpec,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> Tuple[List[RunRecord], Dict[str, int]]:
    """Execute ``specs`` on a process pool; return records + merged cache stats.

    Records come back indexed by canonical grid position regardless of
    completion order.  ``on_record`` fires in completion order (failed
    records included).  Raises :class:`SweepExecutionError` on the first
    failure when ``execution.on_error == "raise"``, terminating the rest of
    the pool.
    """
    start_method = preferred_start_method()
    context = multiprocessing.get_context(start_method)
    # The parent's handoff work (dataset loads + base propagation) is cache
    # activity this sweep paid; merge its counter delta alongside the worker
    # deltas so serial and process runs report comparable totals.
    parent_before = cache_counters(get_default_cache().stats())
    # One resolution of the blocked-scratch root for the whole sweep: every
    # worker pins it before doing blocked work, and every parent-side cleanup
    # of a dead worker targets it, so a mid-sweep REPRO_BLOCKED_DIR change
    # (parent or cell) can no longer strand block files.
    sweep_scratch_root = scratch_root()
    graphs, warm = prepare_handoff(specs, start_method)
    parent_after = cache_counters(get_default_cache().stats())
    records: List[Optional[RunRecord]] = [None] * len(specs)
    worker_stats: List[Dict[str, int]] = [
        {key: parent_after[key] - parent_before[key] for key in CACHE_COUNTER_KEYS}
    ]
    pending = deque(order)
    running: Dict[int, _RunningCell] = {}

    def launch(index: int) -> None:
        spec = specs[index]
        try:
            key = dataset_cache_key(spec)
        except Exception:  # noqa: BLE001
            key = None
        parent_end, child_end = context.Pipe(duplex=False)
        process = context.Process(
            target=_cell_worker,
            args=(
                child_end,
                spec,
                index,
                graphs.get(key),
                warm.get(key),
                execution.blocked_threshold,
                sweep_scratch_root,
                execution.kernel_backend,
            ),
            daemon=True,
            name=f"repro-sweep-{sweep.name}-cell-{index}",
        )
        process.start()
        child_end.close()
        now = time.perf_counter()
        running[index] = _RunningCell(
            process=process,
            connection=parent_end,
            spec=spec,
            started=now,
            deadline=None if execution.timeout is None else now + execution.timeout,
            scratch_root=sweep_scratch_root,
        )
        logger.info(
            "sweep %s: dispatched cell %d (%s/%s/%s) to pid %s",
            sweep.name,
            index,
            spec.dataset.name,
            spec.condenser.name,
            spec.attack.name or "clean",
            process.pid,
        )

    def finish(index: int, record: RunRecord) -> Optional[RunRecord]:
        """Store a cell's record; return it when it must abort the sweep.

        Never raises itself: the caller stores every drained record of a
        batch first (so completed siblings survive into ``records`` and the
        caller's ``on_record`` sink) and aborts afterwards.
        """
        records[index] = record
        if not record.ok and execution.on_error == "raise":
            return record
        if on_record is not None:
            on_record(record)
        return None

    def raise_failure(record: RunRecord) -> None:
        """Abort the sweep on the first failing cell (on_error="raise")."""
        raise SweepExecutionError(
            f"sweep {sweep.name!r} cell {record.cell_index} failed with "
            f"{record.error.get('type', 'Exception')}: "
            f"{record.error.get('message', '')}\n"
            f"{record.error.get('traceback', '')}",
            record=record,
        )

    def drain_result(index: int, cell: _RunningCell) -> RunRecord:
        """Receive one cell's reported result (or its crash) as a RunRecord."""
        try:
            kind, payload, stats = cell.connection.recv()
        except (EOFError, OSError):
            cell.process.join()
            cell.connection.close()
            if cell.process.pid is not None:
                # A worker that died without reporting also skipped its own
                # scratch cleanup; reclaim its blocked block files here,
                # under the root the worker was pinned to at launch.
                remove_process_scratch(cell.process.pid, root=cell.scratch_root)
            return RunRecord.from_failure(
                cell.spec,
                index,
                {
                    "type": "WorkerCrash",
                    "message": (
                        "worker exited with code "
                        f"{cell.process.exitcode} before reporting a result"
                    ),
                    "traceback": "",
                },
                time.perf_counter() - cell.started,
            )
        cell.process.join()
        cell.connection.close()
        worker_stats.append(dict(stats))
        if kind == "ok":
            return RunRecord.from_dict(payload)
        return RunRecord.from_failure(
            cell.spec, index, payload, time.perf_counter() - cell.started
        )

    def collect_ready() -> None:
        by_connection = {cell.connection: index for index, cell in running.items()}
        ready = multiprocessing.connection.wait(
            list(by_connection), timeout=_POLL_INTERVAL
        )
        # Drain and store every ready worker's record BEFORE aborting on a
        # failure: under on_error="raise" a completed sibling in the same
        # batch must reach `records` (and the caller's on_record sink)
        # rather than be dropped unread.  Ascending grid order keeps
        # on_record deterministic within a batch.
        drained = sorted(
            (by_connection[connection], running.pop(by_connection[connection]))
            for connection in ready
        )
        failure: Optional[RunRecord] = None
        for index, cell in drained:
            aborting = finish(index, drain_result(index, cell))
            failure = failure or aborting
        if failure is not None:
            raise_failure(failure)

    def reap_timeouts() -> None:
        now = time.perf_counter()
        failure: Optional[RunRecord] = None
        for index in [
            i
            for i, cell in running.items()
            if cell.deadline is not None and now > cell.deadline
        ]:
            cell = running.pop(index)
            if cell.connection.poll():
                # The result landed between collect_ready's wait() and this
                # deadline check: the cell finished inside its budget, so
                # take the real record instead of fabricating a timeout.
                record = drain_result(index, cell)
            else:
                _stop_process(cell)
                record = RunRecord.from_failure(
                    cell.spec,
                    index,
                    {
                        "type": "CellTimeout",
                        "message": (
                            f"cell exceeded the per-cell timeout of "
                            f"{execution.timeout}s and was terminated"
                        ),
                        "traceback": "",
                    },
                    now - cell.started,
                )
            aborting = finish(index, record)
            failure = failure or aborting
        if failure is not None:
            raise_failure(failure)

    try:
        while pending or running:
            while pending and len(running) < execution.workers:
                launch(pending.popleft())
            collect_ready()
            reap_timeouts()
    finally:
        for cell in running.values():
            _stop_process(cell)
        running.clear()
    return records, merge_cache_stats(worker_stats)


def run_sweep_pool(
    sweep: SweepSpec,
    specs: List[ExperimentSpec],
    order: List[int],
    execution: ExecutionSpec,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> Tuple[List[RunRecord], Dict[str, int]]:
    """Execute ``specs`` on a persistent worker pool (``backend="pool"``).

    Same contract as :func:`run_sweep_process` — records indexed by grid
    position, ``on_record`` in completion order, merged cache stats,
    :class:`SweepExecutionError` on first failure under
    ``on_error="raise"`` — but instead of forking one process per *cell*,
    ``execution.workers`` long-lived :class:`~repro.service.pool.WorkerPool`
    processes are reused across every cell of the sweep.  The per-cell seeds
    fixed at expansion time make the records bit-identical to both the
    serial and the fork-per-cell backends.
    """
    from repro.service.pool import WorkerPool

    parent_before = cache_counters(get_default_cache().stats())
    # Handoff BEFORE the pool starts: forked workers inherit the loaded
    # datasets and the warmed cache through copy-on-write pages; under spawn
    # the pickled payloads below are shipped with each worker's first cell
    # on that dataset instead.
    graphs, warm = prepare_handoff(specs)
    parent_after = cache_counters(get_default_cache().stats())
    records: List[Optional[RunRecord]] = [None] * len(specs)
    finished = threading.Event()
    lock = threading.Lock()
    state: Dict[str, Any] = {"left": len(order), "failure": None}

    def make_on_done(index: int) -> Callable[[RunRecord], None]:
        def on_done(record: RunRecord) -> None:
            deliver = False
            with lock:
                records[index] = record
                state["left"] -= 1
                if (
                    not record.ok
                    and execution.on_error == "raise"
                    and state["failure"] is None
                ):
                    # First failure aborts the sweep; the failed record is
                    # raised, not streamed, matching the process backend.
                    state["failure"] = record
                    finished.set()
                else:
                    deliver = on_record is not None
                    if state["left"] == 0:
                        finished.set()
            if deliver:
                on_record(record)

        return on_done

    pool = WorkerPool(
        execution.workers,
        timeout=execution.timeout,
        blocked_threshold=execution.blocked_threshold,
        kernel_backend=execution.kernel_backend,
        name=sweep.name,
    )
    try:
        pool.start()
        if not order:
            finished.set()
        for index in order:
            spec = specs[index]
            try:
                key = dataset_cache_key(spec)
            except Exception:  # noqa: BLE001 — bad overrides fail in-worker
                key = None
            pool.submit(
                spec,
                index,
                on_done=make_on_done(index),
                graph=graphs.get(key),
                warm_payload=warm.get(key),
            )
        finished.wait()
        failure = state["failure"]
        if failure is not None:
            raise SweepExecutionError(
                f"sweep {sweep.name!r} cell {failure.cell_index} failed with "
                f"{failure.error.get('type', 'Exception')}: "
                f"{failure.error.get('message', '')}\n"
                f"{failure.error.get('traceback', '')}",
                record=failure,
            )
    finally:
        pool.shutdown()
    worker_stats = [
        {key: parent_after[key] - parent_before[key] for key in CACHE_COUNTER_KEYS}
    ]
    worker_stats.extend(pool.merged_worker_stats())
    return records, merge_cache_stats(worker_stats)
