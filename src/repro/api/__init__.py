"""Declarative experiment API: specs in, structured records out.

This package turns a scenario into *data*: an
:class:`~repro.api.spec.ExperimentSpec` names one component per registry
(:mod:`repro.registry`) plus overrides, :func:`~repro.api.runner.run_experiment`
executes it, and :class:`~repro.api.spec.SweepSpec` /
:func:`~repro.api.runner.run_sweep` expand and execute whole grids — every
condenser × dataset × poison-ratio cell of the paper's Table II is one sweep.

Spec schema (JSON)
------------------
Every component is either a bare name string, ``null`` (absent, allowed for
``attack``/``defense``/``trigger``/``evaluation``), or the full form
``{"name": <registry-name>, "overrides": {<field>: <value>, ...}}``.
Override keys bind onto the component's config dataclass and may use
dot-paths for nested configs (``"trigger.trigger_size"``)::

    {
      "dataset":    {"name": "cora", "overrides": {"seed": 0}},
      "model":      "gcn",
      "condenser":  {"name": "gcond", "overrides": {"epochs": 30, "ratio": 0.026}},
      "attack":     {"name": "bgc", "overrides": {"poison_ratio": 0.1}},
      "defense":    "prune",
      "trigger":    {"name": "mlp", "overrides": {"trigger_size": 4}},
      "evaluation": {"overrides": {"epochs": 150}},
      "seed": 0
    }

Component fields resolve against the registries: ``dataset`` → ``DATASETS``
(overrides: only ``seed``), ``model`` → ``MODELS`` (overrides merge into the
evaluation config: ``hidden``, ``num_layers``, ``dropout``), ``condenser`` →
``CONDENSERS`` (:class:`~repro.condensation.base.CondensationConfig` fields),
``attack`` → ``ATTACKS`` (the attack's own config fields), ``defense`` →
``DEFENSES``, ``trigger`` (name selects the encoder; overrides are
:class:`~repro.attack.trigger.TriggerConfig` fields) and ``evaluation``
(:class:`~repro.evaluation.pipeline.EvaluationConfig` fields).

A sweep file wraps a base spec with cartesian ``axes``::

    {
      "name": "smoke",
      "seed": 0,
      "base": {"dataset": "tiny", "condenser": {"overrides": {"epochs": 2}}},
      "axes": {
        "condenser": ["gcond", "gc-sntk"],
        "attack": ["bgc", "naive"],
        "defense": ["prune"],
        "attack.poison_ratio": [0.05, 0.1]
      }
    }

Axis keys are ``"seed"``, a component field (values name components), or a
dot-path whose tail becomes an override on that component.  Expansion is the
cartesian product in axis insertion order; each cell receives a deterministic
seed derived from the sweep seed and its grid index, so results are
independent of execution order.

An optional ``execution`` block says *how* the grid runs — never what it
computes (results are bit-identical across backends and worker counts)::

    "execution": {"backend": "process", "workers": 4,
                  "timeout": null, "on_error": "record"}

``backend: "process"`` fans cells out over worker processes with shard-aware
:class:`~repro.graph.cache.PropagationCache` handoff; ``on_error: "record"``
turns a crashing or timed-out cell into a structured failed
:class:`~repro.api.runner.RunRecord` instead of aborting the sweep.

Quickstart
----------
>>> from repro.api import ExperimentSpec, run_experiment
>>> spec = ExperimentSpec.from_dict(
...     {"dataset": "tiny", "condenser": {"name": "gcond", "overrides": {"epochs": 2}},
...      "attack": "bgc", "evaluation": {"overrides": {"epochs": 10}}}
... )
>>> record = run_experiment(spec)   # doctest: +SKIP
>>> record.attack_asr               # doctest: +SKIP
"""

from repro.api.spec import (
    COMPONENT_FIELDS,
    ComponentSpec,
    ExecutionSpec,
    ExperimentSpec,
    SweepSpec,
    derive_cell_seed,
)
from repro.api.transfer import TransferSweepSpec
from repro.api.runner import RunRecord, SweepRecord, run_experiment, run_sweep

__all__ = [
    "COMPONENT_FIELDS",
    "ComponentSpec",
    "ExecutionSpec",
    "ExperimentSpec",
    "SweepSpec",
    "TransferSweepSpec",
    "derive_cell_seed",
    "RunRecord",
    "SweepRecord",
    "run_experiment",
    "run_sweep",
]
