"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the serializable description of one scenario
cell: which dataset, condenser, attack, defense, downstream model and
evaluation protocol to compose, each expressed as a registry name plus an
overrides mapping.  A :class:`SweepSpec` is a base spec plus cartesian axes
that expand into a grid of concrete specs — the shape of every table in the
paper.  Specs round-trip exactly through ``to_dict``/``from_dict`` and JSON:

>>> spec = ExperimentSpec.from_dict({"dataset": "cora", "condenser": "gcond"})
>>> ExperimentSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.exceptions import ConfigurationError

#: ExperimentSpec fields that hold a (name, overrides) component reference,
#: in canonical serialization order.
COMPONENT_FIELDS = (
    "dataset",
    "model",
    "condenser",
    "attack",
    "defense",
    "trigger",
    "evaluation",
)


def _check_seed(seed: Any) -> None:
    """Seeds must be non-negative ints (``SeedSequence`` rejects negatives)."""
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ConfigurationError(f"seed must be a non-negative integer, got {seed!r}")


@dataclass(frozen=True)
class ComponentSpec:
    """A reference to one registered component: its name plus overrides.

    ``name=None`` means "component absent" (no attack / no defense).  The
    ``overrides`` mapping is applied through
    :func:`repro.registry.bind_config`, so keys may be dot-paths into nested
    config dataclasses (``"trigger.trigger_size"``).
    """

    name: str | None = None
    overrides: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name is not None and not isinstance(self.name, str):
            raise ConfigurationError(f"component name must be a string, got {self.name!r}")
        if not isinstance(self.overrides, dict):
            raise ConfigurationError(
                f"component overrides must be a mapping, got {type(self.overrides).__name__}"
            )

    @classmethod
    def coerce(cls, value: Any, *, context: str = "component") -> "ComponentSpec":
        """Build a :class:`ComponentSpec` from the accepted shorthands.

        ``None`` → absent, ``"gcond"`` → name only, ``{"name": ..,
        "overrides": {..}}`` → full form, and an existing instance passes
        through unchanged.
        """
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"name", "overrides"}
            if unknown:
                raise ConfigurationError(
                    f"unknown {context} keys {sorted(unknown)}; expected 'name'/'overrides'"
                )
            return cls(
                name=value.get("name"),
                overrides=dict(value.get("overrides") or {}),
            )
        raise ConfigurationError(
            f"cannot interpret {value!r} as a {context} spec (need None, str or mapping)"
        )

    @property
    def is_set(self) -> bool:
        """Whether this component names anything (``None`` means absent)."""
        return self.name is not None

    def with_name(self, name: str | None) -> "ComponentSpec":
        """Copy of this spec with the component name replaced, overrides kept."""
        return ComponentSpec(name=name, overrides=dict(self.overrides))

    def with_override(self, key: str, value: Any) -> "ComponentSpec":
        """Copy of this spec with one override key set (dot-paths allowed)."""
        merged = dict(self.overrides)
        merged[key] = value
        return ComponentSpec(name=self.name, overrides=merged)

    def to_dict(self) -> Dict[str, Any]:
        """The full serialized form ``{"name": ..., "overrides": {...}}``."""
        return {"name": self.name, "overrides": dict(self.overrides)}


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully described experiment cell (a scenario as data, not code).

    Components resolve against the registries in :mod:`repro.registry`:
    ``dataset`` → ``DATASETS``, ``model`` → ``MODELS``, ``condenser`` →
    ``CONDENSERS``, ``attack`` → ``ATTACKS`` (absent = clean condensation
    only), ``defense`` → ``DEFENSES`` (absent = no defense).  ``trigger``
    configures the attack's trigger generator (its name selects the encoder:
    ``"mlp"``, ``"gcn"`` or ``"transformer"``); ``evaluation`` configures the
    downstream training protocol.  ``seed`` drives every random stream of the
    cell through :func:`repro.utils.seed.spawn_rngs`.
    """

    dataset: ComponentSpec = field(default_factory=lambda: ComponentSpec("cora"))
    model: ComponentSpec = field(default_factory=lambda: ComponentSpec("gcn"))
    condenser: ComponentSpec = field(default_factory=lambda: ComponentSpec("gcond"))
    attack: ComponentSpec = field(default_factory=ComponentSpec)
    defense: ComponentSpec = field(default_factory=ComponentSpec)
    trigger: ComponentSpec = field(default_factory=ComponentSpec)
    evaluation: ComponentSpec = field(default_factory=ComponentSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        for name in COMPONENT_FIELDS:
            object.__setattr__(
                self, name, ComponentSpec.coerce(getattr(self, name), context=name)
            )
        _check_seed(self.seed)

    def validate_runnable(self) -> None:
        """Check that every required component names something.

        Deferred out of ``__post_init__`` because sweep base specs may leave
        e.g. the condenser name to an axis; :func:`repro.api.runner.run_experiment`
        calls this before resolving components.
        """
        for required in ("dataset", "model", "condenser"):
            if not getattr(self, required).is_set:
                raise ConfigurationError(f"ExperimentSpec.{required} must name a component")

    # -------------------------------------------------------------- #
    # Serialization
    # -------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """Exact, JSON-compatible representation (round-trips via from_dict)."""
        payload: Dict[str, Any] = {
            name: getattr(self, name).to_dict() for name in COMPONENT_FIELDS
        }
        payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Parse a mapping; component values accept the shorthands of
        :meth:`ComponentSpec.coerce`."""
        unknown = set(payload) - set(COMPONENT_FIELDS) - {"seed"}
        if unknown:
            raise ConfigurationError(
                f"unknown ExperimentSpec keys {sorted(unknown)}; "
                f"expected {sorted(COMPONENT_FIELDS)} and 'seed'"
            )
        kwargs: Dict[str, Any] = {
            name: ComponentSpec.coerce(payload[name], context=name)
            for name in COMPONENT_FIELDS
            if name in payload
        }
        if "seed" in payload:
            kwargs["seed"] = payload["seed"]
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a canonical (sorted-keys) JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON string produced by :meth:`to_json` (or hand-written)."""
        return cls.from_dict(json.loads(text))

    def cache_key(self) -> str:
        """Content-address of this cell: sha256 over the canonical JSON form.

        The hash is taken over the exact round-trip representation
        (:meth:`to_dict` with sorted keys and compact separators), which
        already folds the shorthand spellings together — ``"gcond"`` and
        ``{"name": "gcond", "overrides": {}}`` hash identically — and
        includes the seed, so two specs share a key exactly when
        :func:`~repro.api.runner.run_experiment` would produce bit-identical
        records for them.  This is the key under which the
        :class:`~repro.service.store.ResultStore` memoises completed cells.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -------------------------------------------------------------- #
    # Derivation
    # -------------------------------------------------------------- #
    def with_axis_value(self, axis: str, value: Any) -> "ExperimentSpec":
        """Return a copy with one sweep-axis assignment applied.

        ``axis`` is either ``"seed"``, a component field name (value names the
        component, or is a mapping/ComponentSpec replacing it wholesale), or a
        dot-path ``"<component>.<override...>"`` whose tail becomes an
        override key on that component (nested dots reach nested configs,
        e.g. ``"attack.trigger.trigger_size"``).
        """
        if axis == "seed":
            _check_seed(value)
            return replace(self, seed=value)
        head, _, rest = axis.partition(".")
        if head not in COMPONENT_FIELDS:
            raise ConfigurationError(
                f"unknown sweep axis {axis!r}; axes start with 'seed' or one of "
                f"{sorted(COMPONENT_FIELDS)}"
            )
        component: ComponentSpec = getattr(self, head)
        if rest:
            updated = component.with_override(rest, value)
        elif isinstance(value, str):
            updated = component.with_name(value)
        else:
            updated = ComponentSpec.coerce(value, context=head)
        return replace(self, **{head: updated})


#: Execution backends accepted by :class:`ExecutionSpec`.
EXECUTION_BACKENDS = ("serial", "process", "pool")
#: Failure policies accepted by :class:`ExecutionSpec`.
ON_ERROR_MODES = ("raise", "record")


@dataclass(frozen=True)
class ExecutionSpec:
    """How a sweep executes — *not* what it computes.

    Execution settings never change any cell's result: per-cell seeds are
    fixed at expansion time and records merge by canonical grid index, so a
    sweep is bit-identical under ``serial`` and ``process`` backends for any
    worker count.  The fields:

    ``backend``
        ``"serial"`` runs cells in the calling process (the default);
        ``"process"`` runs each cell in its own worker process (a pool of at
        most ``workers`` live at a time) with shard-aware
        :class:`~repro.graph.cache.PropagationCache` handoff; ``"pool"``
        reuses one long-lived worker process per slot across cells (see
        :class:`~repro.service.pool.WorkerPool`) — same fault isolation and
        bit-identical results, but grids of many tiny cells stop paying one
        process launch per cell.
    ``workers``
        Maximum number of concurrently live worker processes (ignored by the
        serial backend).
    ``timeout``
        Per-cell wall-clock budget in seconds (``None`` = unlimited).
        Enforced by the process backend, which terminates the worker; the
        serial backend cannot preempt a running cell and ignores it.  The
        clock starts when the worker process launches, so the budget
        includes worker startup (negligible under ``fork``; under the
        ``spawn`` fallback it includes interpreter boot and imports — size
        timeouts generously there).
    ``on_error``
        ``"raise"`` (default) propagates the first cell failure —
        the original exception for the serial backend, a
        :class:`~repro.exceptions.SweepExecutionError` for the process
        backend.  ``"record"`` turns a failed cell into a structured failed
        :class:`~repro.api.runner.RunRecord` (error type, message,
        traceback, timing) and keeps the sweep running.
    ``blocked_threshold``
        Element-count threshold (``num_nodes * num_features``) above which
        the :class:`~repro.graph.cache.PropagationCache` streams hop chains
        through the blocked out-of-core engine
        (:mod:`repro.graph.blocked`) instead of holding dense arrays.
        ``None`` (default) keeps the process-wide setting (the
        ``REPRO_BLOCKED_THRESHOLD`` environment variable or the built-in
        default); ``0`` forces every chain through the blocked engine.
        Like every execution field it never changes a cell's floats below
        round-off — the blocked engine is exact per row block — and the
        sweep remains bit-identical across backends.
    ``kernel_backend``
        Name of the :mod:`repro.kernels` backend the sweep's numerical
        primitives dispatch through (``"numpy"``, ``"threaded"``, or any
        name registered via
        :func:`repro.kernels.register_kernel_backend`).  ``None`` (default)
        keeps the process-wide setting (the ``REPRO_KERNEL_BACKEND``
        environment variable or the built-in ``"numpy"`` default).  Like
        every execution field it never changes a cell's result: every
        registered backend is pinned to the numpy reference by the
        kernel-conformance suite, so records stay bit-identical across
        kernel backends.
    """

    backend: str = "serial"
    workers: int = 1
    timeout: float | None = None
    on_error: str = "raise"
    blocked_threshold: int | None = None
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in EXECUTION_BACKENDS:
            raise ConfigurationError(
                f"execution backend must be one of {list(EXECUTION_BACKENDS)}, "
                f"got {self.backend!r}"
            )
        if (
            not isinstance(self.workers, int)
            or isinstance(self.workers, bool)
            or self.workers < 1
        ):
            raise ConfigurationError(
                f"execution workers must be a positive integer, got {self.workers!r}"
            )
        if self.timeout is not None:
            if isinstance(self.timeout, bool) or not isinstance(self.timeout, (int, float)):
                raise ConfigurationError(
                    f"execution timeout must be a number of seconds or null, "
                    f"got {self.timeout!r}"
                )
            # NaN/inf would silently disable the deadline check and break
            # strict-JSON serialisation (the non-standard NaN/Infinity tokens).
            if not math.isfinite(self.timeout) or self.timeout <= 0:
                raise ConfigurationError(
                    f"execution timeout must be positive and finite, "
                    f"got {self.timeout!r}"
                )
            object.__setattr__(self, "timeout", float(self.timeout))
        if self.on_error not in ON_ERROR_MODES:
            raise ConfigurationError(
                f"execution on_error must be one of {list(ON_ERROR_MODES)}, "
                f"got {self.on_error!r}"
            )
        if self.blocked_threshold is not None and (
            not isinstance(self.blocked_threshold, int)
            or isinstance(self.blocked_threshold, bool)
            or self.blocked_threshold < 0
        ):
            raise ConfigurationError(
                f"execution blocked_threshold must be a non-negative integer "
                f"or null, got {self.blocked_threshold!r}"
            )
        if self.kernel_backend is not None:
            if not isinstance(self.kernel_backend, str):
                raise ConfigurationError(
                    f"execution kernel_backend must be a backend name or null, "
                    f"got {self.kernel_backend!r}"
                )
            # Validate eagerly against the registry so a typo fails at spec
            # construction (and CLI parse time), not mid-sweep in a worker.
            from repro.kernels import available_kernel_backends

            if self.kernel_backend not in available_kernel_backends():
                raise ConfigurationError(
                    f"unknown execution kernel_backend {self.kernel_backend!r}; "
                    f"registered backends: "
                    f"{', '.join(available_kernel_backends())}"
                )

    @classmethod
    def coerce(cls, value: Any) -> "ExecutionSpec":
        """Build an :class:`ExecutionSpec` from the accepted shorthands.

        ``None`` → defaults, a mapping → the full form (unknown keys
        rejected), and an existing instance passes through unchanged.
        """
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        if isinstance(value, Mapping):
            unknown = set(value) - {
                "backend",
                "workers",
                "timeout",
                "on_error",
                "blocked_threshold",
                "kernel_backend",
            }
            if unknown:
                raise ConfigurationError(
                    f"unknown execution keys {sorted(unknown)}; expected "
                    "'backend'/'workers'/'timeout'/'on_error'/'blocked_threshold'"
                    "/'kernel_backend'"
                )
            return cls(
                backend=value.get("backend", "serial"),
                workers=value.get("workers", 1),
                timeout=value.get("timeout"),
                on_error=value.get("on_error", "raise"),
                blocked_threshold=value.get("blocked_threshold"),
                kernel_backend=value.get("kernel_backend"),
            )
        raise ConfigurationError(
            f"cannot interpret {value!r} as an execution spec (need None or mapping)"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Exact, JSON-compatible representation (round-trips via coerce)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "timeout": self.timeout,
            "on_error": self.on_error,
            "blocked_threshold": self.blocked_threshold,
            "kernel_backend": self.kernel_backend,
        }


def derive_cell_seed(sweep_seed: int, cell_index: int) -> int:
    """Deterministic per-cell seed, independent of execution order.

    Derived via :class:`numpy.random.SeedSequence` spawn keys from the sweep
    seed and the cell's position in the *canonical* grid, so a cell's seed
    (and therefore its entire result) does not depend on which cells ran
    before it.
    """
    sequence = np.random.SeedSequence(entropy=sweep_seed, spawn_key=(cell_index,))
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


@dataclass(frozen=True)
class SweepSpec:
    """A base :class:`ExperimentSpec` plus cartesian sweep axes.

    ``axes`` maps axis names (see :meth:`ExperimentSpec.with_axis_value`) to
    value lists; :meth:`expand` emits one concrete spec per element of the
    cartesian product, in the insertion order of ``axes`` (last axis varies
    fastest).  Unless a ``"seed"`` axis is given explicitly, each cell's seed
    is derived from ``seed`` and the cell index via :func:`derive_cell_seed`.
    ``execution`` (an :class:`ExecutionSpec`) says *how* the grid runs —
    serial or process-parallel — and never changes what any cell computes.
    """

    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    seed: int = 0
    name: str = "sweep"
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.base, ExperimentSpec):
            object.__setattr__(self, "base", ExperimentSpec.from_dict(self.base))
        object.__setattr__(self, "execution", ExecutionSpec.coerce(self.execution))
        if not isinstance(self.axes, dict):
            raise ConfigurationError("axes must be a mapping of axis name -> value list")
        normalized = {}
        for axis, values in self.axes.items():
            # Reject strings explicitly: list("gcond") would silently explode
            # a scalar into per-character cells.
            if isinstance(values, (str, bytes)) or not isinstance(values, (list, tuple)):
                raise ConfigurationError(
                    f"axis {axis!r} must map to a non-empty list, got {values!r}"
                )
            if not values:
                raise ConfigurationError(
                    f"axis {axis!r} must map to a non-empty list, got {values!r}"
                )
            normalized[axis] = list(values)
        object.__setattr__(self, "axes", normalized)
        _check_seed(self.seed)

    @property
    def num_cells(self) -> int:
        """Number of cells the cartesian product expands to."""
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def expand(self) -> List[ExperimentSpec]:
        """The canonical grid: one concrete spec per cartesian cell."""
        axis_names = list(self.axes)
        cells: List[ExperimentSpec] = []
        for index, combo in enumerate(
            itertools.product(*(self.axes[name] for name in axis_names))
        ):
            spec = self.base
            for axis, value in zip(axis_names, combo):
                spec = spec.with_axis_value(axis, value)
            if "seed" not in self.axes:
                spec = replace(spec, seed=derive_cell_seed(self.seed, index))
            cells.append(spec)
        return cells

    # -------------------------------------------------------------- #
    # Serialization
    # -------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """Exact, JSON-compatible representation (round-trips via from_dict)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "base": self.base.to_dict(),
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        unknown = set(payload) - {"name", "seed", "base", "axes", "execution"}
        if unknown:
            raise ConfigurationError(
                f"unknown SweepSpec keys {sorted(unknown)}; "
                "expected 'name', 'seed', 'base', 'axes', 'execution'"
            )
        return cls(
            base=ExperimentSpec.from_dict(payload.get("base") or {}),
            axes=dict(payload.get("axes") or {}),
            seed=payload.get("seed", 0),
            name=payload.get("name", "sweep"),
            execution=ExecutionSpec.coerce(payload.get("execution")),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a canonical (sorted-keys) JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a JSON string produced by :meth:`to_json` (or hand-written)."""
        return cls.from_dict(json.loads(text))
