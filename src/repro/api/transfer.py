"""Declarative transferability sweeps: one surrogate, every victim.

A :class:`TransferSweepSpec` describes the paper's transfer experiments as
data: condense under a fixed surrogate (the base spec's condenser + attack),
then evaluate attack success across downstream architectures × defenses.
:meth:`TransferSweepSpec.to_sweep` expands it into an ordinary
:class:`~repro.api.spec.SweepSpec` with a ``model`` × ``defense`` grid, so a
transfer study inherits everything sweeps already have — serial/process/pool
execution, the result store, per-cell seeds and bit-identical determinism —
without any new execution machinery.

``models=None`` / ``defenses=None`` mean "every registered component at
expansion time": registering a new model or defense automatically grows the
matrix.  The defense axis always includes the no-defense column (``None``)
unless an explicit ``defenses`` list omits it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.api.spec import ExecutionSpec, ExperimentSpec, SweepSpec, _check_seed
from repro.exceptions import ConfigurationError
from repro.registry import DEFENSES, MODELS

__all__ = ["TransferSweepSpec"]


@dataclass(frozen=True)
class TransferSweepSpec:
    """A surrogate scenario plus the victim-model × defense matrix to span.

    ``base`` fixes the dataset, condenser, attack and trigger (the surrogate
    side); ``models`` and ``defenses`` are the matrix axes.  ``None`` for
    either axis resolves to every registered component when :meth:`to_sweep`
    is called; a ``None`` *entry* in ``defenses`` is the undefended column.
    """

    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    models: List[str] | None = None
    defenses: List[Any] | None = None
    seed: int = 0
    name: str = "transfer"
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.base, ExperimentSpec):
            object.__setattr__(self, "base", ExperimentSpec.from_dict(self.base))
        object.__setattr__(self, "execution", ExecutionSpec.coerce(self.execution))
        for axis in ("models", "defenses"):
            values = getattr(self, axis)
            if values is None:
                continue
            if isinstance(values, (str, bytes)) or not isinstance(values, (list, tuple)):
                raise ConfigurationError(
                    f"{axis} must be null (= all registered) or a non-empty list, "
                    f"got {values!r}"
                )
            if not values:
                raise ConfigurationError(f"{axis} must not be empty")
            object.__setattr__(self, axis, list(values))
        _check_seed(self.seed)

    # -------------------------------------------------------------- #
    # Axis resolution
    # -------------------------------------------------------------- #
    def resolved_models(self) -> List[str]:
        """The model axis: explicit list or every registered architecture."""
        if self.models is None:
            return MODELS.available()
        for name in self.models:
            MODELS.canonical(name)  # fail fast with the registry's message
        return list(self.models)

    def resolved_defenses(self) -> List[Any]:
        """The defense axis: explicit list or no-defense + every registered one."""
        if self.defenses is None:
            return [None, *DEFENSES.available()]
        for value in self.defenses:
            if value is None:
                continue
            name = value if isinstance(value, str) else dict(value).get("name")
            if name is not None:
                DEFENSES.canonical(name)
        return list(self.defenses)

    def to_sweep(self) -> SweepSpec:
        """Expand into the equivalent ``model`` × ``defense`` :class:`SweepSpec`."""
        return SweepSpec(
            base=self.base,
            axes={"model": self.resolved_models(), "defense": self.resolved_defenses()},
            seed=self.seed,
            name=self.name,
            execution=self.execution,
        )

    # -------------------------------------------------------------- #
    # Serialization
    # -------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """Exact, JSON-compatible representation (round-trips via from_dict)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "base": self.base.to_dict(),
            "models": None if self.models is None else list(self.models),
            "defenses": None if self.defenses is None else list(self.defenses),
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TransferSweepSpec":
        unknown = set(payload) - {"name", "seed", "base", "models", "defenses", "execution"}
        if unknown:
            raise ConfigurationError(
                f"unknown TransferSweepSpec keys {sorted(unknown)}; expected "
                "'name', 'seed', 'base', 'models', 'defenses', 'execution'"
            )
        return cls(
            base=ExperimentSpec.from_dict(payload.get("base") or {}),
            models=payload.get("models"),
            defenses=payload.get("defenses"),
            seed=payload.get("seed", 0),
            name=payload.get("name", "transfer"),
            execution=ExecutionSpec.coerce(payload.get("execution")),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a canonical (sorted-keys) JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TransferSweepSpec":
        """Parse a JSON string produced by :meth:`to_json` (or hand-written)."""
        return cls.from_dict(json.loads(text))
