"""Exception hierarchy for the BGC reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class when driving experiments programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphValidationError(ReproError):
    """Raised when a graph container fails structural validation."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds inconsistent values."""


class CondensationError(ReproError):
    """Raised when a condensation run cannot proceed."""


class AttackError(ReproError):
    """Raised when an attack is configured or executed incorrectly."""


class DefenseError(ReproError):
    """Raised when a defense is configured or executed incorrectly."""


class AutogradError(ReproError):
    """Raised by the autograd engine for invalid tensor operations."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or validated."""


class SweepExecutionError(ReproError):
    """Raised when a sweep cell fails under ``on_error="raise"``.

    The process execution backend cannot re-raise the worker's original
    exception object (only its formatted traceback crosses the process
    boundary), so failures surface as this type instead.  ``record`` holds
    the failed :class:`~repro.api.runner.RunRecord`, whose ``error`` mapping
    carries the original exception type name, message and traceback text.
    """

    def __init__(self, message: str, record=None) -> None:
        super().__init__(message)
        self.record = record


class JobQueueFull(ReproError):
    """Raised when the service's bounded job queue rejects a submission.

    The :class:`~repro.service.jobs.CondensationService` applies
    backpressure instead of buffering unboundedly: a non-blocking
    ``submit`` on a queue that already holds ``max_pending`` jobs raises
    this error so the caller can retry, block, or shed load.
    """


class JobCancelled(ReproError):
    """Raised when waiting on a job that was cancelled before completion."""
