"""Exception hierarchy for the BGC reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class when driving experiments programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphValidationError(ReproError):
    """Raised when a graph container fails structural validation."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds inconsistent values."""


class CondensationError(ReproError):
    """Raised when a condensation run cannot proceed."""


class AttackError(ReproError):
    """Raised when an attack is configured or executed incorrectly."""


class DefenseError(ReproError):
    """Raised when a defense is configured or executed incorrectly."""


class AutogradError(ReproError):
    """Raised by the autograd engine for invalid tensor operations."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or validated."""
