"""Subgraph extraction and trigger-attachment primitives.

Two operations matter for BGC:

* extracting the k-hop *computation graph* of a node (the receptive field a
  GNN prediction for that node depends on), and
* attaching a small trigger subgraph (features + internal structure) to a
  target node, producing the poisoned adjacency/feature matrices.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError


def k_hop_subgraph(
    adjacency: sp.spmatrix, center: int, num_hops: int
) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Return the nodes and induced adjacency of the k-hop ball around ``center``.

    Returns
    -------
    nodes:
        Sorted node indices inside the ball (the center is always included).
    sub_adjacency:
        Induced adjacency among ``nodes`` (rows/cols follow ``nodes`` order).
    """
    n = adjacency.shape[0]
    if not 0 <= center < n:
        raise GraphValidationError(f"center {center} out of range for {n} nodes")
    csr = adjacency.tocsr()
    frontier = {center}
    visited = {center}
    for _ in range(num_hops):
        next_frontier: set[int] = set()
        for node in frontier:
            neighbors = csr.indices[csr.indptr[node] : csr.indptr[node + 1]]
            for neighbor in neighbors.tolist():
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
        if not frontier:
            break
    nodes = np.asarray(sorted(visited), dtype=np.int64)
    sub_adjacency = csr[nodes][:, nodes].tocsr()
    return nodes, sub_adjacency


def induced_subgraph(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    labels: np.ndarray,
    nodes: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray, Dict[int, int]]:
    """Extract the subgraph induced by ``nodes`` with relabelled indices.

    Returns the induced adjacency, features, labels and a mapping from
    original node id to new (0-based) id.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    csr = adjacency.tocsr()
    sub_adj = csr[nodes][:, nodes].tocsr()
    sub_features = np.asarray(features)[nodes]
    sub_labels = np.asarray(labels)[nodes]
    mapping = {int(original): new for new, original in enumerate(nodes.tolist())}
    return sub_adj, sub_features, sub_labels, mapping


def attach_trigger_subgraph(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    target_nodes: np.ndarray,
    trigger_features: np.ndarray,
    trigger_adjacency: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Attach one trigger subgraph per target node.

    Parameters
    ----------
    adjacency, features:
        The host graph.
    target_nodes:
        ``(P,)`` node indices to poison.
    trigger_features:
        ``(P, t, d)`` features of each node's trigger (``t`` trigger nodes).
    trigger_adjacency:
        ``(P, t, t)`` binary internal adjacency of each trigger.

    Returns
    -------
    new_adjacency, new_features, trigger_node_index:
        The poisoned graph plus, for each target node, the indices of its
        trigger nodes in the new graph (shape ``(P, t)``).

    Each trigger node is connected to its host target node; internal trigger
    edges follow ``trigger_adjacency``.  The original nodes keep their ids.
    """
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    trigger_features = np.asarray(trigger_features, dtype=np.float64)
    trigger_adjacency = np.asarray(trigger_adjacency, dtype=np.float64)
    if trigger_features.ndim != 3:
        raise GraphValidationError(
            f"trigger_features must have shape (P, t, d), got {trigger_features.shape}"
        )
    num_targets, trigger_size, feature_dim = trigger_features.shape
    if target_nodes.shape[0] != num_targets:
        raise GraphValidationError(
            f"got {target_nodes.shape[0]} target nodes but {num_targets} trigger blocks"
        )
    if trigger_adjacency.shape != (num_targets, trigger_size, trigger_size):
        raise GraphValidationError(
            "trigger_adjacency must have shape (P, t, t), got "
            f"{trigger_adjacency.shape}"
        )
    if features.shape[1] != feature_dim:
        raise GraphValidationError(
            f"trigger feature dim {feature_dim} does not match graph dim {features.shape[1]}"
        )

    n = adjacency.shape[0]
    total_trigger_nodes = num_targets * trigger_size
    new_n = n + total_trigger_nodes

    new_features = np.vstack([np.asarray(features, dtype=np.float64),
                              trigger_features.reshape(total_trigger_nodes, feature_dim)])

    rows = []
    cols = []
    trigger_node_index = np.zeros((num_targets, trigger_size), dtype=np.int64)
    for i, target in enumerate(target_nodes.tolist()):
        base = n + i * trigger_size
        trigger_node_index[i] = np.arange(base, base + trigger_size)
        # Connect the host node to the first trigger node (and symmetrically).
        rows.extend([target, base])
        cols.extend([base, target])
        # Internal trigger edges.
        block = trigger_adjacency[i]
        internal_rows, internal_cols = np.nonzero(np.triu(block, k=1))
        for r, c in zip(internal_rows.tolist(), internal_cols.tolist()):
            rows.extend([base + r, base + c])
            cols.extend([base + c, base + r])

    data = np.ones(len(rows), dtype=np.float64)
    trigger_edges = sp.csr_matrix((data, (rows, cols)), shape=(new_n, new_n))
    expanded = _expand(adjacency, new_n)
    new_adjacency = (expanded + trigger_edges).tocsr()
    new_adjacency.data = np.minimum(new_adjacency.data, 1.0)
    return new_adjacency, new_features, trigger_node_index


def _expand(adjacency: sp.spmatrix, new_size: int) -> sp.csr_matrix:
    """Embed ``adjacency`` in the top-left corner of a larger zero matrix."""
    coo = adjacency.tocoo()
    return sp.csr_matrix(
        (coo.data, (coo.row, coo.col)), shape=(new_size, new_size)
    )
