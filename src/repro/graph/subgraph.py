"""Subgraph extraction and trigger-attachment primitives.

Two operations matter for BGC:

* extracting the k-hop *computation graph* of a node (the receptive field a
  GNN prediction for that node depends on), and
* attaching a small trigger subgraph (features + internal structure) to a
  target node, producing the poisoned adjacency/feature matrices.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError


def k_hop_subgraph(
    adjacency: sp.spmatrix, center: int, num_hops: int
) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Return the nodes and induced adjacency of the k-hop ball around ``center``.

    Returns
    -------
    nodes:
        Sorted node indices inside the ball (the center is always included).
    sub_adjacency:
        Induced adjacency among ``nodes`` (rows/cols follow ``nodes`` order).
    """
    n = adjacency.shape[0]
    if not 0 <= center < n:
        raise GraphValidationError(f"center {center} out of range for {n} nodes")
    csr = adjacency.tocsr()
    frontier = {center}
    visited = {center}
    for _ in range(num_hops):
        next_frontier: set[int] = set()
        for node in frontier:
            neighbors = csr.indices[csr.indptr[node] : csr.indptr[node + 1]]
            for neighbor in neighbors.tolist():
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
        if not frontier:
            break
    nodes = np.asarray(sorted(visited), dtype=np.int64)
    sub_adjacency = csr[nodes][:, nodes].tocsr()
    return nodes, sub_adjacency


def induced_subgraph(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    labels: np.ndarray,
    nodes: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray, Dict[int, int]]:
    """Extract the subgraph induced by ``nodes`` with relabelled indices.

    Returns the induced adjacency, features, labels and a mapping from
    original node id to new (0-based) id.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    csr = adjacency.tocsr()
    sub_adj = csr[nodes][:, nodes].tocsr()
    sub_features = np.asarray(features)[nodes]
    sub_labels = np.asarray(labels)[nodes]
    mapping = {int(original): new for new, original in enumerate(nodes.tolist())}
    return sub_adj, sub_features, sub_labels, mapping


def _validate_trigger_blocks(
    features: np.ndarray,
    target_nodes: np.ndarray,
    trigger_features: np.ndarray,
    trigger_adjacency: np.ndarray,
) -> Tuple[int, int, int]:
    """Shared validation of the trigger-attachment arguments; returns (P, t, d)."""
    if trigger_features.ndim != 3:
        raise GraphValidationError(
            f"trigger_features must have shape (P, t, d), got {trigger_features.shape}"
        )
    num_targets, trigger_size, feature_dim = trigger_features.shape
    if target_nodes.shape[0] != num_targets:
        raise GraphValidationError(
            f"got {target_nodes.shape[0]} target nodes but {num_targets} trigger blocks"
        )
    if trigger_adjacency.shape != (num_targets, trigger_size, trigger_size):
        raise GraphValidationError(
            "trigger_adjacency must have shape (P, t, t), got "
            f"{trigger_adjacency.shape}"
        )
    if features.shape[1] != feature_dim:
        raise GraphValidationError(
            f"trigger feature dim {feature_dim} does not match graph dim {features.shape[1]}"
        )
    return num_targets, trigger_size, feature_dim


def attach_trigger_subgraph(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    target_nodes: np.ndarray,
    trigger_features: np.ndarray,
    trigger_adjacency: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Attach one trigger subgraph per target node (CSR surgery, no COO rebuild).

    Parameters
    ----------
    adjacency, features:
        The host graph.
    target_nodes:
        ``(P,)`` node indices to poison.
    trigger_features:
        ``(P, t, d)`` features of each node's trigger (``t`` trigger nodes).
    trigger_adjacency:
        ``(P, t, t)`` binary internal adjacency of each trigger.  Only the
        strict upper triangle of each block is read; it is mirrored to keep
        the result symmetric (matching the reference COO path).

    Returns
    -------
    new_adjacency, new_features, trigger_node_index:
        The poisoned graph plus, for each target node, the indices of its
        trigger nodes in the new graph (shape ``(P, t)``).

    The adjacency surgery itself lives in :func:`attach_trigger_adjacency`;
    this wrapper additionally materialises the poisoned feature matrix with
    one ``(N + P*t, d)`` vstack.  At Cora scale that vstack dominates the
    attachment cost, which is why the attack hot loop goes through
    :class:`~repro.graph.view.GraphView` (stacked-block feature access, no
    vstack) and this function remains the materialised reference path.
    Semantics are pinned to :func:`attach_trigger_subgraph_coo` by
    equivalence tests.
    """
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    trigger_features = np.asarray(trigger_features, dtype=np.float64)
    trigger_adjacency = np.asarray(trigger_adjacency, dtype=np.float64)
    num_targets, trigger_size, feature_dim = _validate_trigger_blocks(
        features, target_nodes, trigger_features, trigger_adjacency
    )
    new_adjacency, trigger_node_index = attach_trigger_adjacency(
        adjacency, target_nodes, trigger_adjacency
    )
    total_trigger_nodes = num_targets * trigger_size
    new_features = np.vstack([np.asarray(features, dtype=np.float64),
                              trigger_features.reshape(total_trigger_nodes, feature_dim)])
    return new_adjacency, new_features, trigger_node_index


def attach_trigger_adjacency(
    adjacency: sp.spmatrix,
    target_nodes: np.ndarray,
    trigger_adjacency: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Adjacency half of :func:`attach_trigger_subgraph` — no feature vstack.

    Parameters
    ----------
    adjacency:
        ``(N, N)`` host adjacency.
    target_nodes:
        ``(P,)`` node indices to poison.
    trigger_adjacency:
        ``(P, t, t)`` binary internal adjacency of each trigger block; only
        the strict upper triangle of each block is read (mirrored).

    Returns
    -------
    new_adjacency, trigger_node_index:
        The ``(N + P*t, N + P*t)`` poisoned adjacency and, per target node,
        the indices of its trigger nodes in the new graph (shape ``(P, t)``).

    Each trigger node is connected to its host target node; internal trigger
    edges follow ``trigger_adjacency``.  The original nodes keep their ids
    *and their edge weights*: pre-existing entries are copied unchanged
    (clamping them would silently mutate rows outside a delta's
    ``changed_nodes`` and break the :class:`~repro.graph.data.GraphDelta`
    contract that incremental propagation and renormalisation rely on), while
    every new trigger/connector edge has weight exactly 1.

    The output CSR is built directly: the ``indptr`` / ``indices`` / ``data``
    arrays are preallocated at their final size, pre-existing rows are copied
    (host rows gain their trigger column in place — trigger columns exceed
    every host column, so sortedness is free) and the trigger-block rows are
    scattered in vectorised form.  No intermediate COO matrix, no sparse add,
    no re-sort: the cost is one pass over the old arrays plus work
    proportional to the trigger blocks.
    """
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    trigger_adjacency = np.asarray(trigger_adjacency, dtype=np.float64)
    if trigger_adjacency.ndim != 3 or trigger_adjacency.shape[1] != trigger_adjacency.shape[2]:
        raise GraphValidationError(
            f"trigger_adjacency must have shape (P, t, t), got {trigger_adjacency.shape}"
        )
    num_targets, trigger_size = trigger_adjacency.shape[:2]
    if target_nodes.shape[0] != num_targets:
        raise GraphValidationError(
            f"got {target_nodes.shape[0]} target nodes but {num_targets} trigger blocks"
        )

    csr = adjacency.tocsr()
    if not csr.has_canonical_format:
        csr = csr.copy()
        csr.sum_duplicates()
    n = csr.shape[0]
    total_trigger_nodes = num_targets * trigger_size
    new_n = n + total_trigger_nodes

    old_indptr = csr.indptr.astype(np.int64)
    old_degrees = np.diff(old_indptr)
    extra = np.zeros(n, dtype=np.int64)
    np.add.at(extra, target_nodes, 1)

    # Internal trigger edges: strict upper triangle mirrored (the reference
    # path ignores the lower triangle too).
    upper = np.triu(trigger_adjacency, k=1) != 0.0
    symmetric = upper | np.transpose(upper, (0, 2, 1))
    internal_counts = symmetric.reshape(total_trigger_nodes, trigger_size).sum(
        axis=1, dtype=np.int64
    )
    trigger_counts = internal_counts.copy()
    if num_targets:
        trigger_counts[0::trigger_size] += 1  # first trigger row holds the host edge

    counts = np.concatenate([old_degrees + extra, trigger_counts])
    new_indptr = np.empty(new_n + 1, dtype=np.int64)
    new_indptr[0] = 0
    np.cumsum(counts, out=new_indptr[1:])
    nnz = int(new_indptr[-1])
    new_indices = np.empty(nnz, dtype=np.int64)
    new_data = np.ones(nnz, dtype=np.float64)

    # Host rows: existing entries keep their relative positions (every new
    # column lies past n, so per-row sorted order is preserved by appending).
    if csr.nnz:
        entry_row = np.repeat(np.arange(n), old_degrees)
        dest = np.arange(csr.nnz, dtype=np.int64) + (new_indptr[:n] - old_indptr[:n])[entry_row]
        new_indices[dest] = csr.indices
        new_data[dest] = csr.data

    trigger_node_index = (n + np.arange(total_trigger_nodes, dtype=np.int64)).reshape(
        num_targets, trigger_size
    )
    if num_targets:
        sequence = np.arange(num_targets, dtype=np.int64)
        block_start = n + sequence * trigger_size

        # Host -> trigger connector columns.  A host poisoned twice gains two
        # columns; stable-sort ranks keep them in ascending block order.
        order = np.argsort(target_nodes, kind="stable")
        sorted_targets = target_nodes[order]
        group_start = np.flatnonzero(
            np.r_[True, sorted_targets[1:] != sorted_targets[:-1]]
        )
        group_sizes = np.diff(np.r_[group_start, num_targets])
        ranks = np.empty(num_targets, dtype=np.int64)
        ranks[order] = sequence - np.repeat(group_start, group_sizes)
        positions = new_indptr[target_nodes] + old_degrees[target_nodes] + ranks
        new_indices[positions] = block_start

        # Trigger rows: the host column (always the smallest: target < n)
        # first, then internal columns, which np.nonzero yields row-major and
        # hence already column-sorted.
        new_indices[new_indptr[block_start]] = target_nodes
        flat_rows, internal_cols = np.nonzero(
            symmetric.reshape(total_trigger_nodes, trigger_size)
        )
        if flat_rows.size:
            row_offsets = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(internal_counts)[:-1]]
            )
            within_row = np.arange(flat_rows.size, dtype=np.int64) - row_offsets[flat_rows]
            shift = (flat_rows % trigger_size == 0).astype(np.int64)
            dest = new_indptr[n + flat_rows] + shift + within_row
            new_indices[dest] = n + (flat_rows // trigger_size) * trigger_size + internal_cols

    new_adjacency = sp.csr_matrix(
        (new_data, new_indices, new_indptr), shape=(new_n, new_n)
    )
    # Construction guarantees per-row sorted, duplicate-free indices.
    new_adjacency.has_canonical_format = True
    return new_adjacency, trigger_node_index


def attach_trigger_subgraph_coo(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    target_nodes: np.ndarray,
    trigger_features: np.ndarray,
    trigger_adjacency: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Reference COO-rebuild implementation of :func:`attach_trigger_subgraph`.

    This is the original (slow) path: build the trigger edges as a COO
    matrix, embed the host graph in the enlarged shape and add the two.  It
    is kept as the semantic reference that the CSR-surgery fast path is
    pinned against in the equivalence tests and the hot-path benchmark.  The
    one deviation from the seed implementation: host edge weights are no
    longer clamped to 1 — the clamp defended against a host/trigger entry
    overlap that cannot occur (trigger columns are brand new) and silently
    rewrote rows outside any recorded delta, corrupting incremental
    propagation over weighted graphs.
    """
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    trigger_features = np.asarray(trigger_features, dtype=np.float64)
    trigger_adjacency = np.asarray(trigger_adjacency, dtype=np.float64)
    num_targets, trigger_size, feature_dim = _validate_trigger_blocks(
        features, target_nodes, trigger_features, trigger_adjacency
    )

    n = adjacency.shape[0]
    total_trigger_nodes = num_targets * trigger_size
    new_n = n + total_trigger_nodes

    new_features = np.vstack([np.asarray(features, dtype=np.float64),
                              trigger_features.reshape(total_trigger_nodes, feature_dim)])

    rows = []
    cols = []
    trigger_node_index = np.zeros((num_targets, trigger_size), dtype=np.int64)
    for i, target in enumerate(target_nodes.tolist()):
        base = n + i * trigger_size
        trigger_node_index[i] = np.arange(base, base + trigger_size)
        # Connect the host node to the first trigger node (and symmetrically).
        rows.extend([target, base])
        cols.extend([base, target])
        # Internal trigger edges.
        block = trigger_adjacency[i]
        internal_rows, internal_cols = np.nonzero(np.triu(block, k=1))
        for r, c in zip(internal_rows.tolist(), internal_cols.tolist()):
            rows.extend([base + r, base + c])
            cols.extend([base + c, base + r])

    data = np.ones(len(rows), dtype=np.float64)
    trigger_edges = sp.csr_matrix((data, (rows, cols)), shape=(new_n, new_n))
    expanded = _expand(adjacency, new_n)
    new_adjacency = (expanded + trigger_edges).tocsr()
    return new_adjacency, new_features, trigger_node_index


def _expand(adjacency: sp.spmatrix, new_size: int) -> sp.csr_matrix:
    """Embed ``adjacency`` in the top-left corner of a larger zero matrix."""
    coo = adjacency.tocoo()
    return sp.csr_matrix(
        (coo.data, (coo.row, coo.col)), shape=(new_size, new_size)
    )


# ------------------------------------------------------------------ #
# Sampled-attack delta primitives (edge toggles + injected nodes)
# ------------------------------------------------------------------ #
def toggle_edges(
    adjacency: sp.spmatrix, rows: np.ndarray, cols: np.ndarray
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Flip the undirected pairs ``(rows[k], cols[k])`` in ``adjacency``.

    Each listed pair is toggled symmetrically: a present edge is removed
    (whatever its weight), an absent edge is inserted with weight 1.  Cost is
    ``O(nnz + pairs)`` — one additive sparse update — never ``O(N^2)``, which
    is what lets a sampled-block attacker apply a handful of flips per step
    on six-figure-node graphs.

    Returns
    -------
    (new_adjacency, changed_nodes):
        The toggled CSR matrix and the sorted unique endpoints of every
        toggled pair — exactly the :class:`~repro.graph.data.GraphDelta`
        contract set a view built on the result must declare.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise GraphValidationError(
            f"rows/cols must be matching 1-D arrays, got {rows.shape} and {cols.shape}"
        )
    if rows.size == 0:
        return adjacency.tocsr().copy(), np.empty(0, dtype=np.int64)
    n = adjacency.shape[0]
    if rows.min() < 0 or cols.min() < 0 or rows.max() >= n or cols.max() >= n:
        raise GraphValidationError("edge endpoints out of range")
    if np.any(rows == cols):
        raise GraphValidationError("self-loop toggles are not supported")
    stacked = np.stack([np.minimum(rows, cols), np.maximum(rows, cols)], axis=1)
    if np.unique(stacked, axis=0).shape[0] != rows.size:
        raise GraphValidationError("duplicate pairs in one toggle batch")
    adjacency = adjacency.tocsr()
    current = np.asarray(adjacency[rows, cols]).reshape(-1)
    delta = np.where(current != 0.0, -current, 1.0)
    sym_rows = np.concatenate([rows, cols])
    sym_cols = np.concatenate([cols, rows])
    update = sp.coo_matrix(
        (np.concatenate([delta, delta]), (sym_rows, sym_cols)), shape=adjacency.shape
    )
    toggled = (adjacency + update.tocsr()).tocsr()
    toggled.eliminate_zeros()
    toggled.sort_indices()
    return toggled, np.unique(sym_rows)


def append_node_edges(
    adjacency: sp.spmatrix, host_index: np.ndarray
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Append one node per row of ``host_index``, wired to its listed hosts.

    ``host_index`` has shape ``(M, k)``: appended node ``N + m`` gains an
    undirected unit edge to each pre-existing node in ``host_index[m]``.
    Appended nodes are not wired to each other (an injection attacker wants
    its fake nodes to blend into real neighbourhoods, not form a clique).

    Returns
    -------
    (new_adjacency, changed_nodes):
        The ``(N + M, N + M)`` CSR matrix and the sorted unique hosts — the
        pre-existing endpoints a :class:`~repro.graph.data.GraphDelta` built
        on the result must declare (appended nodes are implicit).
    """
    host_index = np.asarray(host_index, dtype=np.int64)
    if host_index.ndim != 2:
        raise GraphValidationError(
            f"host_index must have shape (M, k), got {host_index.shape}"
        )
    n = adjacency.shape[0]
    num_injected, per_node = host_index.shape
    if num_injected == 0 or per_node == 0:
        return adjacency.tocsr().copy(), np.empty(0, dtype=np.int64)
    if host_index.min() < 0 or host_index.max() >= n:
        raise GraphValidationError("injection hosts out of range")
    for m in range(num_injected):
        if np.unique(host_index[m]).size != per_node:
            raise GraphValidationError(f"duplicate hosts for injected node {m}")
    total = n + num_injected
    rows = np.repeat(np.arange(n, total, dtype=np.int64), per_node)
    cols = host_index.reshape(-1)
    data = np.ones(rows.size, dtype=np.float64)
    cross = sp.coo_matrix(
        (np.concatenate([data, data]),
         (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
        shape=(total, total),
    )
    expanded = (_expand(adjacency, total) + cross.tocsr()).tocsr()
    expanded.sort_indices()
    return expanded, np.unique(cols)
