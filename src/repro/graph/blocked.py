"""Blocked, out-of-core propagation: tiled spmm + a memory-mapped block store.

Dense SGC hop chains hold one ``(N, F)`` float64 array per hop.  At Cora
scale that is a few dozen megabytes; at the six-figure node counts of the
Flickr/Reddit stand-ins a two-hop chain would pin gigabytes of RAM per
cached graph.  This module keeps the *values* of the chain bit-compatible
with the dense reference while changing only where they live:

* :func:`blocked_spmm` computes ``Â @ X`` one CSR row block at a time,
  gathering only the source rows each block actually references and walking
  the feature axis in column tiles, so the in-flight working set is bounded
  by the tile sizes rather than by ``N``;
* :class:`BlockedArray` stores the resulting ``(N, F)`` product as one raw
  memory-mapped file per row block under a per-process scratch directory.
  Blocks are mapped on demand and unmapped immediately after use, so pages
  the OS evicts never count against the process RSS.

The per-element summation order of :func:`blocked_spmm` is identical to
``operator @ source``: a CSR row's products are accumulated in stored-index
order by scipy's matvec kernel, and slicing rows / remapping column indices
preserves that order.  Blocked results are therefore *bit-identical* to the
dense path, which is what lets the propagation cache switch engines purely
on size without perturbing condensed-graph fingerprints.

Engine selection is a single size threshold (elements of the ``(N, F)``
product) resolved from, in priority order: a per-process programmatic
override (:func:`set_blocked_threshold`, used by ``ExecutionSpec``), the
``REPRO_BLOCKED_THRESHOLD`` environment variable, and a built-in default
that keeps every seed-scale graph on the pinned dense path.
"""

from __future__ import annotations

import atexit
import os
import pickle
import shutil
import tempfile
import weakref
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.kernels import active_backend

__all__ = [
    "DEFAULT_BLOCKED_THRESHOLD",
    "DEFAULT_BLOCK_ROWS",
    "BlockedArray",
    "blocked_threshold",
    "set_blocked_threshold",
    "block_rows",
    "blocked_spmm",
    "blocked_precompute_hops",
    "scratch_root",
    "set_scratch_root",
    "process_scratch_dir",
    "remove_process_scratch",
]

#: Products with at most this many float64 elements stay on the dense path.
#: 2**24 elements = 128 MiB keeps Cora (2708 x 1433) and Citeseer dense while
#: routing the six-figure Flickr/Reddit stand-ins through the blocked engine.
DEFAULT_BLOCKED_THRESHOLD = 2**24

#: Default row-tile height of the block store and the spmm kernel.
DEFAULT_BLOCK_ROWS = 8192

#: Default feature-column tile width of the spmm kernel.
DEFAULT_COL_BLOCK = 256

_THRESHOLD_OVERRIDE: Optional[int] = None

#: Memo of the last environment parse: ``(raw_env_string, parsed_value)``.
#: :func:`blocked_threshold` runs on *every* chain build, so without the memo
#: each propagation re-parses (and re-validates) the variable; the memo is
#: keyed by the raw string, so an environment change is still picked up, and
#: :func:`set_blocked_threshold` invalidates it outright.
_THRESHOLD_CACHE: Optional[Tuple[Optional[str], int]] = None


def _parse_threshold_env(raw: Optional[str]) -> int:
    if raw is None:
        return DEFAULT_BLOCKED_THRESHOLD
    try:
        value = int(raw)
    except ValueError as error:
        raise GraphValidationError(
            f"REPRO_BLOCKED_THRESHOLD must be an integer, got {raw!r}"
        ) from error
    if value < 0:
        raise GraphValidationError(
            f"REPRO_BLOCKED_THRESHOLD must be >= 0, got {value}"
        )
    return value


def blocked_threshold() -> int:
    """The element-count threshold above which hop chains go blocked.

    Resolution order: :func:`set_blocked_threshold` override (used by the
    ``ExecutionSpec.blocked_threshold`` knob), the ``REPRO_BLOCKED_THRESHOLD``
    environment variable, then :data:`DEFAULT_BLOCKED_THRESHOLD`.  The
    environment parse is memoised per raw string — chain builds call this on
    their hot path.
    """
    global _THRESHOLD_CACHE
    if _THRESHOLD_OVERRIDE is not None:
        return _THRESHOLD_OVERRIDE
    raw = os.environ.get("REPRO_BLOCKED_THRESHOLD")
    cached = _THRESHOLD_CACHE
    if cached is not None and cached[0] == raw:
        return cached[1]
    value = _parse_threshold_env(raw)
    _THRESHOLD_CACHE = (raw, value)
    return value


def set_blocked_threshold(value: Optional[int]) -> Optional[int]:
    """Install (or clear, with ``None``) a process-wide threshold override.

    Returns the previous override so callers can restore it::

        previous = set_blocked_threshold(0)   # force the blocked engine
        try:
            ...
        finally:
            set_blocked_threshold(previous)
    """
    global _THRESHOLD_OVERRIDE, _THRESHOLD_CACHE
    if value is not None:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise GraphValidationError(
                f"blocked threshold must be an integer or None, got {value!r}"
            )
        if value < 0:
            raise GraphValidationError(f"blocked threshold must be >= 0, got {value}")
        value = int(value)
    previous = _THRESHOLD_OVERRIDE
    _THRESHOLD_OVERRIDE = value
    _THRESHOLD_CACHE = None
    return previous


def block_rows() -> int:
    """Row-tile height, overridable via ``REPRO_BLOCK_ROWS``."""
    raw = os.environ.get("REPRO_BLOCK_ROWS")
    if raw is None:
        return DEFAULT_BLOCK_ROWS
    try:
        value = int(raw)
    except ValueError as error:
        raise GraphValidationError(
            f"REPRO_BLOCK_ROWS must be an integer, got {raw!r}"
        ) from error
    if value < 1:
        raise GraphValidationError(f"REPRO_BLOCK_ROWS must be >= 1, got {value}")
    return value


# ------------------------------------------------------------------ #
# Scratch-directory lifecycle
# ------------------------------------------------------------------ #
_SCRATCH_ROOT_OVERRIDE: Optional[str] = None


def set_scratch_root(root: Optional[str]) -> Optional[str]:
    """Pin (or clear, with ``None``) the scratch root for this process.

    Returns the previous override.  The parallel executor resolves the root
    *once* at sweep start and installs it in every worker: without the pin, a
    worker whose environment diverges from the parent's (a cell mutating
    ``REPRO_BLOCKED_DIR``, a spawn-start worker with a different profile)
    writes its block files where the parent's crash/timeout cleanup will
    never look, leaking them.
    """
    global _SCRATCH_ROOT_OVERRIDE
    if root is not None and not isinstance(root, str):
        raise GraphValidationError(
            f"scratch root must be a string or None, got {root!r}"
        )
    previous = _SCRATCH_ROOT_OVERRIDE
    _SCRATCH_ROOT_OVERRIDE = root
    return previous


def scratch_root() -> str:
    """Directory under which per-process scratch dirs are created.

    Resolution order: the :func:`set_scratch_root` pin (installed in sweep
    workers so parent and worker agree on one root for the whole sweep),
    then ``REPRO_BLOCKED_DIR`` (created if missing), then the platform temp
    dir (``tempfile.gettempdir()``).
    """
    if _SCRATCH_ROOT_OVERRIDE is not None:
        os.makedirs(_SCRATCH_ROOT_OVERRIDE, exist_ok=True)
        return _SCRATCH_ROOT_OVERRIDE
    configured = os.environ.get("REPRO_BLOCKED_DIR")
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    return tempfile.gettempdir()


def process_scratch_dir(pid: Optional[int] = None, root: Optional[str] = None) -> str:
    """Path of the scratch directory owned by ``pid`` (default: this process).

    ``root`` overrides the resolved scratch root — the parallel executor
    passes the root it pinned at sweep start so cleanup of a dead worker
    targets the directory the worker actually used, not whatever the
    parent's environment resolves to at cleanup time.
    """
    if pid is None:
        pid = os.getpid()
    return os.path.join(root if root is not None else scratch_root(),
                        f"repro-blocked-{pid}")


def remove_process_scratch(pid: Optional[int] = None, root: Optional[str] = None) -> None:
    """Best-effort removal of the scratch directory owned by ``pid``.

    Used by the parallel executor to reclaim the block files of worker
    processes that were killed or timed out before their own cleanup ran;
    ``root`` is forwarded to :func:`process_scratch_dir`.
    """
    try:
        shutil.rmtree(process_scratch_dir(pid, root=root), ignore_errors=True)
    except OSError:  # pragma: no cover - rmtree already suppresses most errors
        pass


_ARRAY_COUNTER = 0


def _new_array_dir() -> str:
    """A fresh directory for one BlockedArray's block files."""
    global _ARRAY_COUNTER
    _ARRAY_COUNTER += 1
    path = os.path.join(process_scratch_dir(), f"array-{_ARRAY_COUNTER:06d}")
    os.makedirs(path, exist_ok=True)
    return path


@atexit.register
def _cleanup_own_scratch() -> None:  # pragma: no cover - exercised at exit
    """Safety net: remove this process's scratch dir on interpreter exit."""
    remove_process_scratch(os.getpid())


def _delete_array_dir(directory: str, owner_pid: int) -> None:
    """Finalizer for a BlockedArray: delete its files, but only in the owner.

    Forked sweep workers and unpickled copies share the same block files;
    gating on the creating pid means only the process that wrote the files
    ever deletes them.
    """
    if os.getpid() != owner_pid:
        return
    shutil.rmtree(directory, ignore_errors=True)


# ------------------------------------------------------------------ #
# The block store
# ------------------------------------------------------------------ #
class BlockedArray:
    """A 2-D float64 array stored as memory-mapped row-block files on disk.

    Behaves like a read-mostly ``(N, F)`` ndarray for the access patterns the
    propagation stack needs — row gathers, full materialisation, ``std`` —
    while holding no resident block between accesses.  Blocks are
    ``np.memmap`` views opened per call and dropped immediately, so the OS
    page cache (not the process heap) holds whatever is warm.

    Instances pickle by metadata + file paths: the receiving process maps the
    same files read-only and never deletes them (deletion is gated on the
    creating process's pid).
    """

    def __init__(self, shape: Tuple[int, int], block_size: Optional[int] = None):
        if len(shape) != 2 or shape[0] < 0 or shape[1] <= 0:
            raise GraphValidationError(
                f"BlockedArray expects a (rows, cols) shape with cols >= 1, got {shape}"
            )
        self.shape = (int(shape[0]), int(shape[1]))
        self.dtype = np.dtype(np.float64)
        self.block_size = int(block_size) if block_size else block_rows()
        if self.block_size < 1:
            raise GraphValidationError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        self._directory = _new_array_dir()
        self._owner_pid = os.getpid()
        self._paths: List[str] = []
        rows, cols = self.shape
        for index, start in enumerate(range(0, max(rows, 1), self.block_size)):
            stop = min(start + self.block_size, rows)
            if stop <= start:
                break
            path = os.path.join(self._directory, f"block-{index:05d}.bin")
            block = np.memmap(path, dtype=self.dtype, mode="w+", shape=(stop - start, cols))
            block.flush()
            del block
            self._paths.append(path)
        self._finalizer = weakref.finalize(
            self, _delete_array_dir, self._directory, self._owner_pid
        )

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    @property
    def ndim(self) -> int:
        return 2

    @property
    def size(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def num_blocks(self) -> int:
        return len(self._paths)

    @property
    def directory(self) -> str:
        """The directory holding this array's block files."""
        return self._directory

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockedArray(shape={self.shape}, block_size={self.block_size}, "
            f"blocks={self.num_blocks}, dir={self._directory!r})"
        )

    # -------------------------------------------------------------- #
    # Block access
    # -------------------------------------------------------------- #
    def _block_bounds(self, index: int) -> Tuple[int, int]:
        start = index * self.block_size
        return start, min(start + self.block_size, self.shape[0])

    def _open_block(self, index: int, mode: str = "r") -> np.memmap:
        start, stop = self._block_bounds(index)
        return np.memmap(
            self._paths[index], dtype=self.dtype, mode=mode,
            shape=(stop - start, self.shape[1]),
        )

    def blocks(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, block)`` over row blocks (read-only maps).

        Each yielded block is only valid until the next iteration — the map
        is dropped as soon as the consumer advances, keeping at most one
        block resident.
        """
        for index in range(self.num_blocks):
            start, stop = self._block_bounds(index)
            block = self._open_block(index, mode="r")
            yield start, stop, block
            del block

    def write_rows(self, start: int, values: np.ndarray) -> None:
        """Write consecutive rows beginning at ``start`` (may span blocks)."""
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.ndim != 2 or values.shape[1] != self.shape[1]:
            raise GraphValidationError(
                f"write_rows expects (k, {self.shape[1]}) values, got {values.shape}"
            )
        if start < 0 or start + values.shape[0] > self.shape[0]:
            raise GraphValidationError(
                f"rows [{start}, {start + values.shape[0]}) out of bounds for "
                f"{self.shape[0]} rows"
            )
        offset = 0
        while offset < values.shape[0]:
            row = start + offset
            index = row // self.block_size
            block_start, block_stop = self._block_bounds(index)
            take = min(block_stop - row, values.shape[0] - offset)
            block = self._open_block(index, mode="r+")
            block[row - block_start : row - block_start + take] = values[
                offset : offset + take
            ]
            block.flush()
            del block
            offset += take

    # -------------------------------------------------------------- #
    # ndarray-compatible reads
    # -------------------------------------------------------------- #
    def gather(self, rows: np.ndarray, cols: Optional[slice] = None) -> np.ndarray:
        """Dense ``rows`` (optionally a column slice) in the given row order."""
        rows = np.asarray(rows)
        if rows.dtype == bool:
            rows = np.flatnonzero(rows)
        rows = rows.astype(np.int64, copy=False)
        if rows.size and (rows.min() < -self.shape[0] or rows.max() >= self.shape[0]):
            raise IndexError(
                f"row index out of bounds for BlockedArray with {self.shape[0]} rows"
            )
        rows = np.where(rows < 0, rows + self.shape[0], rows)
        col_slice = cols if cols is not None else slice(None)
        width = len(range(*col_slice.indices(self.shape[1])))
        out = np.empty((rows.size, width), dtype=self.dtype)
        if rows.size == 0:
            return out
        block_ids = rows // self.block_size
        for index in np.unique(block_ids):
            mask = block_ids == index
            start, _ = self._block_bounds(int(index))
            block = self._open_block(int(index), mode="r")
            out[mask] = block[rows[mask] - start, col_slice]
            del block
        return out

    def materialize(self) -> np.ndarray:
        """The full dense array (allocates ``(N, F)`` — caller opts in)."""
        out = np.empty(self.shape, dtype=self.dtype)
        for start, stop, block in self.blocks():
            out[start:stop] = block
        return out

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        dense = self.materialize()
        if dtype is not None:
            dense = dense.astype(dtype, copy=False)
        return dense

    def __getitem__(self, key):
        if isinstance(key, tuple):
            if len(key) != 2:
                raise TypeError(f"unsupported BlockedArray index: {key!r}")
            rows, cols = key
            if isinstance(cols, slice):
                return self._row_select(rows, cols=cols)
            return self._row_select(rows)[..., cols]
        return self._row_select(key)

    def _row_select(self, rows, cols: Optional[slice] = None):
        if isinstance(rows, (int, np.integer)):
            return self.gather(np.array([int(rows)]), cols=cols)[0]
        if isinstance(rows, slice):
            start, stop, step = rows.indices(self.shape[0])
            return self.gather(np.arange(start, stop, step), cols=cols)
        if isinstance(rows, (np.ndarray, list)):
            return self.gather(np.asarray(rows), cols=cols)
        raise TypeError(f"unsupported BlockedArray row index: {rows!r}")

    def std(self) -> np.float64:
        """Standard deviation over all elements.

        The single-block case defers to ``np.std`` of the mapped block, so it
        is bit-identical to the dense path; the multi-block case streams a
        two-pass mean/moment computation.
        """
        if self.num_blocks <= 1:
            if self.num_blocks == 0:
                return np.float64(np.std(np.empty(self.shape, dtype=self.dtype)))
            block = self._open_block(0, mode="r")
            value = np.std(np.asarray(block))
            del block
            return value
        total = 0.0
        for _, _, block in self.blocks():
            total += float(np.sum(block, dtype=np.float64))
        mean = total / float(self.size)
        moment = 0.0
        for _, _, block in self.blocks():
            centered = np.asarray(block) - mean
            moment += float(np.sum(centered * centered, dtype=np.float64))
        return np.float64(np.sqrt(moment / float(self.size)))

    def __matmul__(self, other):
        return self.materialize() @ np.asarray(other)

    # -------------------------------------------------------------- #
    # Pickling (path-based: receivers share the files, never delete them)
    # -------------------------------------------------------------- #
    def __getstate__(self):
        return {
            "shape": self.shape,
            "block_size": self.block_size,
            "paths": list(self._paths),
            "owner_pid": self._owner_pid,
            "directory": self._directory,
        }

    def __setstate__(self, state):
        self.shape = tuple(state["shape"])
        self.dtype = np.dtype(np.float64)
        self.block_size = int(state["block_size"])
        self._paths = list(state["paths"])
        self._owner_pid = int(state["owner_pid"])
        self._directory = state["directory"]
        # Unpickled copies never own the files: gate the finalizer on a pid
        # that cannot match (deletion remains the creator's job).
        self._finalizer = weakref.finalize(
            self, _delete_array_dir, self._directory, -1
        )

    def rebase_to_local_copy(self) -> "BlockedArray":
        """Copy foreign block files into this process's own scratch dir.

        Spawn-backend workers receive path-based pickles of the parent's
        blocks; a worker that must outlive the parent's cache entries (or
        write its own chains) copies them locally and owns the copies.
        """
        local = BlockedArray(self.shape, block_size=self.block_size)
        for start, stop, block in self.blocks():
            local.write_rows(start, np.asarray(block))
        return local


# ------------------------------------------------------------------ #
# The tiled kernel
# ------------------------------------------------------------------ #
def _gather_source_rows(source, rows: np.ndarray, col_slice: slice) -> np.ndarray:
    """Rows x column-slice of ``source`` without materialising full width."""
    if isinstance(source, BlockedArray):
        return source.gather(rows, cols=col_slice)
    dense = np.asarray(source)
    # Slice the columns first (a view), then gather rows: allocates only the
    # (rows, tile) working block.
    return dense[:, col_slice][rows]


def blocked_spmm(
    operator: sp.csr_matrix,
    source,
    out: Optional[BlockedArray] = None,
    row_block: Optional[int] = None,
    col_block: int = DEFAULT_COL_BLOCK,
) -> BlockedArray:
    """``operator @ source`` computed tile by tile into a :class:`BlockedArray`.

    For each output row block the kernel compresses the operator's column
    space down to the source rows the block actually references (a
    ``np.unique`` gather + ``np.searchsorted`` remap), then walks the feature
    axis in ``col_block``-wide tiles.  The bounded working set per tile is

    ``nnz(block) + |referenced rows| * col_block + row_block * col_block``

    independent of the total node count.  Summation order per output element
    matches the dense product exactly (scipy accumulates a CSR row's products
    in stored order, which slicing and index remapping preserve), so results
    are bit-identical to ``operator @ np.asarray(source)``.
    """
    operator = operator.tocsr()
    rows_total = operator.shape[0]
    num_features = source.shape[1]
    if operator.shape[1] != source.shape[0]:
        raise GraphValidationError(
            f"operator {operator.shape} and source {source.shape} do not align"
        )
    if row_block is None:
        row_block = block_rows()
    if out is None:
        out = BlockedArray((rows_total, num_features), block_size=row_block)
    elif out.shape != (rows_total, num_features):
        raise GraphValidationError(
            f"out has shape {out.shape}, expected {(rows_total, num_features)}"
        )
    col_block = max(1, int(col_block))
    for start in range(0, rows_total, row_block):
        stop = min(start + row_block, rows_total)
        block = operator[start:stop]
        referenced = np.unique(block.indices)
        if referenced.size == 0:
            out.write_rows(start, np.zeros((stop - start, num_features)))
            continue
        compressed = sp.csr_matrix(
            (
                block.data,
                np.searchsorted(referenced, block.indices),
                block.indptr,
            ),
            shape=(stop - start, referenced.size),
        )
        result = np.empty((stop - start, num_features), dtype=np.float64)
        for col_start in range(0, num_features, col_block):
            col_stop = min(col_start + col_block, num_features)
            tile = _gather_source_rows(
                source, referenced, slice(col_start, col_stop)
            )
            result[:, col_start:col_stop] = active_backend().spmm(compressed, tile)
        out.write_rows(start, result)
    return out


def blocked_precompute_hops(
    normalized: sp.csr_matrix,
    features,
    num_hops: int,
    row_block: Optional[int] = None,
    col_block: int = DEFAULT_COL_BLOCK,
) -> List[object]:
    """The SGC hop chain ``[X, ÂX, ..., Â^K X]`` with blocked hops >= 1.

    Hop 0 is the feature matrix itself (kept as given — features are shared
    with the graph object and already resident); every propagated hop lives
    in a :class:`BlockedArray`.  Mirrors
    :func:`repro.graph.propagation.sgc_precompute_hops` hop for hop.
    """
    if num_hops < 0:
        raise GraphValidationError(f"num_hops must be >= 0, got {num_hops}")
    if not isinstance(features, BlockedArray):
        features = np.asarray(features, dtype=np.float64)
    hops: List[object] = [features]
    current = features
    for _ in range(num_hops):
        current = blocked_spmm(
            normalized, current, row_block=row_block, col_block=col_block
        )
        hops.append(current)
    return hops
