"""Version-keyed propagation cache shared across the attack / condensation stack.

The hot loop of the BGC attack drives one condensation ``epoch_step`` per
attack epoch against a freshly-built poisoned graph.  Without caching, every
epoch pays ``gcn_normalize`` plus K full sparse matmuls over the real graph —
even though the poisoned graph differs from the base graph only in a handful
of trigger-attached rows.  :class:`PropagationCache` removes that cost:

* ``gcn_normalize`` results are memoised per graph key (and, for raw scipy
  matrices handed to the model layer, per object with weakref-based eviction
  so a recycled ``id()`` can never serve stale data);
* SGC hop chains ``[X, ÂX, ..., Â^K X]`` are memoised per ``(key, num_hops)``;
* a graph carrying a :class:`~repro.graph.data.GraphDelta` derivation is
  propagated **incrementally**: only the K-hop closed neighbourhood of the
  changed rows is recomputed, all other rows are copied from the base's
  cached chain (see :mod:`repro.graph.propagation` for the math and why the
  result is exact, not approximate);
* a :class:`~repro.graph.view.GraphView` takes the fully zero-copy path via
  :meth:`PropagationCache.propagated_view`, which returns the incremental
  update in *difference form* (a :class:`~repro.graph.view.PropagatedView`)
  without ever materialising the ``(N', F)`` result.

Keys and shards
---------------
A plain :class:`~repro.graph.data.GraphData` is keyed by its monotonic
``version`` token.  A :class:`~repro.graph.view.GraphView` is keyed by its
``cache_key`` — a ``(base version, overlay token)`` pair, so two views of the
same base carrying the *same* overlay content (matching ``overlay_key``)
share one entry, while distinct overlays can never collide.

Entries live in a **sharded LRU**: one shard per *root* graph (the end of a
graph's derivation chain, i.e. the underlying dataset), each holding at most
``max_graphs`` entries, with at most ``max_shards`` shards resident.  A
stream of derived poisoned graphs only ever churns its own dataset's shard —
several datasets (a sweep, a multi-tenant service process) coexist without
evicting each other's base chains.  Base graphs stay resident within a shard
because every incremental update refreshes their recency.

All returned matrices are shared between callers and must be treated as
read-only.  The module-level default cache (:func:`get_default_cache`) is
what the condensers, the models layer and the evaluation pipeline share, so
e.g. a ``GCond`` and a ``GCondX`` instance condensing the same graph reuse
one propagation, as does an SNTK evaluation of that graph.
"""

from __future__ import annotations

import sys
import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.blocked import BlockedArray, blocked_precompute_hops, blocked_threshold
from repro.graph.data import GraphData
from repro.graph.normalize import (
    gcn_normalize,
    incremental_gcn_normalize,
    self_loop_degrees,
)
from repro.graph.propagation import (
    incremental_sgc_delta,
    incremental_sgc_precompute,
    sgc_precompute_hops,
)
from repro.graph.view import PropagatedView


class _Entry:
    """Cached artefacts of one graph key."""

    __slots__ = ("normalized", "degrees", "nonnegative", "hops", "views", "provenance")

    def __init__(self) -> None:
        self.normalized: Optional[sp.csr_matrix] = None
        #: Self-loop-inclusive degree vector matching ``normalized`` — what
        #: an incremental renormalisation of a *derived* graph patches from.
        self.degrees: Optional[np.ndarray] = None
        #: Whether ``normalized`` is entry-wise non-negative (checked once);
        #: lets incremental propagation skip its O(nnz) ``abs`` copy.
        self.nonnegative: bool = False
        #: hop index -> ``Â^k X``; a *full* chain ``0..K`` for directly
        #: propagated graphs, possibly only the final hop for derived graphs.
        self.hops: Dict[int, np.ndarray] = {}
        #: hop index -> difference-form products (PropagatedView) served by
        #: :meth:`PropagationCache.propagated_view` for derived graphs.
        self.views: Dict[int, PropagatedView] = {}
        #: hop index -> (base_key, dirty_rows) for incrementally computed
        #: products; lets a retired buffer be *patched* instead of refilled
        #: when the next update shares the same base (see _take_buffer).
        self.provenance: Dict[int, tuple] = {}


class PropagationCache:
    """Memoises normalisation and K-hop propagation, keyed by graph identity.

    Parameters
    ----------
    max_graphs:
        Maximum number of graph keys kept per shard.  Each key may hold up to
        ``K`` dense ``(N, F)`` products, so the default is small —
        deliberately so: the attack loop produces a *stream* of one-shot
        derived keys, and the sooner they are evicted, the sooner their
        buffers recycle through the pool instead of faulting in fresh pages.
    max_shards:
        Maximum number of resident shards (one shard per root graph, i.e.
        per dataset).  Least-recently-used shards are retired whole.
    """

    def __init__(self, max_graphs: int = 4, max_shards: int = 4) -> None:
        if max_graphs < 2:
            raise ValueError("max_graphs must be >= 2 (a base and a derived graph)")
        if max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        self.max_graphs = max_graphs
        self.max_shards = max_shards
        #: shard key (root graph version) -> LRU of graph key -> entry.
        self._shards: "OrderedDict[int, OrderedDict[object, _Entry]]" = OrderedDict()
        self._raw_normalized: Dict[int, tuple] = {}
        # Retired (N, F) product buffers with their patch provenance,
        # recycled into incremental updates.  Touching fresh pages costs more
        # than the incremental flops, so the pool matters as much as the
        # memoisation on page-fault-bound hosts.
        self._buffer_pool: Dict[
            Tuple[int, int], List[Tuple[np.ndarray, Optional[tuple]]]
        ] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.incremental_updates = 0
        self.incremental_normalizations = 0
        self.buffer_reuses = 0

    # -------------------------------------------------------------- #
    # Keying
    # -------------------------------------------------------------- #
    @staticmethod
    def _key(graph) -> object:
        """Cache key of a graph: ``cache_key`` for views, ``version`` otherwise."""
        return getattr(graph, "cache_key", graph.version)

    @staticmethod
    def _shard_key(graph) -> int:
        """Root version of a graph's derivation chain (= its dataset shard)."""
        root = graph
        while getattr(root, "derivation", None) is not None:
            root = root.derivation.base
        return root.version

    def _shard(self, shard_key: int) -> "OrderedDict[object, _Entry]":
        """The (LRU-refreshed) shard for ``shard_key``, creating it if needed."""
        shard = self._shards.get(shard_key)
        if shard is None:
            shard = OrderedDict()
            self._shards[shard_key] = shard
            while len(self._shards) > self.max_shards:
                _, evicted_shard = self._shards.popitem(last=False)
                for entry in evicted_shard.values():
                    self._retire(entry)
        else:
            self._shards.move_to_end(shard_key)
        return shard

    def _lookup(self, graph) -> Optional[_Entry]:
        """Resident entry for ``graph`` (refreshing recency), else ``None``."""
        shard = self._shards.get(self._shard_key(graph))
        if shard is None:
            return None
        entry = shard.get(self._key(graph))
        if entry is not None:
            self._shards.move_to_end(self._shard_key(graph))
            shard.move_to_end(self._key(graph))
        return entry

    # -------------------------------------------------------------- #
    # GraphData-level API
    # -------------------------------------------------------------- #
    def normalized(self, graph) -> sp.csr_matrix:
        """``gcn_normalize(graph.adjacency)``, memoised per graph key.

        A graph carrying a :class:`~repro.graph.data.GraphDelta` whose base
        operator is still resident is renormalised *incrementally*: unchanged
        rows are spliced from the base with a degree-ratio fix-up, only the
        changed/appended rows pay a fresh normalisation (see
        :func:`repro.graph.normalize.incremental_gcn_normalize`).  Works for
        :class:`~repro.graph.data.GraphData` and
        :class:`~repro.graph.view.GraphView` alike.
        """
        with self._lock:
            entry = self._lookup(graph)
            if entry is not None and entry.normalized is not None:
                self.hits += 1
                return entry.normalized
            self.misses += 1

            shard = self._shard(self._shard_key(graph))
            delta = graph.derivation
            if delta is not None:
                # Look the base up (and refresh its recency) BEFORE creating
                # this graph's entry, so the derived insertion cannot evict
                # the base it is about to be patched against.
                base_entry = shard.get(self._key(delta.base))
                if base_entry is not None and base_entry.normalized is not None:
                    shard.move_to_end(self._key(delta.base))
                    base_normalized = base_entry.normalized
                    if base_entry.degrees is None:
                        base_entry.degrees = self_loop_degrees(delta.base.adjacency)
                    base_degrees = base_entry.degrees
                    entry = self._entry(shard, self._key(graph))
                    if (
                        delta.changed_nodes.size == 0
                        and graph.num_nodes == delta.base.num_nodes
                    ):
                        # Pure metadata variant: share the base operator.
                        self._set_normalized(entry, base_normalized, base_degrees)
                        entry.nonnegative = base_entry.nonnegative
                    else:
                        normalized, degrees = incremental_gcn_normalize(
                            graph.adjacency,
                            base_normalized,
                            base_degrees,
                            delta.changed_nodes,
                        )
                        self._set_normalized(entry, normalized, degrees)
                        self.incremental_normalizations += 1
                    return entry.normalized

            entry = self._entry(shard, self._key(graph))
            self._set_normalized(
                entry, gcn_normalize(graph.adjacency), self_loop_degrees(graph.adjacency)
            )
            return entry.normalized

    @staticmethod
    def _set_normalized(
        entry: _Entry, normalized: sp.csr_matrix, degrees: np.ndarray
    ) -> None:
        entry.normalized = normalized
        entry.degrees = degrees
        entry.nonnegative = bool(
            normalized.data.size == 0 or normalized.data.min() >= 0.0
        )

    def propagated(self, graph, num_hops: int) -> np.ndarray:
        """``Â^K X`` for ``graph``, incremental when a derivation is available.

        The returned array is shared: treat it as read-only.
        """
        with self._lock:
            entry = self._lookup(graph)
            if entry is not None:
                cached = entry.hops.get(num_hops)
                if cached is not None:
                    self.hits += 1
                    return cached
                view = entry.views.get(num_hops)
                if view is not None:
                    # A difference-form product is already resident (the
                    # zero-copy path ran first): materialise it once.
                    self.hits += 1
                    entry.hops[num_hops] = view.materialize()
                    return entry.hops[num_hops]
            self.misses += 1

            delta = graph.derivation
            if delta is not None:
                # Resolve the base chain BEFORE creating this graph's entry:
                # with a minimal LRU the derived insertion would otherwise
                # evict the very base it is about to be patched against,
                # silently reverting every epoch to a full recompute.
                base_hops = self._chain(delta.base, num_hops)
                shard = self._shard(self._shard_key(graph))
                entry = self._entry(shard, self._key(graph))
                if delta.changed_nodes.size == 0 and graph.num_nodes == delta.base.num_nodes:
                    # Pure metadata variant (labels / split only): share the
                    # base's product outright.
                    result = base_hops[num_hops]
                else:
                    out, stale_rows = self._take_buffer(
                        (graph.num_nodes, graph.num_features),
                        self._key(delta.base),
                        num_hops,
                    )
                    normalized = self.normalized(graph)
                    result, dirty_rows = incremental_sgc_precompute(
                        normalized,
                        graph.features,
                        base_hops,
                        delta.changed_nodes,
                        num_hops,
                        out=out,
                        stale_rows=stale_rows,
                        nonnegative=entry.nonnegative,
                    )
                    entry.provenance[num_hops] = (
                        self._key(delta.base),
                        num_hops,
                        dirty_rows,
                    )
                    self.incremental_updates += 1
                entry.hops[num_hops] = result
                return result

            chain = self._chain(graph, num_hops)
            return chain[num_hops]

    def propagated_view(self, graph, num_hops: int):
        """``Â^K X`` for ``graph`` in difference form — the zero-copy path.

        For a derived graph whose base chain is resident this returns a
        :class:`~repro.graph.view.PropagatedView` (base product + dirty rows)
        without materialising the ``(N', F)`` result; consumers gather the
        rows they need (cost ∝ rows gathered).  For base graphs — or
        whenever the materialised product is already cached — the plain
        ``(N, F)`` array is returned instead; both satisfy the same
        row-gather protocol (``result[index_array]``).
        """
        with self._lock:
            entry = self._lookup(graph)
            if entry is not None:
                cached = entry.hops.get(num_hops)
                if cached is not None:
                    self.hits += 1
                    return cached
                view = entry.views.get(num_hops)
                if view is not None:
                    self.hits += 1
                    return view

            delta = graph.derivation
            if delta is None:
                return self.propagated(graph, num_hops)
            if delta.changed_nodes.size == 0 and graph.num_nodes == delta.base.num_nodes:
                return self.propagated(graph, num_hops)

            self.misses += 1
            base_hops = self._chain(delta.base, num_hops)
            shard = self._shard(self._shard_key(graph))
            entry = self._entry(shard, self._key(graph))
            normalized = self.normalized(graph)
            dirty_rows, dirty_values = incremental_sgc_delta(
                normalized,
                graph.features,
                base_hops,
                delta.changed_nodes,
                num_hops,
                nonnegative=entry.nonnegative,
            )
            view = PropagatedView(
                base_hops[num_hops], dirty_rows, dirty_values, graph.num_nodes
            )
            entry.views[num_hops] = view
            self.incremental_updates += 1
            return view

    # -------------------------------------------------------------- #
    # Cross-process warm-start handoff
    # -------------------------------------------------------------- #
    def export_base_chains(self, graph) -> Dict[str, object]:
        """Picklable snapshot of ``graph``'s cached base artefacts.

        Returns the normalized operator, its degree vector and every
        materialised hop product currently resident for ``graph`` — exactly
        the state a fresh cache needs to serve incremental updates against
        this base without re-paying base propagation.  The payload contains
        only plain numpy/scipy containers, so it pickles cleanly across a
        process boundary (the parallel sweep executor ships it to every
        worker assigned a cell on this dataset shard).  Returns an empty
        mapping when nothing is resident.  Exporting counts neither as a hit
        nor as a miss.
        """
        with self._lock:
            shard = self._shards.get(self._shard_key(graph))
            entry = shard.get(self._key(graph)) if shard is not None else None
            if entry is None:
                return {}
            payload: Dict[str, object] = {
                "hops": {
                    hop: product
                    for hop, product in entry.hops.items()
                    if isinstance(product, (np.ndarray, BlockedArray))
                }
            }
            if entry.normalized is not None:
                payload["normalized"] = entry.normalized
                payload["degrees"] = entry.degrees
                payload["nonnegative"] = entry.nonnegative
            if not payload["hops"] and "normalized" not in payload:
                return {}
            return payload

    def warm_start(self, graph, payload: Dict[str, object]) -> None:
        """Install an :meth:`export_base_chains` payload under ``graph``'s key.

        ``graph`` must hold the *same content* as the graph the payload was
        exported from (the usual case: the identical dataset loaded — or
        forked/unpickled — in another process).  Re-keying happens here:
        version tokens are process-local, so the payload is installed under
        *this* graph's key, whatever the exporting process called it.
        Subsequent :meth:`normalized` / :meth:`propagated` calls on ``graph``
        are plain hits, and derived graphs patch incrementally against the
        installed chains; warm-starting itself counts neither as a hit nor
        as a miss.  An empty payload is a no-op.
        """
        if not payload:
            return
        with self._lock:
            shard = self._shard(self._shard_key(graph))
            entry = self._entry(shard, self._key(graph))
            normalized = payload.get("normalized")
            if normalized is not None:
                # Install the exported fields directly: the nonnegative flag
                # was already computed by the exporting cache, and re-deriving
                # it through _set_normalized would rescan all nnz entries.
                entry.normalized = normalized
                entry.degrees = payload.get("degrees")
                entry.nonnegative = bool(payload.get("nonnegative", False))
            for hop, product in dict(payload.get("hops") or {}).items():
                if isinstance(product, BlockedArray):
                    # Blocked chains hand off by reference: the worker maps
                    # the exporter's block files read-only (fork shares the
                    # object, spawn re-opens by path) and never deletes them.
                    entry.hops[int(hop)] = product
                else:
                    entry.hops[int(hop)] = np.asarray(product)

    def invalidate(self, graph=None) -> None:
        """Drop every cached artefact (entries, raw memo, recycled buffers).

        Needed only when a graph's arrays are mutated in place, which breaks
        the immutability convention the version token relies on.  The clear
        is deliberately *total* even when ``graph`` is given: cached products
        can be shared across keys (label-only variants), recycled buffers
        carry provenance against a base key, and derived entries embed base
        rows — a surgical per-key drop would leave stale data reachable
        through any of those paths.  ``graph`` is kept in the signature as
        documentation of intent at call sites.
        """
        del graph
        with self._lock:
            self._shards.clear()
            self._raw_normalized.clear()
            self._buffer_pool.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (useful in tests and benchmarks)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "incremental_updates": self.incremental_updates,
                "incremental_normalizations": self.incremental_normalizations,
                "buffer_reuses": self.buffer_reuses,
                "graphs": sum(len(shard) for shard in self._shards.values()),
                "shards": len(self._shards),
                "raw_matrices": len(self._raw_normalized),
            }

    # -------------------------------------------------------------- #
    # Raw-matrix API (model layer: adjacency without a GraphData wrapper)
    # -------------------------------------------------------------- #
    def normalized_adjacency(self, adjacency: sp.spmatrix) -> sp.csr_matrix:
        """``gcn_normalize(adjacency)`` memoised per live matrix object.

        Raw matrices carry no version token, so the memo is keyed by ``id()``
        — but, unlike a bare ``id()`` cache, a ``weakref.finalize`` evicts
        the entry the moment the matrix is garbage collected, so a recycled
        id can never alias a dead matrix.  A fingerprint over shape, nnz and
        two data moments guards against in-place edits of a live matrix —
        including value-only edits that leave the sparsity pattern intact.
        The fingerprint pass is O(nnz), a fraction of the normalisation it
        saves.
        """
        key = id(adjacency)
        data = adjacency.data
        fingerprint = (
            adjacency.shape,
            adjacency.nnz,
            float(data.sum()),
            float(np.dot(data, data)),
        )
        with self._lock:
            cached = self._raw_normalized.get(key)
            if cached is not None and cached[0] == fingerprint:
                self.hits += 1
                return cached[1]
            self.misses += 1
            normalized = gcn_normalize(adjacency)
            if cached is None:
                weakref.finalize(adjacency, self._evict_raw, key)
            self._raw_normalized[key] = (fingerprint, normalized)
            return normalized

    def _evict_raw(self, key: int) -> None:
        with self._lock:
            self._raw_normalized.pop(key, None)

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    def _entry(self, shard: "OrderedDict[object, _Entry]", key: object) -> _Entry:
        entry = shard.get(key)
        if entry is None:
            entry = _Entry()
            shard[key] = entry
        else:
            shard.move_to_end(key)
        while len(shard) > self.max_graphs:
            _, evicted = shard.popitem(last=False)
            self._retire(evicted)
        return entry

    #: How many retired buffers to keep per (N, F) shape.
    _POOL_DEPTH = 2

    def _retire(self, entry: _Entry) -> None:
        """Recycle an evicted entry's product buffers nobody else references.

        The refcount check is what makes reuse safe: an array still held by a
        caller (or shared with another entry, or aliased by ``graph.features``
        for hop 0, or embedded as a ``PropagatedView`` base) has extra
        references and is left alone.  Expected count 3 = ``entry.hops`` +
        the local variable + ``getrefcount``'s argument (``items()``
        iteration would add a fourth via its yielded tuple).
        """
        for hop in list(entry.hops):
            product = entry.hops[hop]
            if (
                isinstance(product, np.ndarray)
                and product.base is None
                and product.ndim == 2
                and sys.getrefcount(product) == 3
            ):
                pool = self._buffer_pool.setdefault(product.shape, [])
                if len(pool) < self._POOL_DEPTH:
                    pool.append((product, entry.provenance.get(hop)))
        entry.hops.clear()
        entry.views.clear()
        entry.provenance.clear()

    def _take_buffer(
        self, shape: Tuple[int, int], base_key: object, num_hops: int
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Pop a retired buffer for reuse, preferring a *patchable* one.

        Returns ``(buffer, stale_rows)``: when the buffer held a product over
        the same base graph (same key, same hop count), ``stale_rows`` names
        the only rows differing from the embedded base product, and the
        incremental kernel patches them instead of refilling the buffer.
        """
        pool = self._buffer_pool.get(shape)
        if not pool:
            return None, None
        for position, (buffer, provenance) in enumerate(pool):
            if (
                provenance is not None
                and provenance[0] == base_key
                and provenance[1] == num_hops
            ):
                pool.pop(position)
                self.buffer_reuses += 1
                return buffer, provenance[2]
        buffer, _ = pool.pop()
        self.buffer_reuses += 1
        return buffer, None

    def _chain(self, graph, num_hops: int) -> List[np.ndarray]:
        """Full hop chain ``[X, ..., Â^K X]`` for ``graph``, cached per hop.

        Used both for directly propagated graphs and for the *base* of an
        incremental update (which needs every intermediate product).  A
        derived graph for which only final hops were cached falls back to a
        full recompute here — correctness never depends on what happens to be
        resident.
        """
        shard = self._shard(self._shard_key(graph))
        entry = self._entry(shard, self._key(graph))
        if all(k in entry.hops for k in range(num_hops + 1)):
            return [entry.hops[k] for k in range(num_hops + 1)]
        features = graph.features
        if hasattr(features, "materialize"):
            features = features.materialize()
        if num_hops >= 1 and graph.num_nodes * graph.num_features > blocked_threshold():
            # Above the size threshold every propagated hop lives in a
            # memory-mapped BlockedArray (bit-identical values, bounded RSS);
            # hop 0 stays the shared dense feature matrix either way.
            chain = blocked_precompute_hops(self.normalized(graph), features, num_hops)
        else:
            chain = sgc_precompute_hops(self.normalized(graph), features, num_hops)
        for k, product in enumerate(chain):
            entry.hops[k] = product
        return chain


_default_cache = PropagationCache()


def get_default_cache() -> PropagationCache:
    """The process-wide cache shared by condensers, models and evaluation."""
    return _default_cache


def set_default_cache(cache: PropagationCache) -> PropagationCache:
    """Swap the process-wide cache (tests use this for isolation); returns the old one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous
