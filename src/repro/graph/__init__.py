"""Graph substrate: data containers, normalisation, propagation and caching."""

from repro.graph.data import GraphData, GraphDelta, next_version
from repro.graph.view import (
    GraphView,
    PropagatedView,
    StackedFeatures,
    poison_graph_view,
)
from repro.graph.normalize import (
    gcn_normalize,
    incremental_gcn_normalize,
    self_loop_degrees,
    row_normalize,
    add_self_loops,
    symmetric_laplacian,
)
from repro.graph.propagation import (
    sgc_precompute,
    sgc_precompute_hops,
    incremental_sgc_delta,
    incremental_sgc_precompute,
    reachable_rows,
    appnp_propagate,
    chebyshev_polynomials,
)
from repro.graph.cache import PropagationCache, get_default_cache, set_default_cache
from repro.graph.blocked import (
    BlockedArray,
    blocked_precompute_hops,
    blocked_spmm,
    blocked_threshold,
    set_blocked_threshold,
)
from repro.graph.subgraph import (
    k_hop_subgraph,
    induced_subgraph,
    attach_trigger_adjacency,
    attach_trigger_subgraph,
    attach_trigger_subgraph_coo,
)
from repro.graph.generators import (
    stochastic_block_model,
    degree_corrected_sbm,
    class_correlated_features,
)
from repro.graph.splits import SplitIndices, make_planetoid_split, make_inductive_split

__all__ = [
    "GraphData",
    "GraphDelta",
    "next_version",
    "GraphView",
    "PropagatedView",
    "StackedFeatures",
    "poison_graph_view",
    "PropagationCache",
    "get_default_cache",
    "set_default_cache",
    "BlockedArray",
    "blocked_precompute_hops",
    "blocked_spmm",
    "blocked_threshold",
    "set_blocked_threshold",
    "gcn_normalize",
    "incremental_gcn_normalize",
    "self_loop_degrees",
    "row_normalize",
    "add_self_loops",
    "symmetric_laplacian",
    "sgc_precompute",
    "sgc_precompute_hops",
    "incremental_sgc_delta",
    "incremental_sgc_precompute",
    "reachable_rows",
    "appnp_propagate",
    "chebyshev_polynomials",
    "k_hop_subgraph",
    "induced_subgraph",
    "attach_trigger_adjacency",
    "attach_trigger_subgraph",
    "attach_trigger_subgraph_coo",
    "stochastic_block_model",
    "degree_corrected_sbm",
    "class_correlated_features",
    "SplitIndices",
    "make_planetoid_split",
    "make_inductive_split",
]
