"""Zero-copy poisoned-graph views.

The BGC attack loop builds a *fresh* poisoned graph every epoch: the base
graph plus a handful of trigger blocks.  Materialising that graph as a
:class:`~repro.graph.data.GraphData` pays an ``(N + P·t, F)`` feature
``vstack`` per epoch — at Cora scale a ~31 MB copy that dominates trigger
attachment (see ROADMAP §Performance).  This module removes the copy:

* :class:`StackedFeatures` — the poisoned feature matrix as two stacked
  blocks (the base's ``(N, F)`` array, shared read-only, plus the ``(P·t, F)``
  trigger overlay).  Row gathers cross the block boundary transparently;
  nothing is concatenated until someone explicitly asks for
  :meth:`~StackedFeatures.materialize`.
* :class:`GraphView` — a graph object that quacks like ``GraphData`` for the
  propagation/condensation stack (``adjacency``, ``features``, ``labels``,
  ``split``, ``version``, ``derivation``) but overlays trigger rows/edges on
  a base graph without copying it.  Its adjacency *is* materialised — the
  CSR surgery of :func:`~repro.graph.subgraph.attach_trigger_adjacency` is
  cheap — while features stay stacked.
* :class:`PropagatedView` — the propagated features ``Â'^K X'`` of a derived
  graph in difference form: the base graph's cached product plus the dirty
  rows that differ from it.  Consumers that only gather a few rows (the
  condensers read the training set) never touch the other ``N`` rows, so the
  per-epoch ``(N, F)`` result materialisation disappears as well.

:class:`~repro.graph.cache.PropagationCache` keys views by
``(base version, overlay token)`` — see :attr:`GraphView.cache_key` — and
:func:`poison_graph_view` is the one-call builder the attack paths use.
:meth:`GraphView.materialize` recovers a plain delta-carrying ``GraphData``
and is the pinned reference path for the equivalence tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.data import GraphData, GraphDelta, next_version
from repro.graph.splits import SplitIndices
from repro.graph.subgraph import attach_trigger_adjacency


def _as_row_index(rows, num_rows: int) -> np.ndarray:
    """Coerce a row selector to a bounds-checked int64 index array.

    Matches ndarray indexing semantics so the view types are safe drop-ins:
    boolean masks go through ``flatnonzero`` (a blind int64 cast would turn
    an ``(N,)`` mask into 0/1 indices), negative indices wrap relative to
    ``num_rows`` (a raw negative index would silently misroute across the
    base/overlay block boundary), and out-of-range indices raise
    ``IndexError`` exactly like numpy.
    """
    rows = np.asarray(rows)
    if rows.dtype == np.bool_:
        if rows.shape != (num_rows,):
            raise IndexError(
                f"boolean mask of shape {rows.shape} does not match view "
                f"with {num_rows} rows"
            )
        return np.flatnonzero(rows)
    rows = rows.astype(np.int64, copy=False)
    if rows.size:
        rows = np.where(rows < 0, rows + num_rows, rows)
        lo, hi = rows.min(), rows.max()
        if lo < 0 or hi >= num_rows:
            raise IndexError(
                f"row index out of bounds for view with {num_rows} rows"
            )
    return rows


class StackedFeatures:
    """A feature matrix of vertically stacked blocks, gathered without a vstack.

    Behaves like a read-only ``(N + M, F)`` float64 array for the access
    patterns the propagation stack actually uses: ``shape`` / ``ndim`` /
    ``dtype``, row gathers by integer or index array, and ``np.asarray``
    coercion (which materialises, once, caching the result).  The base block
    is *shared* with the host graph — treat both blocks as read-only, exactly
    like cached propagation products.
    """

    __slots__ = ("base", "overlay", "_materialized")

    def __init__(self, base: np.ndarray, overlay: np.ndarray) -> None:
        self.base = np.asarray(base, dtype=np.float64)
        self.overlay = np.asarray(overlay, dtype=np.float64)
        if self.base.ndim != 2 or self.overlay.ndim != 2:
            raise GraphValidationError(
                f"stacked blocks must be 2-D, got {self.base.shape} and "
                f"{self.overlay.shape}"
            )
        if self.base.shape[1] != self.overlay.shape[1]:
            raise GraphValidationError(
                f"overlay feature dim {self.overlay.shape[1]} does not match "
                f"base dim {self.base.shape[1]}"
            )
        self._materialized: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Array-protocol surface
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(N + M, F)`` — base rows plus overlay rows."""
        return (self.base.shape[0] + self.overlay.shape[0], self.base.shape[1])

    @property
    def ndim(self) -> int:
        """Always 2 (a feature matrix)."""
        return 2

    @property
    def dtype(self) -> np.dtype:
        """float64, matching :class:`~repro.graph.data.GraphData` features."""
        return self.base.dtype

    def __len__(self) -> int:
        return self.shape[0]

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Rows ``rows`` (an integer index array or boolean mask) as a fresh
        ``(len(rows), F)`` array.

        Indices below the base block's height read the base; the rest read
        the overlay.  Cost is proportional to ``len(rows)``, never to ``N``.
        """
        rows = _as_row_index(rows, self.shape[0])
        n_base = self.base.shape[0]
        out = np.empty((rows.size, self.base.shape[1]), dtype=np.float64)
        in_base = rows < n_base
        out[in_base] = self.base[rows[in_base]]
        out[~in_base] = self.overlay[rows[~in_base] - n_base]
        return out

    def __getitem__(self, index):
        """Row selection: an int returns one ``(F,)`` row, an array a gather.

        Slices and tuple (2-D) indices fall back to the materialised array,
        so ndarray semantics are preserved rather than silently misread as
        row gathers.
        """
        if isinstance(index, (int, np.integer)):
            return self.gather(np.array([index]))[0]
        if isinstance(index, (slice, tuple)):
            return self.materialize()[index]
        return self.gather(index)

    def materialize(self) -> np.ndarray:
        """The full ``(N + M, F)`` vstack (computed once, then cached)."""
        if self._materialized is None:
            self._materialized = np.vstack([self.base, self.overlay])
        return self._materialized

    def __array__(self, dtype=None):
        array = self.materialize()
        return array if dtype is None else array.astype(dtype)

    def __repr__(self) -> str:
        return (
            f"StackedFeatures(base={self.base.shape}, overlay={self.overlay.shape})"
        )


class PropagatedView:
    """``Â'^K X'`` of a derived graph as base product + dirty-row overlay.

    Produced by :meth:`repro.graph.cache.PropagationCache.propagated_view`.
    Row gathers resolve against ``dirty_values`` for recomputed rows and the
    (shared, read-only) ``base_product`` for everything else; the full matrix
    is only assembled if :meth:`materialize` is called.
    """

    __slots__ = ("base_product", "dirty_rows", "dirty_values", "_num_rows",
                 "_dirty_position", "_materialized")

    def __init__(
        self,
        base_product: np.ndarray,
        dirty_rows: np.ndarray,
        dirty_values: np.ndarray,
        num_rows: int,
    ) -> None:
        self.base_product = base_product
        self.dirty_rows = np.asarray(dirty_rows, dtype=np.int64)
        self.dirty_values = np.asarray(dirty_values, dtype=np.float64)
        self._num_rows = int(num_rows)
        if self.dirty_values.shape[0] != self.dirty_rows.size:
            raise GraphValidationError(
                f"{self.dirty_rows.size} dirty rows but "
                f"{self.dirty_values.shape[0]} value rows"
            )
        if num_rows < base_product.shape[0]:
            raise GraphValidationError(
                f"view has {num_rows} rows but base product has "
                f"{base_product.shape[0]}; deltas may only append rows"
            )
        # Row -> position in dirty_values (-1 = clean, read the base product).
        self._dirty_position = np.full(self._num_rows, -1, dtype=np.int64)
        self._dirty_position[self.dirty_rows] = np.arange(self.dirty_rows.size)
        self._materialized: Optional[np.ndarray] = None

    @property
    def shape(self) -> Tuple[int, int]:
        """``(N', F)`` of the full propagated matrix this view represents."""
        return (self._num_rows, self.base_product.shape[1])

    @property
    def ndim(self) -> int:
        """Always 2 (a propagated feature matrix)."""
        return 2

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Rows ``rows`` (an integer index array or boolean mask) of the
        propagated matrix, cost ∝ ``len(rows)``."""
        rows = _as_row_index(rows, self._num_rows)
        position = self._dirty_position[rows]
        out = np.empty((rows.size, self.base_product.shape[1]), dtype=np.float64)
        clean = position < 0
        out[clean] = self.base_product[rows[clean]]
        out[~clean] = self.dirty_values[position[~clean]]
        return out

    def __getitem__(self, index):
        """Row selection mirroring :meth:`StackedFeatures.__getitem__`."""
        if isinstance(index, (int, np.integer)):
            return self.gather(np.array([index]))[0]
        if isinstance(index, (slice, tuple)):
            return self.materialize()[index]
        return self.gather(index)

    def materialize(self) -> np.ndarray:
        """The full ``(N', F)`` propagated matrix (computed once, cached)."""
        if self._materialized is None:
            result = np.empty(self.shape, dtype=np.float64)
            n_base = self.base_product.shape[0]
            result[:n_base] = self.base_product
            if self._num_rows > n_base:
                result[n_base:] = 0.0
            result[self.dirty_rows] = self.dirty_values
            self._materialized = result
        return self._materialized

    def __array__(self, dtype=None):
        array = self.materialize()
        return array if dtype is None else array.astype(dtype)

    def __repr__(self) -> str:
        return (
            f"PropagatedView(shape={self.shape}, dirty_rows={self.dirty_rows.size})"
        )


class GraphView:
    """A poisoned-graph overlay on a base :class:`~repro.graph.data.GraphData`.

    The view owns its (cheaply rebuilt) adjacency and its labels/split, but
    its feature matrix is a :class:`StackedFeatures` sharing the base's rows.
    It satisfies the same read contract ``GraphData`` does for the
    propagation and condensation stack — ``adjacency`` / ``features`` /
    ``labels`` / ``split`` / ``version`` / ``derivation`` plus the shape
    properties — and is immutable by the same convention.

    Parameters
    ----------
    base:
        The host graph; must not be inductive (attacks operate on the
        training view).
    adjacency:
        ``(N + M, N + M)`` derived adjacency (base nodes keep their ids as a
        prefix, overlay nodes are appended).
    overlay_features:
        ``(M, F)`` features of the appended nodes.
    labels:
        ``(N + M,)`` labels of the derived graph.
    split:
        Train/val/test indices of the derived graph (defaults to the base's).
    changed_nodes:
        Pre-existing nodes whose incident edges differ from the base — the
        :class:`~repro.graph.data.GraphDelta` contract set.
    overlay_key:
        Optional hashable token identifying the overlay *content*.  Views of
        the same base sharing an ``overlay_key`` share cache entries in
        :class:`~repro.graph.cache.PropagationCache`; by default every view
        gets a unique token (the attack loop never repeats an overlay).
    """

    #: Lets duck-typed consumers pick the zero-copy code path without
    #: importing this module (``getattr(graph, "is_view", False)``).
    is_view = True
    #: Views are built from a (training) transductive graph.
    inductive = False

    def __init__(
        self,
        base: GraphData,
        adjacency: sp.spmatrix,
        overlay_features: np.ndarray,
        labels: np.ndarray,
        split: SplitIndices | None = None,
        changed_nodes: np.ndarray | None = None,
        name: str | None = None,
        metadata: Dict[str, float] | None = None,
        overlay_key=None,
    ) -> None:
        if getattr(base, "is_view", False):
            raise GraphValidationError(
                "GraphView bases must be materialised GraphData instances; "
                "stack overlays into one view instead of chaining views"
            )
        self.base = base
        self.adjacency = adjacency.tocsr()
        self.features = StackedFeatures(base.features, overlay_features)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.split = split if split is not None else base.split
        self.name = name if name is not None else f"{base.name}-view"
        self.metadata = dict(metadata) if metadata is not None else dict(base.metadata)
        if changed_nodes is None:
            changed_nodes = np.empty(0, dtype=np.int64)
        self.derivation = GraphDelta(base=base, changed_nodes=changed_nodes)
        self.version = next_version()
        self.cache_key = (
            base.version,
            overlay_key if overlay_key is not None else ("view", self.version),
        )
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation and shape properties (mirrors GraphData)
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`GraphValidationError` if the view is inconsistent."""
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise GraphValidationError(
                f"adjacency must be square, got shape {self.adjacency.shape}"
            )
        if n != self.features.shape[0]:
            raise GraphValidationError(
                f"adjacency has {n} rows but stacked features have "
                f"{self.features.shape[0]}"
            )
        if n < self.base.num_nodes:
            raise GraphValidationError(
                f"view has {n} nodes but its base has {self.base.num_nodes}; "
                "overlays may only append nodes"
            )
        if self.labels.shape != (n,):
            raise GraphValidationError(
                f"labels must have shape ({n},), got {self.labels.shape}"
            )

    @property
    def num_nodes(self) -> int:
        """Total node count: base nodes plus appended overlay nodes."""
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_features(self) -> int:
        """Feature dimensionality (same as the base graph's)."""
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        """Number of label classes, inferred as ``labels.max() + 1``."""
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def degrees(self) -> np.ndarray:
        """Return the (out-)degree of every node."""
        return np.asarray(self.adjacency.sum(axis=1)).reshape(-1)

    # ------------------------------------------------------------------ #
    # Materialisation (the pinned reference path)
    # ------------------------------------------------------------------ #
    def materialize(self) -> GraphData:
        """The equivalent delta-carrying :class:`~repro.graph.data.GraphData`.

        Pays the feature vstack this view exists to avoid — used by the
        equivalence tests and by consumers (model training) that need a
        contiguous feature array.
        """
        return self.base.with_delta(
            self.derivation.changed_nodes,
            adjacency=self.adjacency,
            features=self.features.materialize(),
            labels=self.labels.copy(),
            split=self.split.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:
        return (
            f"GraphView(base={self.base.name!r}, nodes={self.num_nodes}, "
            f"overlay={self.features.overlay.shape[0]}, version={self.version})"
        )


def poison_graph_view(
    base: GraphData,
    target_nodes: np.ndarray,
    trigger_features: np.ndarray,
    trigger_adjacency: np.ndarray,
    labels: np.ndarray | None = None,
    trigger_label: int = 0,
    split: SplitIndices | None = None,
    name: str | None = None,
    metadata: Dict[str, float] | None = None,
    overlay_key=None,
) -> GraphView:
    """Build the poisoned-graph view for one attack epoch.

    Equivalent in content to
    :func:`repro.graph.subgraph.attach_trigger_subgraph` followed by
    :meth:`GraphData.with_delta` — same adjacency (CSR surgery), same delta
    (``target_nodes``) — but the ``(N + P·t, F)`` feature matrix stays a
    :class:`StackedFeatures`, so no vstack is paid.

    Parameters
    ----------
    base:
        Host graph.
    target_nodes:
        ``(P,)`` nodes to poison.
    trigger_features / trigger_adjacency:
        ``(P, t, d)`` trigger features and ``(P, t, t)`` internal structure,
        as produced by a trigger generator.
    labels:
        Host-node label vector ``(N,)`` (an attack typically passes its
        target-class-flipped labels; defaults to the base labels).  A full
        ``(N + P·t,)`` vector is also accepted and used as-is.
    trigger_label:
        Class assigned to every appended trigger node when ``labels`` is a
        host-length vector (attacks pass their target class).
    split / name / metadata / overlay_key:
        Forwarded to :class:`GraphView`.

    Returns
    -------
    The :class:`GraphView`, with the per-target trigger-node indices attached
    as ``view.trigger_node_index`` (shape ``(P, t)``).
    """
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    trigger_features = np.asarray(trigger_features, dtype=np.float64)
    if trigger_features.ndim != 3:
        raise GraphValidationError(
            f"trigger_features must have shape (P, t, d), got {trigger_features.shape}"
        )
    if trigger_features.shape[2] != base.num_features:
        raise GraphValidationError(
            f"trigger feature dim {trigger_features.shape[2]} does not match "
            f"graph dim {base.num_features}"
        )
    new_adjacency, trigger_node_index = attach_trigger_adjacency(
        base.adjacency, target_nodes, trigger_adjacency
    )
    num_targets, trigger_size = trigger_features.shape[:2]
    overlay = trigger_features.reshape(num_targets * trigger_size, base.num_features)
    labels = np.asarray(labels if labels is not None else base.labels, dtype=np.int64)
    if labels.shape[0] == base.num_nodes:
        labels = np.concatenate(
            [labels, np.full(overlay.shape[0], trigger_label, dtype=np.int64)]
        )
    view = GraphView(
        base=base,
        adjacency=new_adjacency,
        overlay_features=overlay,
        labels=labels,
        split=split,
        changed_nodes=target_nodes,
        name=name if name is not None else f"{base.name}-poisoned",
        metadata=metadata,
        overlay_key=overlay_key,
    )
    view.trigger_node_index = trigger_node_index
    return view
