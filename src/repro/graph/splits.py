"""Train / validation / test split handling."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphValidationError


@dataclass
class SplitIndices:
    """Index arrays for the three standard splits."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        self.train = np.asarray(self.train, dtype=np.int64)
        self.val = np.asarray(self.val, dtype=np.int64)
        self.test = np.asarray(self.test, dtype=np.int64)

    def copy(self) -> "SplitIndices":
        return SplitIndices(self.train.copy(), self.val.copy(), self.test.copy())

    def validate_disjoint(self) -> None:
        """Raise if the three splits overlap."""
        train_set = set(self.train.tolist())
        val_set = set(self.val.tolist())
        test_set = set(self.test.tolist())
        if train_set & val_set or train_set & test_set or val_set & test_set:
            raise GraphValidationError("train/val/test splits overlap")

    @property
    def sizes(self) -> tuple[int, int, int]:
        return (self.train.size, self.val.size, self.test.size)


def make_planetoid_split(
    labels: np.ndarray,
    train_per_class: int,
    num_val: int,
    num_test: int,
    rng: np.random.Generator,
) -> SplitIndices:
    """Create a Planetoid-style transductive split (Cora / Citeseer protocol).

    ``train_per_class`` labelled nodes per class, then ``num_val`` validation
    and ``num_test`` test nodes drawn from the remaining nodes.
    """
    labels = np.asarray(labels, dtype=np.int64)
    num_nodes = labels.shape[0]
    classes = np.unique(labels)
    train: list[int] = []
    for cls in classes:
        candidates = np.flatnonzero(labels == cls)
        if candidates.size < train_per_class:
            raise GraphValidationError(
                f"class {cls} has only {candidates.size} nodes, "
                f"cannot draw {train_per_class} training nodes"
            )
        chosen = rng.choice(candidates, size=train_per_class, replace=False)
        train.extend(chosen.tolist())
    train_arr = np.asarray(sorted(train), dtype=np.int64)
    remaining = np.setdiff1d(np.arange(num_nodes), train_arr)
    if remaining.size < num_val + num_test:
        raise GraphValidationError(
            f"not enough remaining nodes ({remaining.size}) for "
            f"{num_val} validation + {num_test} test nodes"
        )
    shuffled = rng.permutation(remaining)
    val = np.sort(shuffled[:num_val])
    test = np.sort(shuffled[num_val : num_val + num_test])
    split = SplitIndices(train=train_arr, val=val, test=test)
    split.validate_disjoint()
    return split


def make_inductive_split(
    num_nodes: int,
    train_fraction: float,
    val_fraction: float,
    rng: np.random.Generator,
) -> SplitIndices:
    """Create an inductive split (Flickr / Reddit protocol) by node fractions."""
    if not 0.0 < train_fraction < 1.0 or not 0.0 <= val_fraction < 1.0:
        raise GraphValidationError(
            f"fractions must lie in (0, 1): train={train_fraction}, val={val_fraction}"
        )
    if train_fraction + val_fraction >= 1.0:
        raise GraphValidationError("train + val fractions must leave room for a test split")
    permutation = rng.permutation(num_nodes)
    n_train = int(round(train_fraction * num_nodes))
    n_val = int(round(val_fraction * num_nodes))
    train = np.sort(permutation[:n_train])
    val = np.sort(permutation[n_train : n_train + n_val])
    test = np.sort(permutation[n_train + n_val :])
    split = SplitIndices(train=train, val=val, test=test)
    split.validate_disjoint()
    return split
