"""Adjacency normalisation schemes used by the GNN models.

Besides the full-matrix kernels this module provides
:func:`incremental_gcn_normalize`: when a graph differs from an
already-normalised base only in a few rows (plus appended rows), the new
normalised operator is assembled by CSR row surgery — changed rows are
renormalised from scratch, unchanged rows are copied with a degree-ratio
fix-up on the columns whose endpoint degree moved — instead of paying the
self-loop merge, degree pass and two diagonal products of a full
:func:`gcn_normalize` over the whole matrix.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.kernels import active_backend


def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` as CSR."""
    n = adjacency.shape[0]
    return (adjacency + weight * sp.eye(n, format="csr")).tocsr()


def gcn_normalize(adjacency: sp.spmatrix, add_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

    Isolated nodes (zero degree after self-loop handling) receive zero rows
    rather than NaNs.
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise GraphValidationError(f"adjacency must be square, got {adjacency.shape}")
    matrix = add_self_loops(adjacency) if add_loops else adjacency.tocsr()
    degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    # diag(inv_sqrt) @ matrix @ diag(inv_sqrt) as one data-array pass over
    # the CSR arrays — bit-identical to the sparse diagonal products.
    return active_backend().scale_csr(matrix, inv_sqrt, inv_sqrt)


def self_loop_degrees(adjacency: sp.spmatrix) -> np.ndarray:
    """Row degrees of ``A + I`` — the degree vector :func:`gcn_normalize` uses."""
    return np.asarray(adjacency.sum(axis=1)).reshape(-1) + 1.0


def incremental_gcn_normalize(
    derived_adjacency: sp.spmatrix,
    base_normalized: sp.csr_matrix,
    base_degrees: np.ndarray,
    changed_nodes: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """``gcn_normalize(derived_adjacency)`` rebuilt from a normalised base.

    Parameters
    ----------
    derived_adjacency:
        Adjacency of the derived graph, shape ``(N', N')`` with ``N' >= N``.
    base_normalized:
        ``gcn_normalize(base_adjacency)`` (with self-loops), shape ``(N, N)``.
    base_degrees:
        Self-loop-inclusive degree vector of the base
        (:func:`self_loop_degrees` of the base adjacency).
    changed_nodes:
        Pre-existing rows whose feature row or incident edge set differs from
        the base — the :class:`~repro.graph.data.GraphDelta` contract set:
        every changed edge between pre-existing nodes has *both* endpoints
        listed, edges to appended rows have their pre-existing endpoint
        listed.

    Returns
    -------
    normalized, degrees:
        The derived graph's normalised operator and its self-loop-inclusive
        degree vector (callers cache the latter for the next increment).

    Why this is exact: entry ``Â'_{ij} = (A'+I)_{ij} / sqrt(d'_i d'_j)``.
    Outside the seed set (changed ∪ appended) neither the entry ``(A'+I)_{ij}``
    nor the row degree ``d'_i`` can differ from the base, so an unchanged row
    keeps its sparsity pattern and only the columns ``j`` with a changed
    degree need rescaling by ``sqrt(d_j / d'_j)``.  Seed rows are renormalised
    from the derived adjacency directly.  The result is assembled with one
    CSR row splice — cost proportional to ``nnz`` copies plus the seed rows,
    with no full-matrix sparse add or diagonal products.
    """
    derived = derived_adjacency.tocsr()
    n_total = derived.shape[0]
    n_base = base_normalized.shape[0]
    if derived.shape[0] != derived.shape[1]:
        raise GraphValidationError(f"adjacency must be square, got {derived.shape}")
    if n_total < n_base:
        raise GraphValidationError(
            f"derived graph has {n_total} rows but base has {n_base}; "
            "deltas may only append rows"
        )
    base_degrees = np.asarray(base_degrees, dtype=np.float64).reshape(-1)
    if base_degrees.shape[0] != n_base:
        raise GraphValidationError(
            f"base_degrees has {base_degrees.shape[0]} entries for {n_base} rows"
        )
    changed = np.unique(np.asarray(changed_nodes, dtype=np.int64))
    if changed.size and (changed[0] < 0 or changed[-1] >= n_base):
        raise GraphValidationError(
            f"changed_nodes out of range for base graph with {n_base} nodes"
        )
    seed_rows = np.concatenate(
        [changed, np.arange(n_base, n_total, dtype=np.int64)]
    )

    # Degrees: copy the base vector, recompute only the seed rows.
    degrees = np.empty(n_total, dtype=np.float64)
    degrees[:n_base] = base_degrees
    seed = derived[seed_rows]
    degrees[seed_rows] = np.asarray(seed.sum(axis=1)).reshape(-1) + 1.0

    # A changed column whose degree *recovers* from non-positive (zeroed in
    # the base, possible with negative edge weights) to positive cannot be
    # fixed by rescaling — the base stored no entry to rescale — so every row
    # adjacent to it joins the full-recompute set.  (The reverse transition,
    # positive to non-positive, rescales cleanly to zero.)
    changed_base = base_degrees[changed]
    recovered = changed[(changed_base <= 0.0) & (degrees[changed] > 0.0)]
    if recovered.size:
        adjacent = np.unique(derived[:, recovered].tocoo().row)
        seed_rows = np.union1d(seed_rows, adjacent)
        seed = derived[seed_rows]
        # Adjacent rows keep their base degrees (their edges are unchanged);
        # recomputing is idempotent and keeps one code path.
        degrees[seed_rows] = np.asarray(seed.sum(axis=1)).reshape(-1) + 1.0

    # Same guard as gcn_normalize: non-positive degrees (possible with
    # negative edge weights) give zero rows, not NaNs.
    inv_sqrt = np.zeros(n_total, dtype=np.float64)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])

    # Column fix-up factor for unchanged rows: 1 everywhere except on columns
    # whose degree moved.  Recovered columns never appear in unchanged rows
    # (those rows were just moved into the seed set), so their factor
    # multiplies nothing; 1.0 inside the sqrt avoids a NaN.
    ratio = np.ones(n_base, dtype=np.float64)
    ratio[changed] = (
        np.sqrt(np.where(changed_base > 0, changed_base, 1.0)) * inv_sqrt[changed]
    )

    # Seed rows, renormalised from scratch (self-loop inserted sparsely).
    loops = sp.csr_matrix(
        (
            np.ones(seed_rows.size, dtype=np.float64),
            (np.arange(seed_rows.size, dtype=np.int64), seed_rows),
        ),
        shape=seed.shape,
    )
    seed = (seed + loops).tocsr()
    seed_row_of = np.repeat(np.arange(seed_rows.size), np.diff(seed.indptr))
    backend = active_backend()
    seed_data = backend.gather_scale(
        backend.gather_scale(seed.data, seed_rows[seed_row_of], inv_sqrt),
        seed.indices,
        inv_sqrt,
    )

    # Row splice: unchanged base rows + seed rows into one preallocated CSR.
    in_seed = np.zeros(n_total, dtype=bool)
    in_seed[seed_rows] = True
    base_indptr = base_normalized.indptr.astype(np.int64)
    base_counts = np.diff(base_indptr)
    counts = np.zeros(n_total, dtype=np.int64)
    counts[:n_base] = base_counts
    counts[seed_rows] = np.diff(seed.indptr)
    indptr = np.empty(n_total + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz, dtype=np.float64)

    entry_row = np.repeat(np.arange(n_base), base_counts)
    kept = np.flatnonzero(~in_seed[entry_row])
    if kept.size:
        kept_rows = entry_row[kept]
        dest = kept - base_indptr[kept_rows] + indptr[kept_rows]
        kept_cols = base_normalized.indices[kept]
        indices[dest] = kept_cols
        data[dest] = backend.gather_scale(base_normalized.data[kept], kept_cols, ratio)
    if seed.nnz:
        seed_indptr = seed.indptr.astype(np.int64)
        dest = (
            np.arange(seed.nnz, dtype=np.int64)
            - seed_indptr[seed_row_of]
            + indptr[seed_rows[seed_row_of]]
        )
        indices[dest] = seed.indices
        data[dest] = seed_data

    result = sp.csr_matrix((data, indices, indptr), shape=(n_total, n_total))
    # Both sources are canonical CSR rows copied in order.
    result.has_canonical_format = True
    return result, degrees


def row_normalize(matrix: sp.spmatrix | np.ndarray):
    """Row-normalise a sparse adjacency or a dense feature matrix."""
    if sp.issparse(matrix):
        sums = np.asarray(matrix.sum(axis=1)).reshape(-1)
        inv = np.zeros_like(sums)
        nonzero = sums > 0
        inv[nonzero] = 1.0 / sums[nonzero]
        return (sp.diags(inv) @ matrix).tocsr()
    dense = np.asarray(matrix, dtype=np.float64)
    sums = dense.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return dense / sums


def symmetric_laplacian(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Normalised Laplacian ``I - D^{-1/2} A D^{-1/2}`` (no self-loops added)."""
    n = adjacency.shape[0]
    normalized = gcn_normalize(adjacency, add_loops=False)
    return (sp.eye(n, format="csr") - normalized).tocsr()


def dense_gcn_normalize(adjacency: np.ndarray, add_loops: bool = True) -> np.ndarray:
    """Dense counterpart of :func:`gcn_normalize` for small condensed graphs."""
    matrix = np.asarray(adjacency, dtype=np.float64)
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphValidationError(f"adjacency must be square, got {matrix.shape}")
    if add_loops:
        matrix = matrix + np.eye(matrix.shape[0])
    degrees = matrix.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    return matrix * inv_sqrt[:, None] * inv_sqrt[None, :]
