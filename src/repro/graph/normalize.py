"""Adjacency normalisation schemes used by the GNN models."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError


def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` as CSR."""
    n = adjacency.shape[0]
    return (adjacency + weight * sp.eye(n, format="csr")).tocsr()


def gcn_normalize(adjacency: sp.spmatrix, add_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

    Isolated nodes (zero degree after self-loop handling) receive zero rows
    rather than NaNs.
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise GraphValidationError(f"adjacency must be square, got {adjacency.shape}")
    matrix = add_self_loops(adjacency) if add_loops else adjacency.tocsr()
    degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    d_inv_sqrt = sp.diags(inv_sqrt)
    return (d_inv_sqrt @ matrix @ d_inv_sqrt).tocsr()


def row_normalize(matrix: sp.spmatrix | np.ndarray):
    """Row-normalise a sparse adjacency or a dense feature matrix."""
    if sp.issparse(matrix):
        sums = np.asarray(matrix.sum(axis=1)).reshape(-1)
        inv = np.zeros_like(sums)
        nonzero = sums > 0
        inv[nonzero] = 1.0 / sums[nonzero]
        return (sp.diags(inv) @ matrix).tocsr()
    dense = np.asarray(matrix, dtype=np.float64)
    sums = dense.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return dense / sums


def symmetric_laplacian(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Normalised Laplacian ``I - D^{-1/2} A D^{-1/2}`` (no self-loops added)."""
    n = adjacency.shape[0]
    normalized = gcn_normalize(adjacency, add_loops=False)
    return (sp.eye(n, format="csr") - normalized).tocsr()


def dense_gcn_normalize(adjacency: np.ndarray, add_loops: bool = True) -> np.ndarray:
    """Dense counterpart of :func:`gcn_normalize` for small condensed graphs."""
    matrix = np.asarray(adjacency, dtype=np.float64)
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphValidationError(f"adjacency must be square, got {matrix.shape}")
    if add_loops:
        matrix = matrix + np.eye(matrix.shape[0])
    degrees = matrix.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    return matrix * inv_sqrt[:, None] * inv_sqrt[None, :]
