"""Feature propagation kernels shared by the GNN models and condensers."""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.normalize import gcn_normalize, symmetric_laplacian


def sgc_precompute(
    adjacency: sp.spmatrix, features: np.ndarray, num_hops: int
) -> np.ndarray:
    """Return ``(D^{-1/2}(A+I)D^{-1/2})^K X`` — the SGC propagated features."""
    if num_hops < 0:
        raise GraphValidationError(f"num_hops must be non-negative, got {num_hops}")
    normalized = gcn_normalize(adjacency)
    propagated = np.asarray(features, dtype=np.float64)
    for _ in range(num_hops):
        propagated = normalized @ propagated
    return propagated


def appnp_propagate(
    adjacency: sp.spmatrix,
    predictions: np.ndarray,
    num_iterations: int,
    teleport: float,
) -> np.ndarray:
    """Personalised-PageRank propagation used by APPNP.

    ``Z^{t+1} = (1 - alpha) * Â Z^t + alpha * H`` starting from ``Z^0 = H``.
    """
    if not 0.0 < teleport <= 1.0:
        raise GraphValidationError(f"teleport must lie in (0, 1], got {teleport}")
    normalized = gcn_normalize(adjacency)
    base = np.asarray(predictions, dtype=np.float64)
    state = base.copy()
    for _ in range(num_iterations):
        state = (1.0 - teleport) * (normalized @ state) + teleport * base
    return state


def chebyshev_polynomials(
    adjacency: sp.spmatrix, features: np.ndarray, order: int
) -> List[np.ndarray]:
    """Return ``[T_0(L̃)X, ..., T_{order}(L̃)X]`` for ChebyNet.

    The Laplacian is rescaled as ``L̃ = 2L/λ_max - I`` with ``λ_max ≈ 2`` (the
    usual approximation), i.e. ``L̃ = L - I = -D^{-1/2} A D^{-1/2}``.
    """
    if order < 0:
        raise GraphValidationError(f"order must be non-negative, got {order}")
    features = np.asarray(features, dtype=np.float64)
    laplacian = symmetric_laplacian(adjacency)
    n = adjacency.shape[0]
    rescaled = (laplacian - sp.eye(n, format="csr")).tocsr()

    polynomials = [features]
    if order >= 1:
        polynomials.append(rescaled @ features)
    for _ in range(2, order + 1):
        next_term = 2.0 * (rescaled @ polynomials[-1]) - polynomials[-2]
        polynomials.append(next_term)
    return polynomials


def dense_sgc_precompute(
    adjacency: np.ndarray, features: np.ndarray, num_hops: int
) -> np.ndarray:
    """Dense counterpart of :func:`sgc_precompute` for condensed graphs."""
    from repro.graph.normalize import dense_gcn_normalize

    normalized = dense_gcn_normalize(adjacency)
    propagated = np.asarray(features, dtype=np.float64)
    for _ in range(num_hops):
        propagated = normalized @ propagated
    return propagated
