"""Feature propagation kernels shared by the GNN models and condensers.

Besides the classic full-graph kernels this module provides the *incremental*
K-hop update used by :class:`repro.graph.cache.PropagationCache`: when a graph
differs from a base graph only in a small set of rows ``S`` (plus appended
nodes), ``Â'^K X'`` is recovered from the base's cached hop products by
recomputing only the rows reachable from ``S`` within K hops.

Incremental propagation math
----------------------------
Let ``Â`` be the normalised base operator, ``Â'`` the normalised operator of
the derived graph, and ``P`` the zero-padded embedding of ``Â`` into the
derived shape.  Write ``H'_k = Â'^k X'`` and ``H_k = Â^k X``.  An entry
``Â'_{ij}`` can differ from ``P_{ij}`` only if ``i`` or ``j`` lies in the
*seed* set (changed rows plus appended rows): a changed edge has a seed
endpoint by the :class:`~repro.graph.data.GraphDelta` contract, and a changed
degree rescales only seed rows/columns.  Hence the support of ``Δ = Â' - P``
is confined to the closed 1-hop neighbourhood ``N[seed]`` of the seed.

With ``E_k = H'_k - embed(H_k)`` one gets the recursion
``E_k = Δ·embed(H_{k-1}) + Â'·E_{k-1}``, so the *dirty* rows satisfy
``D_k ⊆ rows(Δ) ∪ N[D_{k-1}]`` and every clean row of ``H'_k`` equals the
corresponding row of the base product ``H_k``.  The kernel keeps the update
in this *difference form* throughout: per hop it evaluates only

``H'_k[D_k] = Â'[D_k, :N]·H_{k-1}  +  Â'[D_k, D_{k-1}]·E_{k-1}``

— two sparse products whose cost is proportional to the dirty neighbourhood,
not the graph — and materialises the full ``(N', F)`` result exactly once at
the end (clean rows copied from the cached base product, dirty rows
scattered in).  Avoiding per-hop full-size buffers matters as much as the
flops: a fresh ``N×F`` allocation per hop costs thousands of page faults.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.normalize import gcn_normalize, symmetric_laplacian
from repro.kernels import active_backend


def sgc_precompute(
    adjacency: sp.spmatrix, features: np.ndarray, num_hops: int
) -> np.ndarray:
    """Return ``(D^{-1/2}(A+I)D^{-1/2})^K X`` — the SGC propagated features."""
    if num_hops < 0:
        raise GraphValidationError(f"num_hops must be non-negative, got {num_hops}")
    normalized = gcn_normalize(adjacency)
    propagated = np.asarray(features, dtype=np.float64)
    backend = active_backend()
    for _ in range(num_hops):
        propagated = backend.spmm(normalized, propagated)
    return propagated


def sgc_precompute_hops(
    normalized: sp.spmatrix, features: np.ndarray, num_hops: int
) -> List[np.ndarray]:
    """All intermediate SGC products ``[X, ÂX, ..., Â^K X]`` for a normalised operator.

    The full chain is what :class:`~repro.graph.cache.PropagationCache` stores
    per graph version: incremental updates of a derived graph need the base's
    product at *every* hop, not just the final one.
    """
    if num_hops < 0:
        raise GraphValidationError(f"num_hops must be non-negative, got {num_hops}")
    hops = [np.asarray(features, dtype=np.float64)]
    backend = active_backend()
    for _ in range(num_hops):
        hops.append(backend.spmm(normalized, hops[-1]))
    return hops


def reachable_rows(
    operator: sp.spmatrix, mask: np.ndarray, nonnegative: bool = False
) -> np.ndarray:
    """Closed in-neighbourhood of ``mask`` under ``operator``.

    Returns the boolean mask of rows ``i`` such that ``operator[i, j] != 0``
    for some ``j`` with ``mask[j]`` — plus ``mask`` itself.  Works for
    arbitrary (also signed / asymmetric) sparse operators because the
    expansion runs on ``|operator|``, so entries cannot cancel.  Pass
    ``nonnegative=True`` when the operator is known entry-wise non-negative
    (e.g. a GCN-normalised adjacency) to skip the O(nnz) ``abs`` copy —
    callers expanding hop by hop should take it once instead.
    """
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        return mask.copy()
    indicator = mask.astype(np.float64)
    magnitude = operator if nonnegative else abs(operator)
    reached = np.asarray(active_backend().spmm(magnitude, indicator)).reshape(-1)
    return mask | (reached > 0.0)


def _matmul_hop_product(matrix: sp.spmatrix, product) -> np.ndarray:
    """``matrix @ product`` where ``product`` may be a blocked hop array.

    Dense products go straight through scipy.  For a
    :class:`~repro.graph.blocked.BlockedArray` the product is accumulated one
    row block at a time (``matrix[:, start:stop] @ block``), so no full
    ``(N, F)`` materialisation happens.  The single-block case multiplies the
    whole (identically-sliced) matrix against the one block and is therefore
    bit-identical to the dense product; multi-block accumulation changes only
    the summation order (differences bounded well below the 1e-10 equivalence
    tolerance).
    """
    from repro.graph.blocked import BlockedArray

    backend = active_backend()
    if not isinstance(product, BlockedArray):
        return backend.spmm(matrix, product)
    matrix = matrix.tocsc()
    out: Optional[np.ndarray] = None
    for start, stop, block in product.blocks():
        term = backend.spmm(matrix[:, start:stop], np.asarray(block))
        out = term if out is None else out + term
    if out is None:  # zero-row product
        out = np.zeros((matrix.shape[0], product.shape[1]), dtype=np.float64)
    return out


def incremental_sgc_delta(
    normalized: sp.spmatrix,
    features,
    base_hops: Sequence[np.ndarray],
    changed_nodes: np.ndarray,
    num_hops: int,
    nonnegative: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Difference form of :func:`incremental_sgc_precompute`: dirty rows only.

    Runs the same exact K-hop recursion but never materialises the full
    ``(N', F)`` result: it returns ``(dirty_rows, dirty_values)`` where every
    row outside ``dirty_rows`` of ``Â'^K X'`` equals the corresponding row of
    the cached base product ``base_hops[num_hops]``.  This is the kernel
    behind :meth:`repro.graph.cache.PropagationCache.propagated_view` — the
    zero-copy path of the attack loop, whose consumers only ever gather a
    handful of rows (the training set) from the propagated matrix.

    Parameters match :func:`incremental_sgc_precompute` except that
    ``features`` may be any object exposing either numpy fancy indexing or a
    ``gather(rows)`` method (``(len(rows), F)`` float64 copy) — in particular
    a :class:`repro.graph.view.StackedFeatures`, which is how the poisoned
    feature matrix avoids its ``(N', F)`` vstack entirely.

    Returns
    -------
    dirty_rows, dirty_values:
        Sorted row indices that differ from (or are appended past) the base
        product, and their ``(len(dirty_rows), F)`` values.
    """
    if num_hops < 0:
        raise GraphValidationError(f"num_hops must be non-negative, got {num_hops}")
    if len(base_hops) < num_hops + 1:
        raise GraphValidationError(
            f"base_hops provides {len(base_hops)} hop products, need {num_hops + 1}"
        )
    n_total = normalized.shape[0]
    n_base = base_hops[0].shape[0]
    if n_total < n_base:
        raise GraphValidationError(
            f"derived graph has {n_total} rows but base has {n_base}; "
            "deltas may only append rows"
        )
    if features.shape[1] != base_hops[0].shape[1]:
        raise GraphValidationError(
            f"feature dim {features.shape[1]} does not match base dim "
            f"{base_hops[0].shape[1]}"
        )
    gather = getattr(features, "gather", None)
    if gather is None:
        array = np.asarray(features, dtype=np.float64)

        def gather(rows: np.ndarray) -> np.ndarray:
            return array[rows]

    normalized = normalized.tocsr()
    seed = np.zeros(n_total, dtype=bool)
    seed[np.asarray(changed_nodes, dtype=np.int64)] = True
    seed[n_base:] = True

    rows = np.flatnonzero(seed)
    values = gather(rows)  # fresh array: both gather flavours copy
    if num_hops == 0:
        return rows, values

    # One |Â'| for all K+1 frontier expansions (it's a full O(nnz) copy,
    # skipped entirely when the caller vouches for a non-negative operator).
    magnitude = normalized if nonnegative else abs(normalized)
    # Rows where the derived operator can differ from the embedded base one.
    operator_dirty = reachable_rows(magnitude, seed, nonnegative=True)

    # Difference form: delta[i] = H'_k[i] - embed(H_k)[i], kept only on the
    # dirty rows (appended rows have no base counterpart, so their delta is
    # their full value).
    dirty = seed
    delta = values
    base_part = rows < n_base
    delta[base_part] -= base_hops[0][rows[base_part]]

    for hop in range(1, num_hops + 1):
        previous_rows, previous_delta = rows, delta
        dirty = operator_dirty | reachable_rows(magnitude, dirty, nonnegative=True)
        rows = np.flatnonzero(dirty)
        sliced = normalized[rows]
        # Â'[D_k, :N] · H_{k-1}  +  Â'[D_k, D_{k-1}] · E_{k-1}
        values = _matmul_hop_product(sliced[:, :n_base], base_hops[hop - 1])
        if previous_rows.size:
            values += active_backend().spmm(sliced[:, previous_rows], previous_delta)
        if hop < num_hops:
            # The final hop's difference form is never read — only its
            # materialised rows are — so skip the dirty-block copy there.
            delta = values.copy()
            base_part = rows < n_base
            delta[base_part] -= base_hops[hop][rows[base_part]]

    return rows, values


def incremental_sgc_precompute(
    normalized: sp.spmatrix,
    features: np.ndarray,
    base_hops: Sequence[np.ndarray],
    changed_nodes: np.ndarray,
    num_hops: int,
    out: Optional[np.ndarray] = None,
    stale_rows: Optional[np.ndarray] = None,
    nonnegative: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Incrementally compute ``Â'^K X'`` for a graph derived from a cached base.

    Parameters
    ----------
    normalized:
        Normalised operator ``Â'`` of the *derived* graph, shape ``(N', N')``.
    features:
        Feature matrix ``X'`` of the derived graph, shape ``(N', F)``.
    base_hops:
        The base graph's hop chain ``[X, ÂX, ..., Â^K X]`` (at least
        ``num_hops + 1`` entries), as produced by :func:`sgc_precompute_hops`.
    changed_nodes:
        Pre-existing rows violating prefix equality with the base — the
        :class:`~repro.graph.data.GraphDelta` contract set.
    num_hops:
        Number of propagation hops ``K``.
    out:
        Optional preallocated ``(N', F)`` output buffer.  Fresh multi-MB
        allocations fault in every page, so callers that run once per epoch
        (the :class:`~repro.graph.cache.PropagationCache` buffer pool) reuse
        retired buffers here.
    stale_rows:
        Only meaningful together with ``out``: asserts that ``out`` already
        holds a previous product of the *same* ``base_hops[num_hops]`` and
        differs from it in ``stale_rows`` only.  The materialisation then
        resets those rows and writes the new dirty rows instead of copying
        the whole base product — this makes the per-epoch cost of the BGC
        attack loop fully proportional to the trigger neighbourhood.
    nonnegative:
        Declare the operator entry-wise non-negative (true for any
        GCN-normalised adjacency of a non-negative graph): frontier expansion
        then runs on ``normalized`` directly instead of taking a full O(nnz)
        ``abs`` copy per call.

    Returns
    -------
    result, dirty_rows:
        The propagated ``(N', F)`` matrix and the rows that were recomputed
        (i.e. where it may differ from the embedded base product) — callers
        pass the latter back as ``stale_rows`` when recycling ``result``.

    Only rows within the K-hop closed neighbourhood of
    ``changed_nodes ∪ appended rows`` are recomputed; all other rows are
    copied from ``base_hops`` (see the module docstring for why this is
    exact).
    """
    if num_hops == 0:
        # Validation (and the gather of stacked features, should a caller
        # hand one in) still runs through the delta kernel.
        incremental_sgc_delta(normalized, features, base_hops, changed_nodes, 0)
        if hasattr(features, "materialize"):
            return features.materialize(), np.empty(0, dtype=np.int64)
        return np.asarray(features, dtype=np.float64), np.empty(0, dtype=np.int64)

    rows, values = incremental_sgc_delta(
        normalized, features, base_hops, changed_nodes, num_hops, nonnegative=nonnegative
    )
    n_total = normalized.shape[0]
    n_base = base_hops[0].shape[0]

    if out is not None and out.shape == (n_total, features.shape[1]):
        result = out
        if stale_rows is not None:
            # ``out`` differs from the embedded base product only in
            # stale_rows; appended rows are always in ``rows`` and get
            # overwritten below, so resetting the pre-existing stale rows
            # restores base equality everywhere outside ``rows``.
            stale_base = stale_rows[stale_rows < n_base]
            result[stale_base] = base_hops[num_hops][stale_base]
        else:
            result[:n_base] = base_hops[num_hops]
            if n_total > n_base:
                result[n_base:] = 0.0
    else:
        result = np.empty((n_total, features.shape[1]), dtype=np.float64)
        result[:n_base] = base_hops[num_hops]
        if n_total > n_base:
            result[n_base:] = 0.0
    result[rows] = values
    return result, rows


def appnp_propagate(
    adjacency: sp.spmatrix,
    predictions: np.ndarray,
    num_iterations: int,
    teleport: float,
) -> np.ndarray:
    """Personalised-PageRank propagation used by APPNP.

    ``Z^{t+1} = (1 - alpha) * Â Z^t + alpha * H`` starting from ``Z^0 = H``.
    """
    if not 0.0 < teleport <= 1.0:
        raise GraphValidationError(f"teleport must lie in (0, 1], got {teleport}")
    normalized = gcn_normalize(adjacency)
    base = np.asarray(predictions, dtype=np.float64)
    state = base.copy()
    backend = active_backend()
    for _ in range(num_iterations):
        state = (1.0 - teleport) * backend.spmm(normalized, state) + teleport * base
    return state


def chebyshev_polynomials(
    adjacency: sp.spmatrix, features: np.ndarray, order: int
) -> List[np.ndarray]:
    """Return ``[T_0(L̃)X, ..., T_{order}(L̃)X]`` for ChebyNet.

    The Laplacian is rescaled as ``L̃ = 2L/λ_max - I`` with ``λ_max ≈ 2`` (the
    usual approximation), i.e. ``L̃ = L - I = -D^{-1/2} A D^{-1/2}``.
    """
    if order < 0:
        raise GraphValidationError(f"order must be non-negative, got {order}")
    features = np.asarray(features, dtype=np.float64)
    laplacian = symmetric_laplacian(adjacency)
    n = adjacency.shape[0]
    rescaled = (laplacian - sp.eye(n, format="csr")).tocsr()

    polynomials = [features]
    backend = active_backend()
    if order >= 1:
        polynomials.append(backend.spmm(rescaled, features))
    for _ in range(2, order + 1):
        next_term = 2.0 * backend.spmm(rescaled, polynomials[-1]) - polynomials[-2]
        polynomials.append(next_term)
    return polynomials


def dense_sgc_precompute(
    adjacency: np.ndarray, features: np.ndarray, num_hops: int
) -> np.ndarray:
    """Dense counterpart of :func:`sgc_precompute` for condensed graphs."""
    from repro.graph.normalize import dense_gcn_normalize

    normalized = dense_gcn_normalize(adjacency)
    propagated = np.asarray(features, dtype=np.float64)
    backend = active_backend()
    for _ in range(num_hops):
        propagated = backend.matmul(normalized, propagated)
    return propagated
