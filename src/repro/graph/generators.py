"""Random-graph and feature generators used to simulate the benchmark datasets.

The paper evaluates on public graphs (Cora, Citeseer, Flickr, Reddit).  This
environment has no network access, so :mod:`repro.datasets` builds
statistically similar stand-ins from the generators in this module:
degree-corrected stochastic block models for the topology and sparse,
class-correlated bag-of-words-style features.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DatasetError


def stochastic_block_model(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
) -> sp.csr_matrix:
    """Sample a symmetric, binary stochastic block model adjacency matrix.

    Parameters
    ----------
    block_sizes:
        Number of nodes in each block (class).
    p_in / p_out:
        Intra-block and inter-block edge probabilities.
    """
    _check_probability(p_in, "p_in")
    _check_probability(p_out, "p_out")
    block_sizes = [int(size) for size in block_sizes]
    if any(size <= 0 for size in block_sizes):
        raise DatasetError(f"block sizes must be positive, got {block_sizes}")
    labels = np.repeat(np.arange(len(block_sizes)), block_sizes)
    return _sample_block_edges(labels, p_in, p_out, degree_propensity=None, rng=rng)


def degree_corrected_sbm(
    block_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
    power_law_exponent: float = 2.5,
    min_propensity: float = 0.2,
) -> sp.csr_matrix:
    """Degree-corrected SBM: node propensities follow a truncated power law.

    This produces the heavy-tailed degree distributions of real citation and
    social graphs, which matters for BGC's degree-aware node selection metric.
    """
    _check_probability(p_in, "p_in")
    _check_probability(p_out, "p_out")
    block_sizes = [int(size) for size in block_sizes]
    num_nodes = int(sum(block_sizes))
    labels = np.repeat(np.arange(len(block_sizes)), block_sizes)
    # Truncated Pareto-style propensities normalised to mean 1.
    raw = (1.0 - rng.random(num_nodes)) ** (-1.0 / (power_law_exponent - 1.0))
    raw = np.clip(raw, min_propensity, 10.0)
    propensity = raw / raw.mean()
    return _sample_block_edges(labels, p_in, p_out, degree_propensity=propensity, rng=rng)


def _sample_block_edges(
    labels: np.ndarray,
    p_in: float,
    p_out: float,
    degree_propensity: Optional[np.ndarray],
    rng: np.random.Generator,
) -> sp.csr_matrix:
    """Sample edges block-pair by block-pair to avoid an O(N^2) dense matrix."""
    num_nodes = labels.shape[0]
    classes = np.unique(labels)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for a in classes:
        nodes_a = np.flatnonzero(labels == a)
        for b in classes:
            if b < a:
                continue
            nodes_b = np.flatnonzero(labels == b)
            prob = p_in if a == b else p_out
            if prob <= 0:
                continue
            # Expected edges; sample pair candidates with Bernoulli thinning in
            # manageable batches using the sparse "coupon" trick.
            pair_count = (
                nodes_a.size * (nodes_a.size - 1) // 2 if a == b else nodes_a.size * nodes_b.size
            )
            if pair_count == 0:
                continue
            expected = prob * pair_count
            sample_size = rng.poisson(expected)
            if sample_size == 0:
                continue
            src = rng.choice(nodes_a, size=sample_size, replace=True)
            dst = rng.choice(nodes_b, size=sample_size, replace=True)
            if degree_propensity is not None:
                keep_prob = degree_propensity[src] * degree_propensity[dst]
                keep_prob = np.clip(keep_prob, 0.0, 1.0)
                keep = rng.random(sample_size) < keep_prob
                src, dst = src[keep], dst[keep]
            mask = src != dst
            rows.append(src[mask])
            cols.append(dst[mask])
    if rows:
        row = np.concatenate(rows)
        col = np.concatenate(cols)
    else:
        row = np.array([], dtype=np.int64)
        col = np.array([], dtype=np.int64)
    data = np.ones(row.shape[0], dtype=np.float64)
    upper = sp.csr_matrix((data, (row, col)), shape=(num_nodes, num_nodes))
    symmetric = upper + upper.T
    symmetric.data = np.minimum(symmetric.data, 1.0)
    symmetric.setdiag(0)
    symmetric.eliminate_zeros()
    return symmetric.tocsr()


def class_correlated_features(
    labels: np.ndarray,
    num_features: int,
    signal_words_per_class: int,
    signal_strength: float,
    density: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate sparse bag-of-words-like features correlated with class labels.

    Each class owns ``signal_words_per_class`` dedicated feature columns whose
    activation probability is boosted by ``signal_strength``; all other
    columns fire with base probability ``density``.  Rows are L1-normalised,
    matching the Planetoid preprocessing convention.

    The base activations are sampled in row chunks and normalised in place,
    so the only full-size allocation is the returned ``(N, F)`` matrix — at
    the six-figure node counts of the Flickr/Reddit stand-ins the transient
    uniform draw and the normalised copy would otherwise triple the peak.
    Chunking does not change the values: ``Generator.random`` fills row-major
    arrays from the bit stream sequentially, so chunked row draws consume
    exactly the same stream as one full-size draw.
    """
    _check_probability(density, "density")
    labels = np.asarray(labels, dtype=np.int64)
    num_nodes = labels.shape[0]
    num_classes = int(labels.max()) + 1 if labels.size else 0
    if num_classes * signal_words_per_class > num_features:
        raise DatasetError(
            f"{num_classes} classes x {signal_words_per_class} signal words exceed "
            f"{num_features} feature columns"
        )
    chunk = 32768
    base = np.empty((num_nodes, num_features), dtype=np.float64)
    for start in range(0, num_nodes, chunk):
        stop = min(start + chunk, num_nodes)
        base[start:stop] = rng.random((stop - start, num_features)) < density
    for cls in range(num_classes):
        members = np.flatnonzero(labels == cls)
        start = cls * signal_words_per_class
        stop = start + signal_words_per_class
        boosted = rng.random((members.size, signal_words_per_class)) < min(
            1.0, density + signal_strength
        )
        base[np.ix_(members, np.arange(start, stop))] = np.maximum(
            base[np.ix_(members, np.arange(start, stop))], boosted.astype(np.float64)
        )
    row_sums = base.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    base /= row_sums
    return base


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise DatasetError(f"{name} must lie in [0, 1], got {value}")
