"""The :class:`GraphData` container used throughout the library.

A ``GraphData`` bundles an adjacency matrix (scipy CSR), a dense feature
matrix, integer node labels and the train/validation/test split.  It is
immutable by convention: every transformation (poisoning, condensation,
pruning) returns a new instance.

Every instance carries a process-wide monotonic ``version`` token.  Because
instances are immutable by convention, the token identifies the *content* of
``(adjacency, features)`` and is the cache key used by
:class:`repro.graph.cache.PropagationCache` — unlike ``id()``, a version is
never reused after garbage collection.

A transformation that only perturbs a few rows of an existing graph (e.g. the
BGC attack attaching trigger subgraphs to a handful of nodes) should be built
with :meth:`GraphData.with_delta`, which records a :class:`GraphDelta`
derivation.  Downstream propagation code can then recompute only the affected
K-hop neighbourhood instead of the whole graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.splits import SplitIndices

#: Process-wide monotonic source of :attr:`GraphData.version` tokens.
_VERSION_COUNTER = itertools.count(1)


def next_version() -> int:
    """Draw a fresh content-version token.

    Shared by :class:`GraphData` and :class:`repro.graph.view.GraphView` so
    the two kinds of graph can never collide on a
    :class:`~repro.graph.cache.PropagationCache` key.
    """
    return next(_VERSION_COUNTER)


class GraphDelta:
    """Derivation record: how a graph differs from the ``base`` it was built from.

    The contract is row-oriented and conservative:

    * the derived graph contains the base's nodes as a prefix (``0..N_base-1``)
      and may append new nodes after them;
    * ``changed_nodes`` lists every *pre-existing* node whose feature row or
      incident edge set differs from the base — for an added or removed edge
      between two pre-existing nodes, **both** endpoints must be listed
      (edges incident to appended nodes only need their pre-existing endpoint
      listed);
    * every row/column outside ``changed_nodes`` (and outside the appended
      block) is byte-identical to the base.

    Listing too many nodes is always safe (it only costs speed); listing too
    few silently corrupts incremental propagation, so callers should err on
    the conservative side.
    """

    __slots__ = ("base", "changed_nodes")

    def __init__(self, base: "GraphData", changed_nodes: np.ndarray) -> None:
        self.base = base
        self.changed_nodes = np.unique(np.asarray(changed_nodes, dtype=np.int64))
        if self.changed_nodes.size and (
            self.changed_nodes[0] < 0 or self.changed_nodes[-1] >= base.num_nodes
        ):
            raise GraphValidationError(
                f"changed_nodes out of range for base graph with {base.num_nodes} nodes"
            )

    @property
    def base_version(self) -> int:
        return self.base.version

    def __repr__(self) -> str:  # keep reprs small: never print the base arrays
        return (
            f"GraphDelta(base_version={self.base.version}, "
            f"changed_nodes={self.changed_nodes.size})"
        )


@dataclass
class GraphData:
    """A node-classification graph dataset.

    Attributes
    ----------
    adjacency:
        ``(N, N)`` scipy sparse matrix, binary and symmetric for undirected
        graphs (self-loops are added during normalisation, not stored here).
    features:
        ``(N, d)`` dense float feature matrix.
    labels:
        ``(N,)`` integer class labels in ``[0, num_classes)``.
    split:
        Train / validation / test node indices.
    name:
        Human-readable dataset name.
    inductive:
        Whether the dataset uses the inductive protocol (training uses only
        the subgraph induced by the training nodes, as for Flickr / Reddit).
    """

    adjacency: sp.spmatrix
    features: np.ndarray
    labels: np.ndarray
    split: SplitIndices
    name: str = "graph"
    inductive: bool = False
    metadata: Dict[str, float] = field(default_factory=dict)
    #: Optional derivation record linking this graph to the base it was built
    #: from (see :class:`GraphDelta` and :meth:`with_delta`).
    derivation: Optional[GraphDelta] = field(default=None, repr=False, compare=False)
    #: Monotonic content token; assigned at construction, never reused.
    version: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.adjacency = self.adjacency.tocsr().astype(np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.version = next_version()
        self.validate()

    def __setstate__(self, state: Dict) -> None:
        """Restore a pickled graph, drawing a *fresh* version token.

        Version tokens are process-local: an unpickled graph carrying the
        exporting process's token could collide with a token this process
        has already issued (or will issue) for a completely different graph,
        and the :class:`~repro.graph.cache.PropagationCache` would silently
        serve one graph's chains for the other.  Re-issuing here restores
        the invariant that tokens are unique within a process; graphs
        pickled together (a derived graph and its base) keep their object
        identity, so derivation chains stay consistent.
        """
        self.__dict__.update(state)
        self.version = next_version()

    # -------------------------------------------------------------- #
    # Validation and basic properties
    # -------------------------------------------------------------- #
    def validate(self) -> None:
        """Raise :class:`GraphValidationError` if the container is inconsistent."""
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise GraphValidationError(
                f"adjacency must be square, got shape {self.adjacency.shape}"
            )
        if self.features.ndim != 2 or self.features.shape[0] != n:
            raise GraphValidationError(
                f"features must have shape (N, d) with N={n}, got {self.features.shape}"
            )
        if self.labels.shape != (n,):
            raise GraphValidationError(
                f"labels must have shape ({n},), got {self.labels.shape}"
            )
        if self.labels.size and self.labels.min() < 0:
            raise GraphValidationError("labels must be non-negative integers")
        for split_name, index in (
            ("train", self.split.train),
            ("val", self.split.val),
            ("test", self.split.test),
        ):
            if index.size and (index.min() < 0 or index.max() >= n):
                raise GraphValidationError(
                    f"{split_name} indices out of range for graph with {n} nodes"
                )
        if self.derivation is not None and n < self.derivation.base.num_nodes:
            raise GraphValidationError(
                f"derived graph has {n} nodes but its base has "
                f"{self.derivation.base.num_nodes}; deltas may only append nodes"
            )

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def degrees(self) -> np.ndarray:
        """Return the (out-)degree of every node."""
        return np.asarray(self.adjacency.sum(axis=1)).reshape(-1)

    # -------------------------------------------------------------- #
    # Transformations
    # -------------------------------------------------------------- #
    def with_(self, **changes) -> "GraphData":
        """Return a copy with the given fields replaced.

        When neither ``adjacency`` nor ``features`` is replaced, the result
        shares its propagation identity with this graph: an existing
        derivation is carried over, and otherwise an empty delta against this
        graph is recorded, so :class:`~repro.graph.cache.PropagationCache`
        can serve the base's propagated features without any recomputation.
        Replacing ``adjacency`` or ``features`` drops the derivation (the
        caller no longer guarantees the delta contract); use
        :meth:`with_delta` instead to keep incremental propagation available.
        """
        if "adjacency" in changes or "features" in changes:
            changes.setdefault("derivation", None)
        elif "derivation" not in changes and self.derivation is None:
            changes["derivation"] = GraphDelta(
                base=self, changed_nodes=np.empty(0, dtype=np.int64)
            )
        return replace(self, **changes)

    def with_delta(self, changed_nodes: np.ndarray, **changes) -> "GraphData":
        """Return a variant recording *which* rows differ from this graph.

        ``changed_nodes`` must satisfy the :class:`GraphDelta` contract: it
        lists every pre-existing node whose feature row or incident edge set
        the new ``adjacency`` / ``features`` modify; appended nodes (rows
        beyond ``self.num_nodes``) are implied.  The returned graph carries a
        derivation against ``self``, enabling incremental K-hop propagation
        proportional to the delta instead of the graph.
        """
        changes["derivation"] = GraphDelta(base=self, changed_nodes=changed_nodes)
        return replace(self, **changes)

    def copy(self) -> "GraphData":
        """Deep copy of the graph container."""
        return GraphData(
            adjacency=self.adjacency.copy(),
            features=self.features.copy(),
            labels=self.labels.copy(),
            split=self.split.copy(),
            name=self.name,
            inductive=self.inductive,
            metadata=dict(self.metadata),
        )

    def training_view(self) -> "GraphData":
        """Return the graph visible at training time.

        For transductive datasets this is the full graph.  For inductive
        datasets (Flickr / Reddit protocol) it is the subgraph induced by the
        training nodes, relabelled to ``0..n_train-1``.
        """
        if not self.inductive:
            return self
        from repro.graph.subgraph import induced_subgraph

        sub_adj, sub_feat, sub_labels, mapping = induced_subgraph(
            self.adjacency, self.features, self.labels, self.split.train
        )
        train_idx = np.arange(len(self.split.train))
        empty = np.array([], dtype=np.int64)
        return GraphData(
            adjacency=sub_adj,
            features=sub_feat,
            labels=sub_labels,
            split=SplitIndices(train=train_idx, val=empty, test=empty),
            name=f"{self.name}-train",
            inductive=False,
            metadata={**self.metadata, "parent_nodes": float(self.num_nodes)},
        )

    def summary(self) -> Dict[str, float]:
        """Return the headline statistics used in Table I."""
        return {
            "nodes": float(self.num_nodes),
            "edges": float(self.num_edges),
            "classes": float(self.num_classes),
            "features": float(self.num_features),
            "train": float(self.split.train.size),
            "val": float(self.split.val.size),
            "test": float(self.split.test.size),
        }
