"""The :class:`GraphData` container used throughout the library.

A ``GraphData`` bundles an adjacency matrix (scipy CSR), a dense feature
matrix, integer node labels and the train/validation/test split.  It is
immutable by convention: every transformation (poisoning, condensation,
pruning) returns a new instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphValidationError
from repro.graph.splits import SplitIndices


@dataclass
class GraphData:
    """A node-classification graph dataset.

    Attributes
    ----------
    adjacency:
        ``(N, N)`` scipy sparse matrix, binary and symmetric for undirected
        graphs (self-loops are added during normalisation, not stored here).
    features:
        ``(N, d)`` dense float feature matrix.
    labels:
        ``(N,)`` integer class labels in ``[0, num_classes)``.
    split:
        Train / validation / test node indices.
    name:
        Human-readable dataset name.
    inductive:
        Whether the dataset uses the inductive protocol (training uses only
        the subgraph induced by the training nodes, as for Flickr / Reddit).
    """

    adjacency: sp.spmatrix
    features: np.ndarray
    labels: np.ndarray
    split: SplitIndices
    name: str = "graph"
    inductive: bool = False
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adjacency = self.adjacency.tocsr().astype(np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.validate()

    # -------------------------------------------------------------- #
    # Validation and basic properties
    # -------------------------------------------------------------- #
    def validate(self) -> None:
        """Raise :class:`GraphValidationError` if the container is inconsistent."""
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise GraphValidationError(
                f"adjacency must be square, got shape {self.adjacency.shape}"
            )
        if self.features.ndim != 2 or self.features.shape[0] != n:
            raise GraphValidationError(
                f"features must have shape (N, d) with N={n}, got {self.features.shape}"
            )
        if self.labels.shape != (n,):
            raise GraphValidationError(
                f"labels must have shape ({n},), got {self.labels.shape}"
            )
        if self.labels.size and self.labels.min() < 0:
            raise GraphValidationError("labels must be non-negative integers")
        for split_name, index in (
            ("train", self.split.train),
            ("val", self.split.val),
            ("test", self.split.test),
        ):
            if index.size and (index.min() < 0 or index.max() >= n):
                raise GraphValidationError(
                    f"{split_name} indices out of range for graph with {n} nodes"
                )

    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def degrees(self) -> np.ndarray:
        """Return the (out-)degree of every node."""
        return np.asarray(self.adjacency.sum(axis=1)).reshape(-1)

    # -------------------------------------------------------------- #
    # Transformations
    # -------------------------------------------------------------- #
    def with_(self, **changes) -> "GraphData":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def copy(self) -> "GraphData":
        """Deep copy of the graph container."""
        return GraphData(
            adjacency=self.adjacency.copy(),
            features=self.features.copy(),
            labels=self.labels.copy(),
            split=self.split.copy(),
            name=self.name,
            inductive=self.inductive,
            metadata=dict(self.metadata),
        )

    def training_view(self) -> "GraphData":
        """Return the graph visible at training time.

        For transductive datasets this is the full graph.  For inductive
        datasets (Flickr / Reddit protocol) it is the subgraph induced by the
        training nodes, relabelled to ``0..n_train-1``.
        """
        if not self.inductive:
            return self
        from repro.graph.subgraph import induced_subgraph

        sub_adj, sub_feat, sub_labels, mapping = induced_subgraph(
            self.adjacency, self.features, self.labels, self.split.train
        )
        train_idx = np.arange(len(self.split.train))
        empty = np.array([], dtype=np.int64)
        return GraphData(
            adjacency=sub_adj,
            features=sub_feat,
            labels=sub_labels,
            split=SplitIndices(train=train_idx, val=empty, test=empty),
            name=f"{self.name}-train",
            inductive=False,
            metadata={**self.metadata, "parent_nodes": float(self.num_nodes)},
        )

    def summary(self) -> Dict[str, float]:
        """Return the headline statistics used in Table I."""
        return {
            "nodes": float(self.num_nodes),
            "edges": float(self.num_edges),
            "classes": float(self.num_classes),
            "features": float(self.num_features),
            "train": float(self.split.train.size),
            "val": float(self.split.val.size),
            "test": float(self.split.test.size),
        }
