"""Async job queue: bounded submission, streamed results, cancellation.

:class:`CondensationService` is the orchestration layer between callers and
the execution machinery: jobs (single :class:`~repro.api.spec.ExperimentSpec`
cells or whole :class:`~repro.api.spec.SweepSpec` grids) enter a **bounded
queue** — a full queue raises :class:`~repro.exceptions.JobQueueFull`
instead of buffering unboundedly — and are expanded onto one shared
:class:`~repro.service.pool.WorkerPool`, with every cell first checked
against the content-addressed :class:`~repro.service.store.ResultStore`.
A store hit is delivered instantly without touching a worker; a miss runs
on the pool and, if it succeeds, is written back, so a resubmitted or
crash-restarted sweep skips every cell an earlier job already answered.

Per-job fault isolation: a failing cell becomes a structured failed
:class:`~repro.api.runner.RunRecord` inside its own job (the service always
runs with record-the-failure semantics — one poisoned cell or crashed
worker never aborts its job, let alone a neighbour's), and a job whose
*spec* cannot even be expanded fails alone with status ``FAILED``.

Callers hold a :class:`JobHandle`: ``stream()`` yields records in
completion order as cells finish, ``wait()`` blocks for the full
:class:`~repro.api.runner.SweepRecord` in canonical grid order,
``cancel()`` drops a queued job entirely or the unstarted cells of a
running one, and ``summary()`` reports progress counters including how many
cells the store answered.
"""

from __future__ import annotations

import itertools
import queue
import threading
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.api.parallel import prepare_handoff
from repro.api.runner import RunRecord, SweepRecord, dataset_cache_key
from repro.api.spec import ExperimentSpec, SweepSpec
from repro.exceptions import ConfigurationError, JobCancelled, JobQueueFull
from repro.service.pool import DEFAULT_RECYCLE_AFTER, WorkerPool
from repro.service.store import ResultStore
from repro.utils.logging import get_logger

logger = get_logger("service.jobs")

#: Default bound on jobs queued but not yet expanded onto the pool.
DEFAULT_MAX_PENDING = 8


class JobStatus(str, Enum):
    """Lifecycle of a submitted job (terminal: DONE / FAILED / CANCELLED)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job has finished (successfully or otherwise)."""
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


class JobHandle:
    """Caller-side view of one submitted job (thread-safe).

    Handles are created by :meth:`CondensationService.submit`; all state
    transitions happen on service threads, so every accessor synchronises on
    the handle's own condition variable.  A failed *cell* does not fail the
    job — it arrives as a structured failed record and the job still ends
    ``DONE``; ``FAILED`` means the job itself could not run (e.g. its sweep
    spec failed to expand) and :meth:`wait` re-raises the stored error.
    """

    def __init__(self, job_id: str, sweep: SweepSpec, service: "CondensationService"):
        self.job_id = job_id
        self.sweep = sweep
        self._service = service
        self._condition = threading.Condition()
        self._status = JobStatus.QUEUED
        self._error: Optional[BaseException] = None
        self._num_cells: Optional[int] = None
        self._records: List[Optional[RunRecord]] = []
        self._completed: List[RunRecord] = []
        self.store_hits = 0
        self.store_misses = 0

    # ------------------------------------------------------------ #
    # Caller API
    # ------------------------------------------------------------ #
    @property
    def status(self) -> JobStatus:
        """Current lifecycle state."""
        with self._condition:
            return self._status

    def wait(self, timeout: Optional[float] = None) -> SweepRecord:
        """Block until the job reaches a terminal state; return its records.

        Returns the :class:`~repro.api.runner.SweepRecord` in canonical grid
        order (failed cells included as structured failed records).  Raises
        :class:`~repro.exceptions.JobCancelled` if the job was cancelled,
        re-raises the job-level error if it ``FAILED``, and raises
        :class:`TimeoutError` if ``timeout`` elapses first.
        """
        with self._condition:
            if not self._condition.wait_for(lambda: self._status.terminal, timeout):
                raise TimeoutError(
                    f"job {self.job_id} still {self._status.value} after {timeout}s"
                )
            if self._status is JobStatus.CANCELLED:
                raise JobCancelled(f"job {self.job_id} was cancelled")
            if self._status is JobStatus.FAILED:
                raise self._error
            return SweepRecord([record for record in self._records])

    def stream(self, timeout: Optional[float] = None) -> Iterator[RunRecord]:
        """Yield records in completion order as cells finish.

        Store hits arrive first (they complete instantly); pool cells follow
        as workers report.  ``timeout`` bounds the wait for *each next*
        record.  Ends normally when the job is ``DONE`` and every record has
        been yielded; raises like :meth:`wait` on cancellation or failure.
        """
        position = 0
        while True:
            with self._condition:
                if not self._condition.wait_for(
                    lambda: position < len(self._completed) or self._status.terminal,
                    timeout,
                ):
                    raise TimeoutError(
                        f"job {self.job_id}: no record within {timeout}s"
                    )
                if position < len(self._completed):
                    record = self._completed[position]
                    position += 1
                elif self._status is JobStatus.CANCELLED:
                    raise JobCancelled(f"job {self.job_id} was cancelled")
                elif self._status is JobStatus.FAILED:
                    raise self._error
                else:
                    return
            yield record

    def cancel(self) -> bool:
        """Cancel the job; returns ``True`` if it was still cancellable.

        A queued job is dropped entirely; a running job keeps records that
        already completed, drops its unstarted cells, and lets in-flight
        cells finish silently.  Cancelling a terminal job is a no-op.
        """
        return self._service._cancel(self)

    def summary(self) -> Dict[str, Any]:
        """Progress counters: cells, completions, failures, store traffic."""
        with self._condition:
            completed = len(self._completed)
            failed = sum(1 for record in self._completed if not record.ok)
            return {
                "job_id": self.job_id,
                "name": self.sweep.name,
                "status": self._status.value,
                "cells": self._num_cells,
                "completed": completed,
                "failed": failed,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
            }

    # ------------------------------------------------------------ #
    # Service-side transitions
    # ------------------------------------------------------------ #
    def _set_running(self, num_cells: int) -> bool:
        """QUEUED -> RUNNING; returns False if the job was cancelled first."""
        with self._condition:
            if self._status is not JobStatus.QUEUED:
                return False
            self._status = JobStatus.RUNNING
            self._num_cells = num_cells
            self._records = [None] * num_cells
            self._condition.notify_all()
            return True

    def _deliver(self, record: RunRecord, *, from_store: bool) -> None:
        """Record one finished cell; transition to DONE on the last one."""
        with self._condition:
            if self._status is not JobStatus.RUNNING:
                return  # late arrival after cancellation — drop it
            self._records[record.cell_index] = record
            self._completed.append(record)
            if from_store:
                self.store_hits += 1
            else:
                self.store_misses += 1
            if len(self._completed) == self._num_cells:
                self._status = JobStatus.DONE
            self._condition.notify_all()

    def _finish(self, status: JobStatus, error: Optional[BaseException] = None) -> bool:
        """Force a terminal state; returns False if already terminal."""
        with self._condition:
            if self._status.terminal:
                return False
            self._status = status
            self._error = error
            self._condition.notify_all()
            return True


class CondensationService:
    """Long-running condensation service: queue -> pool -> store.

    One service owns one :class:`~repro.service.pool.WorkerPool` (``workers``
    long-lived processes shared by every job, recycled after
    ``recycle_after`` cells) and one :class:`~repro.service.store.ResultStore`
    (constructor argument, else a fresh store on the ``REPRO_RESULT_STORE``
    root, else in-memory).  ``max_pending`` bounds the job queue —
    :meth:`submit` on a full queue raises
    :class:`~repro.exceptions.JobQueueFull` unless asked to block.
    ``timeout``, ``blocked_threshold`` and ``kernel_backend`` are forwarded
    to the pool as the per-cell defaults.

    The service is a context manager::

        with CondensationService(workers=4) as service:
            handle = service.submit(sweep)
            for record in handle.stream():
                ...
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        store: Optional[ResultStore] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        recycle_after: Optional[int] = DEFAULT_RECYCLE_AFTER,
        timeout: Optional[float] = None,
        blocked_threshold: Optional[int] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.store = store if store is not None else ResultStore()
        self._pool = WorkerPool(
            workers,
            recycle_after=recycle_after,
            timeout=timeout,
            blocked_threshold=blocked_threshold,
            kernel_backend=kernel_backend,
            name="service",
        )
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_pending)
        self._jobs: Dict[str, JobHandle] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._started = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------ #
    def start(self) -> "CondensationService":
        """Start the worker pool and the job scheduler thread (idempotent)."""
        if self._started:
            return self
        self._pool.start()
        self._started = True
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-service-jobs", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop the scheduler, the pool, and the store (idempotent).

        Jobs still queued are marked ``CANCELLED``; a running job's
        in-flight cells are dropped with the pool.  Callers that need a
        job's results must :meth:`JobHandle.wait` before shutting down.
        """
        if not self._started:
            return
        self._started = False
        self._queue.put(None)  # scheduler sentinel
        if wait and self._thread is not None:
            self._thread.join()
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                job._finish(JobStatus.CANCELLED)
        with self._lock:
            for job in self._jobs.values():
                job._finish(JobStatus.CANCELLED)
        self._pool.shutdown(wait=wait)
        self.store.close()

    def __enter__(self) -> "CondensationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------ #
    def submit(
        self,
        spec: Union[ExperimentSpec, SweepSpec],
        *,
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> JobHandle:
        """Enqueue a job; returns its :class:`JobHandle` immediately.

        A bare :class:`~repro.api.spec.ExperimentSpec` is wrapped as a
        one-cell sweep with an explicit ``seed`` axis, which preserves the
        spec's own seed exactly (a plain empty-axes sweep would re-derive
        it).  When the queue already holds ``max_pending`` jobs, a
        non-blocking submit raises
        :class:`~repro.exceptions.JobQueueFull`; ``block=True`` waits up to
        ``timeout`` seconds (forever if ``None``) before raising.

        The job always runs on the service's pool with record-the-failure
        semantics; the submitted sweep's own ``execution`` block (backend,
        workers, on_error) is ignored.
        """
        if not self._started:
            raise RuntimeError("CondensationService.submit called before start()")
        if isinstance(spec, ExperimentSpec):
            spec = SweepSpec(
                base=spec,
                axes={"seed": [spec.seed]},
                name=f"cell-{spec.condenser.name}",
            )
        elif not isinstance(spec, SweepSpec):
            raise ConfigurationError(
                f"submit expects an ExperimentSpec or SweepSpec, got {type(spec)!r}"
            )
        with self._lock:
            job_id = f"job-{next(self._job_ids):04d}"
            handle = JobHandle(job_id, spec, self)
            self._jobs[job_id] = handle
        try:
            self._queue.put(handle, block=block, timeout=timeout)
        except queue.Full:
            with self._lock:
                del self._jobs[job_id]
            raise JobQueueFull(
                f"job queue is full ({self._queue.maxsize} pending jobs); "
                "retry later or submit with block=True"
            ) from None
        logger.info("service: queued %s (%s)", job_id, spec.name)
        return handle

    def get(self, job_id: str) -> JobHandle:
        """The handle for ``job_id``; raises ``KeyError`` if unknown."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Dict[str, Any]]:
        """Summaries of every job this service has seen, in submission order."""
        with self._lock:
            handles = list(self._jobs.values())
        return [handle.summary() for handle in handles]

    def stats(self) -> Dict[str, Any]:
        """Service-level counters: store traffic plus pool activity."""
        return {
            "store": self.store.stats(),
            "pool": dict(self._pool.counters),
            "jobs": len(self._jobs),
            "queued": self._queue.qsize(),
        }

    # ------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------ #
    def _cancel(self, job: JobHandle) -> bool:
        """Cancel a job: drop pending pool cells, force CANCELLED."""
        self._pool.cancel(lambda tag: tag == job.job_id)
        return job._finish(JobStatus.CANCELLED)

    def _scheduler_loop(self) -> None:
        """Consume the job queue: expand, memo-check, dispatch to the pool."""
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._launch(job)
            except BaseException as error:  # noqa: BLE001 — job fails alone
                logger.exception("service: job %s failed to launch", job.job_id)
                job._finish(JobStatus.FAILED, error)

    def _launch(self, job: JobHandle) -> None:
        """Expand one job onto the pool, serving store hits immediately."""
        try:
            specs = job.sweep.expand()
        except Exception as error:  # noqa: BLE001 — bad spec fails the job
            job._finish(JobStatus.FAILED, error)
            return
        # Load each dataset once and warm its propagation shard in the
        # service parent; workers receive it by fork inheritance or by a
        # one-time per-worker shipment (see WorkerPool).  Cells the store
        # will answer still pass through here, which keeps the handoff
        # simple — the loads are memoised, so a warm service pays nothing.
        graphs, warm = prepare_handoff(specs)
        if not job._set_running(len(specs)):
            return  # cancelled while queued
        if not specs:
            job._finish(JobStatus.DONE)
            return
        for index, spec in enumerate(specs):
            stored = self.store.get(spec, cell_index=index)
            if stored is not None:
                job._deliver(stored, from_store=True)
                continue
            try:
                key = dataset_cache_key(spec)
            except Exception:  # noqa: BLE001 — bad overrides fail in-worker
                key = None

            def on_done(record: RunRecord, _job: JobHandle = job) -> None:
                self.store.put(record)
                _job._deliver(record, from_store=False)

            self._pool.submit(
                spec,
                index,
                on_done=on_done,
                tag=job.job_id,
                graph=graphs.get(key),
                warm_payload=warm.get(key),
            )
        logger.info(
            "service: %s running (%d cells, %d from store)",
            job.job_id,
            len(specs),
            job.store_hits,
        )
