"""Unix-socket front end for :class:`~repro.service.jobs.CondensationService`.

One long-lived ``repro serve`` process owns the worker pool and the result
store; any number of ``repro submit`` / ``repro jobs`` clients talk to it
over a line-delimited JSON protocol on a unix domain socket.  Every request
is one JSON object on one line; every response line is either

``{"ok": true, ...}`` / ``{"ok": false, "error": {"type", "message"}}``
    for one-shot operations, or

``{"event": "record", "record": <RunRecord.to_dict()>}`` lines followed by a
``{"event": "done", "job": <summary>}`` terminator
    for a streaming ``submit`` — records arrive in completion order as cells
    finish (clients that need canonical grid order re-sort on
    ``record["cell_index"]``, as the CLI's jsonl sink does).

Operations: ``ping``, ``submit`` (``{"sweep": <SweepSpec.to_dict()>,
"wait": bool}``), ``status`` / ``cancel`` (``{"job_id": ...}``), ``jobs``,
``stats`` and ``shutdown``.  The protocol is deliberately minimal — both
ends are this repository — and the server binds a filesystem socket path,
so access control is the directory's permission bits.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Any, Dict, Iterator, Optional

from repro.api.spec import SweepSpec
from repro.service.jobs import CondensationService
from repro.utils.logging import get_logger

logger = get_logger("service.server")

#: Seconds a client waits for the server to answer one request line.
DEFAULT_CLIENT_TIMEOUT = 600.0


class ServiceServer:
    """Accept-loop wrapper binding a CondensationService to a unix socket.

    ``serve_forever`` blocks until a client sends ``{"op": "shutdown"}`` or
    :meth:`stop` is called from another thread; each accepted connection is
    handled on its own daemon thread, so a slow streaming ``submit`` never
    blocks ``jobs`` / ``status`` queries from other clients.
    """

    def __init__(self, socket_path: str, service: CondensationService) -> None:
        self.socket_path = socket_path
        self.service = service
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None

    def serve_forever(self) -> None:
        """Bind the socket and handle clients until asked to stop."""
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead server
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen()
        listener.settimeout(0.2)
        self._listener = listener
        logger.info("service: listening on %s", self.socket_path)
        try:
            while not self._stop.is_set():
                try:
                    connection, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                threading.Thread(
                    target=self._handle_client,
                    args=(connection,),
                    name="repro-service-client",
                    daemon=True,
                ).start()
        finally:
            listener.close()
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)

    def stop(self) -> None:
        """Ask ``serve_forever`` to return (idempotent, thread-safe)."""
        self._stop.set()

    # ------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------ #
    def _handle_client(self, connection: socket.socket) -> None:
        """Serve request lines on one connection until the client hangs up."""
        with connection, connection.makefile("rwb") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    self._dispatch(request, stream)
                except (BrokenPipeError, ConnectionResetError):
                    return
                except Exception as error:  # noqa: BLE001 — report, keep serving
                    try:
                        _send(stream, _error_payload(error))
                    except OSError:
                        return

    def _dispatch(self, request: Dict[str, Any], stream) -> None:
        """Route one request object to its operation."""
        op = request.get("op")
        if op == "ping":
            _send(stream, {"ok": True, "pong": True})
        elif op == "submit":
            self._handle_submit(request, stream)
        elif op == "status":
            handle = self.service.get(str(request.get("job_id")))
            _send(stream, {"ok": True, "job": handle.summary()})
        elif op == "cancel":
            handle = self.service.get(str(request.get("job_id")))
            cancelled = handle.cancel()
            _send(stream, {"ok": True, "cancelled": cancelled, "job": handle.summary()})
        elif op == "jobs":
            _send(stream, {"ok": True, "jobs": self.service.jobs()})
        elif op == "stats":
            _send(stream, {"ok": True, "stats": self.service.stats()})
        elif op == "shutdown":
            _send(stream, {"ok": True, "stopping": True})
            self.stop()
        else:
            _send(
                stream,
                {
                    "ok": False,
                    "error": {
                        "type": "UnknownOperation",
                        "message": f"unknown op {op!r}",
                    },
                },
            )

    def _handle_submit(self, request: Dict[str, Any], stream) -> None:
        """Queue a sweep; stream its records back unless ``wait`` is false."""
        sweep = SweepSpec.from_dict(request.get("sweep") or {})
        handle = self.service.submit(sweep, block=bool(request.get("block", False)))
        if not request.get("wait", True):
            _send(stream, {"ok": True, "job": handle.summary()})
            return
        try:
            for record in handle.stream():
                _send(stream, {"event": "record", "record": record.to_dict()})
            _send(stream, {"event": "done", "job": handle.summary()})
        except Exception as error:  # noqa: BLE001 — stream the failure
            _send(stream, {"event": "error", **_error_payload(error)})


def _error_payload(error: BaseException) -> Dict[str, Any]:
    """The wire form of a server-side exception."""
    return {
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def _send(stream, payload: Dict[str, Any]) -> None:
    """Write one response line and flush it to the client."""
    stream.write((json.dumps(payload) + "\n").encode("utf-8"))
    stream.flush()


# ------------------------------------------------------------------ #
# Client helpers (used by the CLI verbs)
# ------------------------------------------------------------------ #
def request(
    socket_path: str,
    payload: Dict[str, Any],
    timeout: float = DEFAULT_CLIENT_TIMEOUT,
) -> Dict[str, Any]:
    """Send one request; return its single response object.

    Raises :class:`ConnectionError` when no server is listening on
    ``socket_path`` and :class:`RuntimeError` when the server reports an
    error response.
    """
    for response in _request_lines(socket_path, payload, timeout):
        if response.get("ok") is False:
            error = response.get("error") or {}
            raise RuntimeError(
                f"server error {error.get('type', 'Error')}: "
                f"{error.get('message', '')}"
            )
        return response
    raise ConnectionError(f"server at {socket_path} closed without responding")


def submit_and_stream(
    socket_path: str,
    sweep: Dict[str, Any],
    timeout: float = DEFAULT_CLIENT_TIMEOUT,
) -> Iterator[Dict[str, Any]]:
    """Submit a sweep payload; yield the streamed response objects.

    Yields ``{"event": "record", ...}`` objects as cells finish and finally
    the ``{"event": "done", "job": ...}`` summary; raises
    :class:`RuntimeError` if the server streams an error event.
    """
    payload = {"op": "submit", "sweep": sweep, "wait": True, "block": True}
    for response in _request_lines(socket_path, payload, timeout):
        if response.get("event") == "error" or response.get("ok") is False:
            error = response.get("error") or {}
            raise RuntimeError(
                f"server error {error.get('type', 'Error')}: "
                f"{error.get('message', '')}"
            )
        yield response
        if response.get("event") == "done":
            return
    raise ConnectionError(f"server at {socket_path} closed mid-stream")


def _request_lines(
    socket_path: str, payload: Dict[str, Any], timeout: float
) -> Iterator[Dict[str, Any]]:
    """Send one request line; yield each response line as a parsed object."""
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    try:
        client.connect(socket_path)
    except (FileNotFoundError, ConnectionRefusedError) as error:
        client.close()
        raise ConnectionError(
            f"no repro service listening on {socket_path} "
            "(start one with `repro serve`)"
        ) from error
    with client, client.makefile("rwb") as stream:
        stream.write((json.dumps(payload) + "\n").encode("utf-8"))
        stream.flush()
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)


def wait_for_server(
    socket_path: str, timeout: float = 30.0, interval: float = 0.1
) -> None:
    """Block until a server answers ``ping`` on ``socket_path``.

    Used by scripted callers (tests, CI) that start ``repro serve`` as a
    subprocess and must not race its socket creation.  Raises
    :class:`TimeoutError` when the deadline passes.
    """
    import time

    deadline = time.monotonic() + timeout
    while True:
        try:
            if request(socket_path, {"op": "ping"}, timeout=interval * 10).get("pong"):
                return
        except (ConnectionError, OSError):
            pass
        if time.monotonic() > deadline:
            raise TimeoutError(f"no repro service on {socket_path} after {timeout}s")
        time.sleep(interval)


__all__ = [
    "ServiceServer",
    "request",
    "submit_and_stream",
    "wait_for_server",
]
