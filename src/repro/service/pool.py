"""Persistent worker pool: one long-lived process per slot, reused across cells.

The PR 5 process backend (:mod:`repro.api.parallel`) forks one worker per
*cell* — correct, but a grid of many tiny cells pays a process launch, a
pipe setup and a join per cell.  This pool keeps ``workers`` processes alive
and feeds them cells over duplex pipes, so the per-cell cost drops to one
pickled task message and one pickled result.  The same pool serves two
callers: :func:`repro.api.parallel.run_sweep_pool` (the
``backend="pool"`` execution backend, one sweep per pool) and
:class:`repro.service.jobs.CondensationService` (one pool for the lifetime
of the service, multiplexing many concurrent jobs).

Contract (shared with the per-cell backend):

**Determinism** — a worker derives every random stream of a cell from the
cell's own ``spec.seed``; nothing about worker identity, reuse order or
recycling reaches a result, so pool records are bit-identical to serial
execution for any worker count (``tests/test_service.py`` pins this to the
condensed-graph sha256 fingerprints).

**Fault isolation** — the :class:`~repro.api.spec.ExecutionSpec` error
taxonomy carries over verbatim: a cell that raises becomes a structured
failed :class:`~repro.api.runner.RunRecord`; a cell that exceeds its
deadline is terminated and recorded as a ``CellTimeout``; a worker that dies
without reporting (hard crash, ``os._exit``) is recorded as a
``WorkerCrash``.  In every case the dead slot is **respawned** and the
remaining cells keep running — one poisoned cell never takes the pool down.

**Recycling** — a worker is retired and replaced after ``recycle_after``
completed cells (long-lived services must bound per-worker memory growth:
dataset memos, propagation-cache shards and allocator fragmentation all
accumulate in a worker that never exits) and, implicitly, on crash.

**Cache handoff** — workers forked at :meth:`WorkerPool.start` inherit the
parent's dataset memo and warmed :class:`~repro.graph.cache.PropagationCache`
through copy-on-write pages.  For datasets the parent loaded *after* a
worker started (a later job on a fresh dataset, or any dataset under the
``spawn`` fallback), the first task naming that dataset ships the loaded
graph plus a pickled ``export_base_chains`` payload to that worker — once
per worker per dataset, not once per cell.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.runner import (
    CACHE_COUNTER_KEYS,
    RunRecord,
    cache_counters,
    dataset_cache_key,
    error_info,
    run_experiment,
)
from repro.api.spec import ExperimentSpec
from repro.datasets.base import _DATASET_CACHE
from repro.graph.blocked import (
    remove_process_scratch,
    scratch_root,
    set_blocked_threshold,
    set_scratch_root,
)
from repro.graph.cache import get_default_cache
from repro.graph.data import GraphData
from repro.kernels import kernel_backend_name, set_kernel_backend
from repro.utils.logging import get_logger

logger = get_logger("service.pool")

#: Scheduler poll interval (seconds) — the deadline-check granularity; task
#: dispatch and result collection are event-driven (pipe readiness), not
#: polled.
_POLL_INTERVAL = 0.05
#: Grace period (seconds) for a stopped worker to exit before SIGKILL.
_TERMINATE_GRACE = 5.0
#: Default number of completed cells after which a worker is recycled.
DEFAULT_RECYCLE_AFTER = 64


def _pool_worker_main(
    connection,
    blocked_scratch_root: Optional[str],
) -> None:
    """Long-lived worker loop: receive cells, run them, ship records back.

    Messages from the parent are ``("run", task_id, spec, cell_index,
    dataset_key, graph, warm_payload, blocked_threshold, kernel_backend)``
    or ``("stop",)``.
    Every run is answered with ``("ok", task_id, record_dict, stats_delta)``
    or ``("error", task_id, error_info, stats_delta)`` — an exception is a
    reported result, never a dead worker, so the parent can tell a failing
    *cell* from a dying *process*.  A shipped ``graph`` is installed into the
    worker's dataset memo (so later cells on the same dataset need no
    payload) and its ``warm_payload`` — a pickled ``export_base_chains``
    snapshot — warms the worker's propagation cache exactly once per
    dataset.  The scratch root is pinned before any work so blocked-engine
    block files land where the parent's crash cleanup will look; the
    worker's scratch directory is removed on the way out.
    """
    if blocked_scratch_root is not None:
        set_scratch_root(blocked_scratch_root)
    cache = get_default_cache()
    warmed: set = set()
    applied_threshold: Optional[int] = None
    applied_kernel: Optional[str] = None
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            (
                _,
                task_id,
                spec,
                cell_index,
                dataset_key,
                graph,
                warm_payload,
                threshold,
                kernel,
            ) = message
            if threshold is not None and threshold != applied_threshold:
                set_blocked_threshold(threshold)
                applied_threshold = threshold
            if kernel is not None and kernel != applied_kernel:
                set_kernel_backend(kernel)
                applied_kernel = kernel
            before = cache_counters(cache.stats())

            def stats_delta() -> Dict[str, int]:
                after = cache_counters(cache.stats())
                return {key: after[key] - before[key] for key in CACHE_COUNTER_KEYS}

            try:
                if graph is not None and dataset_key is not None:
                    _DATASET_CACHE.setdefault(dataset_key, graph)
                    if warm_payload is not None and dataset_key not in warmed:
                        cache.warm_start(
                            _DATASET_CACHE[dataset_key], pickle.loads(warm_payload)
                        )
                        warmed.add(dataset_key)
                shared = (
                    _DATASET_CACHE.get(dataset_key) if dataset_key is not None else None
                )
                record = run_experiment(spec, graph=shared, cell_index=cell_index)
                connection.send(("ok", task_id, record.to_dict(), stats_delta()))
            except BaseException as error:  # noqa: BLE001 — everything reported
                connection.send(("error", task_id, error_info(error), stats_delta()))
    finally:
        connection.close()
        remove_process_scratch()


#: Result callback: receives the finished cell's RunRecord.
OnDone = Callable[[RunRecord], None]


@dataclass
class _Task:
    """One pending or in-flight cell."""

    task_id: int
    spec: ExperimentSpec
    cell_index: int
    on_done: OnDone
    timeout: Optional[float]
    #: Opaque caller tag (the service stores its job id here) for cancel().
    tag: Any = None
    graph: Optional[GraphData] = None
    warm_payload: Optional[bytes] = None
    started: float = 0.0


@dataclass
class _WorkerSlot:
    """Parent-side state of one live worker process."""

    process: multiprocessing.process.BaseProcess
    connection: multiprocessing.connection.Connection
    #: Dataset keys present in the worker (fork-inherited memo snapshot plus
    #: everything shipped since) — the parent ships a graph payload only for
    #: keys missing here.
    known_datasets: set = field(default_factory=set)
    cells_done: int = 0
    current: Optional[_Task] = None
    deadline: Optional[float] = None


class WorkerPool:
    """A fixed-size pool of long-lived worker processes executing cells.

    ``submit`` enqueues a cell and returns immediately; the ``on_done``
    callback fires from the pool's scheduler thread with the finished (or
    failed) :class:`~repro.api.runner.RunRecord`.  Workers are recycled
    after ``recycle_after`` completed cells and respawned on crash or
    timeout, so the pool survives arbitrary cell behaviour.  ``timeout`` is
    the default per-cell wall-clock budget (overridable per submit);
    ``blocked_threshold`` pins the blocked-propagation threshold applied in
    every worker (``None`` resolves the parent's current effective value at
    dispatch, so workers and parent agree even when jobs differ);
    ``kernel_backend`` pins the :mod:`repro.kernels` backend the same way.

    The pool is a context manager::

        with WorkerPool(workers=4) as pool:
            pool.submit(spec, 0, on_done=collect)
            ...
        # __exit__ drains nothing — callers wait for their callbacks, then
        # shutdown() stops the workers.
    """

    def __init__(
        self,
        workers: int,
        *,
        recycle_after: Optional[int] = DEFAULT_RECYCLE_AFTER,
        timeout: Optional[float] = None,
        blocked_threshold: Optional[int] = None,
        kernel_backend: Optional[str] = None,
        name: str = "pool",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if recycle_after is not None and recycle_after < 1:
            raise ValueError(f"recycle_after must be >= 1 or None, got {recycle_after}")
        self.workers = workers
        self.recycle_after = recycle_after
        self.timeout = timeout
        self.blocked_threshold = blocked_threshold
        self.kernel_backend = kernel_backend
        self.name = name
        self._context = None
        self._slots: List[Optional[_WorkerSlot]] = []
        self._pending: deque = deque()
        self._lock = threading.Lock()
        self._next_task_id = 0
        self._started = False
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self._wake_recv = None
        self._wake_send = None
        self._scratch_root: Optional[str] = None
        self._worker_stats: List[Dict[str, int]] = []
        self.counters = {
            "dispatched": 0,
            "completed": 0,
            "failed": 0,
            "recycled": 0,
            "crashes": 0,
            "timeouts": 0,
            "launched": 0,
        }

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> "WorkerPool":
        """Spawn the worker processes and the scheduler thread (idempotent)."""
        if self._started:
            return self
        from repro.api.parallel import preferred_start_method

        self._start_method = preferred_start_method()
        self._context = multiprocessing.get_context(self._start_method)
        # One resolution of the blocked scratch root for the pool's lifetime:
        # every worker pins it at birth and every crash cleanup targets it.
        self._scratch_root = scratch_root()
        self._wake_recv, self._wake_send = multiprocessing.Pipe(duplex=False)
        self._slots = [self._spawn_slot() for _ in range(self.workers)]
        self._started = True
        self._stopping = False
        self._thread = threading.Thread(
            target=self._scheduler_loop, name=f"repro-pool-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def _spawn_slot(self) -> _WorkerSlot:
        """Launch one worker process and record what it inherits."""
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_pool_worker_main,
            args=(child_end, self._scratch_root),
            daemon=True,
            name=f"repro-pool-{self.name}-worker",
        )
        process.start()
        child_end.close()
        # Under fork the child copies the parent's dataset memo (and warmed
        # propagation cache) as of this instant; under spawn it starts cold.
        inherited = set(_DATASET_CACHE) if self._start_method == "fork" else set()
        self.counters["launched"] += 1
        return _WorkerSlot(
            process=process, connection=parent_end, known_datasets=inherited
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the scheduler and terminate every worker (idempotent).

        Pending tasks are dropped without their callbacks firing; callers
        that need completion must wait for their callbacks *before* shutting
        down (both built-in callers do).
        """
        with self._lock:
            if not self._started:
                return
            self._stopping = True
            self._pending.clear()
        self._wake()
        if wait and self._thread is not None:
            self._thread.join()
        for slot in self._slots:
            if slot is not None:
                self._stop_slot(slot)
        self._slots = []
        self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _stop_slot(self, slot: _WorkerSlot) -> None:
        """Politely stop a worker, escalating to terminate/kill; clean scratch."""
        try:
            slot.connection.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        slot.process.join(_TERMINATE_GRACE)
        if slot.process.is_alive():
            slot.process.terminate()
            slot.process.join(_TERMINATE_GRACE)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
        slot.connection.close()
        if slot.process.pid is not None:
            # A terminated worker never ran its own cleanup; a stopped one
            # already removed its directory, making this a no-op.
            remove_process_scratch(slot.process.pid, root=self._scratch_root)

    # -------------------------------------------------------------- #
    # Submission
    # -------------------------------------------------------------- #
    def submit(
        self,
        spec: ExperimentSpec,
        cell_index: int,
        *,
        on_done: OnDone,
        timeout: Optional[float] = None,
        tag: Any = None,
        graph: Optional[GraphData] = None,
        warm_payload: Optional[bytes] = None,
    ) -> int:
        """Enqueue one cell; returns its task id.  ``on_done`` fires from the
        scheduler thread with the finished or failed record.

        ``graph``/``warm_payload`` are the shard-handoff artefacts for the
        cell's dataset (see :func:`repro.api.parallel.prepare_handoff`); they
        are shipped to a worker only if it does not already hold that
        dataset.  ``timeout`` overrides the pool default for this cell;
        ``tag`` is an opaque marker usable with :meth:`cancel`.
        """
        if not self._started:
            raise RuntimeError("WorkerPool.submit called before start()")
        with self._lock:
            if self._stopping:
                raise RuntimeError("WorkerPool is shutting down")
            task = _Task(
                task_id=self._next_task_id,
                spec=spec,
                cell_index=cell_index,
                on_done=on_done,
                timeout=self.timeout if timeout is None else timeout,
                tag=tag,
                graph=graph,
                warm_payload=warm_payload,
            )
            self._next_task_id += 1
            self._pending.append(task)
        self._wake()
        return task.task_id

    def cancel(self, predicate: Callable[[Any], bool]) -> int:
        """Drop pending tasks whose ``tag`` satisfies ``predicate``.

        In-flight cells are not interrupted (their results still arrive);
        returns the number of pending tasks removed.  Cancelled tasks'
        callbacks never fire.
        """
        with self._lock:
            kept = deque()
            dropped = 0
            for task in self._pending:
                if predicate(task.tag):
                    dropped += 1
                else:
                    kept.append(task)
            self._pending = kept
        return dropped

    def pending_count(self) -> int:
        """Tasks enqueued but not yet dispatched to a worker."""
        with self._lock:
            return len(self._pending)

    def merged_worker_stats(self) -> List[Dict[str, int]]:
        """Per-cell PropagationCache counter deltas shipped back by workers."""
        with self._lock:
            return [dict(stats) for stats in self._worker_stats]

    def _wake(self) -> None:
        """Nudge the scheduler out of its connection.wait immediately."""
        try:
            self._wake_send.send(b"x")
        except (BrokenPipeError, OSError, AttributeError):
            pass

    # -------------------------------------------------------------- #
    # Scheduler
    # -------------------------------------------------------------- #
    def _scheduler_loop(self) -> None:
        """Dispatch pending cells to idle workers; collect results; enforce
        deadlines; recycle and respawn workers.  Runs until shutdown()."""
        while True:
            with self._lock:
                if self._stopping:
                    return
                self._dispatch_locked()
                busy = {
                    slot.connection: slot
                    for slot in self._slots
                    if slot is not None and slot.current is not None
                }
            ready = multiprocessing.connection.wait(
                [self._wake_recv, *busy], timeout=_POLL_INTERVAL
            )
            if self._wake_recv in ready:
                while self._wake_recv.poll():
                    self._wake_recv.recv()
            for connection in ready:
                slot = busy.get(connection)
                if slot is not None:
                    self._collect(slot)
            self._reap_timeouts()

    def _dispatch_locked(self) -> None:
        """Assign pending tasks to idle slots (caller holds the lock)."""
        for position, slot in enumerate(self._slots):
            if not self._pending:
                return
            if slot is None or slot.current is not None:
                continue
            task = self._pending.popleft()
            try:
                key = dataset_cache_key(task.spec)
            except Exception:  # noqa: BLE001 — bad overrides fail in-worker
                key = None
            graph = warm = None
            if key is not None and key not in slot.known_datasets:
                graph, warm = task.graph, task.warm_payload
                if graph is not None:
                    slot.known_datasets.add(key)
            now = time.perf_counter()
            task.started = now
            try:
                slot.connection.send(
                    (
                        "run",
                        task.task_id,
                        task.spec,
                        task.cell_index,
                        key,
                        graph,
                        warm,
                        self._effective_threshold(),
                        self._effective_kernel_backend(),
                    )
                )
            except (BrokenPipeError, OSError):
                # The worker died while idle; respawn the slot and put the
                # task back at the front of the queue.
                self.counters["crashes"] += 1
                self._slots[position] = self._respawn(slot)
                self._pending.appendleft(task)
                continue
            slot.current = task
            slot.deadline = None if task.timeout is None else now + task.timeout
            self.counters["dispatched"] += 1

    def _effective_threshold(self) -> Optional[int]:
        """The blocked threshold every worker should apply for this task.

        A concrete pool-level setting wins; otherwise the parent's current
        effective value is resolved at dispatch time, so long-lived workers
        track the parent instead of whatever an earlier job installed.
        """
        if self.blocked_threshold is not None:
            return self.blocked_threshold
        from repro.graph.blocked import blocked_threshold

        try:
            return blocked_threshold()
        except Exception:  # noqa: BLE001 — malformed env: let the worker raise
            return None

    def _effective_kernel_backend(self) -> Optional[str]:
        """The kernel backend every worker should dispatch through.

        Mirrors :meth:`_effective_threshold`: a concrete pool-level setting
        wins; otherwise the parent's current effective backend is resolved
        at dispatch time, so long-lived workers track the parent.
        """
        if self.kernel_backend is not None:
            return self.kernel_backend
        try:
            return kernel_backend_name()
        except Exception:  # noqa: BLE001 — malformed env: let the worker raise
            return None

    def _respawn(self, slot: _WorkerSlot) -> _WorkerSlot:
        """Replace a dead or retired worker with a fresh one."""
        self._stop_slot(slot)
        return self._spawn_slot()

    def _finish(self, slot_position: int, slot: _WorkerSlot, record: RunRecord) -> None:
        """Deliver one result and recycle the slot if it is due."""
        task = slot.current
        slot.current = None
        slot.deadline = None
        slot.cells_done += 1
        self.counters["completed"] += 1
        if not record.ok:
            self.counters["failed"] += 1
        if (
            self.recycle_after is not None
            and slot.cells_done >= self.recycle_after
            and slot.process.is_alive()
        ):
            self.counters["recycled"] += 1
            with self._lock:
                self._slots[slot_position] = self._respawn(slot)
        try:
            task.on_done(record)
        except Exception:  # noqa: BLE001 — a sink error must not kill the pool
            logger.exception("pool %s: on_done callback raised", self.name)

    def _collect(self, slot: _WorkerSlot) -> None:
        """Receive one worker's report (or its death) and deliver the record."""
        position = self._position_of(slot)
        task = slot.current
        if task is None:
            return
        try:
            kind, task_id, payload, stats = slot.connection.recv()
        except (EOFError, OSError):
            slot.process.join()
            self.counters["crashes"] += 1
            record = RunRecord.from_failure(
                task.spec,
                task.cell_index,
                {
                    "type": "WorkerCrash",
                    "message": (
                        "pool worker exited with code "
                        f"{slot.process.exitcode} before reporting a result"
                    ),
                    "traceback": "",
                },
                time.perf_counter() - task.started,
            )
            with self._lock:
                self._slots[position] = self._respawn(slot)
            slot.current = None
            self.counters["completed"] += 1
            self.counters["failed"] += 1
            try:
                task.on_done(record)
            except Exception:  # noqa: BLE001
                logger.exception("pool %s: on_done callback raised", self.name)
            return
        with self._lock:
            self._worker_stats.append(dict(stats))
        if kind == "ok":
            record = RunRecord.from_dict(payload)
        else:
            record = RunRecord.from_failure(
                task.spec, task.cell_index, payload, time.perf_counter() - task.started
            )
        self._finish(position, slot, record)

    def _reap_timeouts(self) -> None:
        """Terminate and respawn workers whose cell exceeded its deadline."""
        now = time.perf_counter()
        for position, slot in enumerate(list(self._slots)):
            if slot is None or slot.current is None or slot.deadline is None:
                continue
            if now <= slot.deadline:
                continue
            if slot.connection.poll():
                # Finished between the wait() and this check: take the result.
                self._collect(slot)
                continue
            task = slot.current
            self.counters["timeouts"] += 1
            record = RunRecord.from_failure(
                task.spec,
                task.cell_index,
                {
                    "type": "CellTimeout",
                    "message": (
                        f"cell exceeded the per-cell timeout of "
                        f"{task.timeout}s and was terminated"
                    ),
                    "traceback": "",
                },
                now - task.started,
            )
            slot.process.terminate()
            with self._lock:
                self._slots[position] = self._respawn(slot)
            slot.current = None
            self.counters["completed"] += 1
            self.counters["failed"] += 1
            try:
                task.on_done(record)
            except Exception:  # noqa: BLE001
                logger.exception("pool %s: on_done callback raised", self.name)

    def _position_of(self, slot: _WorkerSlot) -> int:
        """Index of ``slot`` in the slot table."""
        for position, candidate in enumerate(self._slots):
            if candidate is slot:
                return position
        raise RuntimeError("worker slot vanished from the pool")
