"""Content-addressed result store: completed cells memoised by spec hash.

Heavy repeated traffic re-evaluates the *same* condenser/attack/defense
cells endlessly — identical sweeps resubmitted, crashed sweeps restarted,
overlapping grids sharing most of their cells.  Because every cell's entire
result is a pure function of its :class:`~repro.api.spec.ExperimentSpec`
(the seed is part of the spec, and same-seed runs are bit-identical across
backends and worker counts), a completed :class:`~repro.api.runner.RunRecord`
can be keyed by :meth:`ExperimentSpec.cache_key()
<repro.api.spec.ExperimentSpec.cache_key>` — a sha256 over the canonical
JSON round-trip form — and served verbatim to any later cell with the same
key.  A memoised record *is* the record a fresh run would produce, down to
the condensed-graph fingerprints; only ``cell_index`` (the requesting grid
position) and wall-clock ``timings`` can differ.

Persistence is one append-only JSONL file, ``store.jsonl``, under a
configurable root (constructor argument, else the ``REPRO_RESULT_STORE``
environment variable, else in-memory only).  Each line is
``{"key": <sha256>, "record": <RunRecord.to_dict()>}``; on open the file is
replayed into an in-memory index (later lines win, so a rewritten cell
supersedes its earlier entry).  Only ``status == "ok"`` records are stored —
a failed cell must be recomputed, not replayed, when its sweep is
resubmitted.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.api.runner import RunRecord
from repro.api.spec import ExperimentSpec
from repro.utils.logging import get_logger

logger = get_logger("service.store")

#: Environment variable naming the default on-disk store root.
RESULT_STORE_ENV = "REPRO_RESULT_STORE"
#: File name of the append-only record log inside the store root.
STORE_FILENAME = "store.jsonl"


def default_store_root() -> Optional[str]:
    """The store root named by ``REPRO_RESULT_STORE``, or ``None`` (in-memory)."""
    root = os.environ.get(RESULT_STORE_ENV, "").strip()
    return root or None


class ResultStore:
    """Keyed, optionally persistent map from spec cache-key to RunRecord.

    ``root=None`` keeps the store in memory only (the default when the
    ``REPRO_RESULT_STORE`` environment variable is unset); a path makes it
    durable: every :meth:`put` appends one line to ``<root>/store.jsonl``
    and a fresh store opened on the same root replays the log, so a crashed
    or restarted service resumes with every previously completed cell
    already answered.  All methods are thread-safe — one store instance is
    shared by every job of a :class:`~repro.service.jobs.CondensationService`.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = default_store_root()
        self._root = Path(root) if root is not None else None
        self._lock = threading.Lock()
        self._index: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._handle = None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)
            path = self._root / STORE_FILENAME
            if path.exists():
                self._replay(path)
            # Line-buffered append handle: one put = one durable line.
            self._handle = open(path, "a", encoding="utf-8", buffering=1)

    @property
    def root(self) -> Optional[Path]:
        """The on-disk root, or ``None`` for an in-memory store."""
        return self._root

    def _replay(self, path: Path) -> None:
        """Load the append-only log; later lines supersede earlier ones.

        A torn final line (a crash mid-append) is skipped rather than
        poisoning the whole store.
        """
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    self._index[entry["key"]] = entry["record"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    logger.warning(
                        "result store %s: skipping malformed line %d",
                        path,
                        line_number + 1,
                    )

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, spec_or_key) -> bool:
        with self._lock:
            return self._key_of(spec_or_key) in self._index

    @staticmethod
    def _key_of(spec_or_key) -> str:
        """Accept either an ExperimentSpec or an already-computed key."""
        if isinstance(spec_or_key, ExperimentSpec):
            return spec_or_key.cache_key()
        return str(spec_or_key)

    def get(
        self, spec: ExperimentSpec, *, cell_index: int | None = None
    ) -> Optional[RunRecord]:
        """The stored record for ``spec``, or ``None`` (counted as a miss).

        The returned record is rebuilt from the stored payload with
        ``cell_index`` rewritten to the requesting grid position, so a cell
        computed at index 3 of one sweep can answer index 0 of another; every
        other field — metrics, fingerprints, timings — is served verbatim.
        """
        key = self._key_of(spec)
        with self._lock:
            payload = self._index.get(key)
            if payload is None:
                self.misses += 1
                return None
            self.hits += 1
        record = RunRecord.from_dict(payload)
        if cell_index is not None:
            record.cell_index = cell_index
        return record

    def put(self, record: RunRecord) -> bool:
        """Store a completed record under its spec's cache key.

        Failed records are refused (returns ``False``): memoising a failure
        would make a resubmitted sweep replay the failure instead of
        recomputing the cell.  Re-putting an existing key overwrites it
        (the records are bit-identical by construction, so this only
        refreshes timings).
        """
        if not record.ok:
            return False
        key = record.spec.cache_key()
        payload = record.to_dict()
        with self._lock:
            self._index[key] = payload
            self.puts += 1
            if self._handle is not None:
                self._handle.write(
                    json.dumps({"key": key, "record": payload}) + "\n"
                )
        return True

    def keys(self) -> Iterator[str]:
        """Snapshot of the stored cache keys."""
        with self._lock:
            return iter(list(self._index))

    def stats(self) -> Dict[str, int]:
        """Counters: stored entries plus hit/miss/put totals since open."""
        with self._lock:
            return {
                "entries": len(self._index),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
            }

    def close(self) -> None:
        """Flush and close the append handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
