"""Condensation-as-a-service: persistent workers, async jobs, result store.

The service layer turns the one-shot sweep executor into a long-running
system for heavy repeated traffic::

    queue  -->  pool  -->  store
    submit      run         memoise

:class:`~repro.service.jobs.CondensationService` accepts
:class:`~repro.api.spec.ExperimentSpec` / :class:`~repro.api.spec.SweepSpec`
submissions on a bounded queue and hands back
:class:`~repro.service.jobs.JobHandle`\\ s; cells execute on a
:class:`~repro.service.pool.WorkerPool` of long-lived worker processes
(reused across cells *and* jobs); completed cells are memoised in a
content-addressed :class:`~repro.service.store.ResultStore`, so resubmitted
or crashed sweeps skip everything already computed.  Every layer preserves
the determinism invariant: a pooled or memoised record is bit-identical
(fingerprint-equal) to the record a serial run would produce.

The ``repro serve`` / ``repro submit`` / ``repro jobs`` CLI verbs in
:mod:`repro.cli` are thin shells over :mod:`repro.service.server`, which
wraps a :class:`CondensationService` in a line-delimited-JSON unix-socket
protocol.
"""

from repro.service.jobs import CondensationService, JobHandle, JobStatus
from repro.service.pool import WorkerPool
from repro.service.store import ResultStore, default_store_root

__all__ = [
    "CondensationService",
    "JobHandle",
    "JobStatus",
    "WorkerPool",
    "ResultStore",
    "default_store_root",
]
