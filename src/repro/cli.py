"""Command-line interface for the BGC reproduction.

The CLI is a thin shell over the declarative API (:mod:`repro.api`): every
subcommand builds an :class:`~repro.api.spec.ExperimentSpec` (or
:class:`~repro.api.spec.SweepSpec`) and hands it to
:func:`~repro.api.runner.run_experiment` / :func:`~repro.api.runner.run_sweep`.

Spec-driven workflows::

    python -m repro.cli run   --spec spec.json
    python -m repro.cli sweep --spec sweep.json --out results.jsonl
    python -m repro.cli sweep --spec sweep.json --workers 4 --on-error record
    python -m repro.cli transfer --dataset tiny --matrix-out matrix.json

Service workflows (persistent worker pool + content-addressed result store,
see :mod:`repro.service`)::

    python -m repro.cli serve  --socket /tmp/repro.sock --workers 4 --store runs/store
    python -m repro.cli submit --socket /tmp/repro.sock --spec sweep.json --out out.jsonl
    python -m repro.cli jobs   --socket /tmp/repro.sock

``sweep`` executes serially by default; ``--workers N`` (N > 1) switches to
the process-pool backend — bit-identical results, cells fanned out over N
worker processes with shard-aware propagation-cache handoff.  ``--out``
streams one ``RunRecord`` JSON object per line in canonical grid order
whatever the backend, so for successful cells serial and parallel runs of
the same spec produce lines that differ only in their ``timings`` (a failed
cell's ``error`` traceback additionally carries backend-specific frames).

Legacy workflows (compatibility wrappers that construct specs internally)::

    python -m repro.cli datasets                      # list datasets + statistics
    python -m repro.cli condense --dataset cora --method gcond --ratio 0.026
    python -m repro.cli attack   --dataset cora --method gcond --ratio 0.026 \
        --poison-ratio 0.1 --epochs 20

``attack`` runs the full threat model (clean baseline + BGC) and prints a
Table-II-style row; ``condense`` runs a clean condensation and reports the
downstream accuracy only.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, TextIO

from repro.api import (
    ExecutionSpec,
    ExperimentSpec,
    RunRecord,
    SweepSpec,
    TransferSweepSpec,
    run_experiment,
    run_sweep,
)
from repro.api.spec import EXECUTION_BACKENDS, ON_ERROR_MODES
from repro.datasets import list_datasets, statistics_table
from repro.exceptions import ConfigurationError, GraphValidationError
from repro.graph.blocked import blocked_threshold
from repro.kernels import available_kernel_backends, kernel_backend_name
from repro.registry import ATTACKS, CONDENSERS
from repro.evaluation.reporting import (
    format_percent,
    format_table,
    format_transfer_matrix,
    sweep_summary_line,
    transfer_matrix,
)
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Backdoor Graph Condensation (BGC) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the available datasets and their statistics")

    run = subparsers.add_parser("run", help="run one experiment described by a JSON spec")
    run.add_argument("--spec", required=True, help="path to an ExperimentSpec JSON file ('-' for stdin)")
    run.add_argument("--json", action="store_true", help="print the RunRecord as JSON instead of a table")
    run.add_argument("--verbose", action="store_true", help="enable console logging")

    sweep = subparsers.add_parser("sweep", help="run a cartesian grid described by a JSON sweep spec")
    sweep.add_argument("--spec", required=True, help="path to a SweepSpec JSON file ('-' for stdin)")
    sweep.add_argument("--out", default=None,
                       help="write one RunRecord JSON object per line (canonical grid order) to this file")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker-process count; a value > 1 switches the backend to "
                            "'process' unless --backend serial is given explicitly")
    sweep.add_argument("--backend", choices=EXECUTION_BACKENDS, default=None,
                       help="execution backend (overrides the spec's execution block)")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       help="per-cell timeout in seconds (enforced by the process backend)")
    sweep.add_argument("--on-error", choices=ON_ERROR_MODES, default=None,
                       help="'record' turns a failing cell into a failed RunRecord and keeps "
                            "going (exit code 1 if any cell failed); 'raise' aborts the sweep")
    sweep.add_argument("--verbose", action="store_true", help="enable console logging")

    transfer = subparsers.add_parser(
        "transfer",
        help="run a transferability matrix: condense under one surrogate, "
             "evaluate across models x defenses",
    )
    transfer.add_argument("--spec", default=None,
                          help="path to a TransferSweepSpec JSON file ('-' for stdin); "
                               "omitted = build one from the flags below")
    transfer.add_argument("--dataset", default="tiny",
                          help="dataset of the quick form (default tiny; ignored with --spec)")
    transfer.add_argument("--condenser", default="gcond", choices=CONDENSERS.known(),
                          help="surrogate condenser of the quick form (default gcond)")
    transfer.add_argument("--attack", default="naive", choices=ATTACKS.known(),
                          help="attack of the quick form (default naive)")
    transfer.add_argument("--epochs", type=int, default=3,
                          help="condensation epochs of the quick form (default 3)")
    transfer.add_argument("--eval-epochs", type=int, default=30,
                          help="downstream training epochs of the quick form (default 30)")
    transfer.add_argument("--seed", type=int, default=0, help="transfer-sweep seed")
    transfer.add_argument("--models", default=None,
                          help="comma-separated victim architectures "
                               "(default: every registered model)")
    transfer.add_argument("--defenses", default=None,
                          help="comma-separated defenses; 'none' is the undefended "
                               "column (default: none + every registered defense)")
    transfer.add_argument("--out", default=None,
                          help="write one RunRecord JSON object per line "
                               "(canonical grid order) to this file")
    transfer.add_argument("--matrix-out", default=None,
                          help="write the model x defense CTA/ASR matrix as JSON to this file")
    transfer.add_argument("--json", action="store_true",
                          help="print the matrix as JSON instead of a markdown table")
    transfer.add_argument("--workers", type=int, default=None,
                          help="worker-process count; a value > 1 switches the backend to "
                               "'process' unless --backend serial is given explicitly")
    transfer.add_argument("--backend", choices=EXECUTION_BACKENDS, default=None,
                          help="execution backend (overrides the spec's execution block)")
    transfer.add_argument("--cell-timeout", type=float, default=None,
                          help="per-cell timeout in seconds (enforced by the process backend)")
    transfer.add_argument("--on-error", choices=ON_ERROR_MODES, default=None,
                          help="'record' keeps going past failing cells; 'raise' aborts")
    transfer.add_argument("--verbose", action="store_true", help="enable console logging")

    serve = subparsers.add_parser(
        "serve", help="run the condensation service (worker pool + result store) on a unix socket"
    )
    serve.add_argument("--socket", required=True, help="unix socket path to listen on")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent worker processes (default 2)")
    serve.add_argument("--store", default=None,
                       help="result-store root directory (default: $REPRO_RESULT_STORE, "
                            "else in-memory only)")
    serve.add_argument("--max-pending", type=int, default=8,
                       help="bound on queued jobs before submissions are rejected (default 8)")
    serve.add_argument("--recycle-after", type=int, default=64,
                       help="cells a worker runs before it is recycled (default 64)")
    serve.add_argument("--cell-timeout", type=float, default=None,
                       help="per-cell timeout in seconds")
    serve.add_argument("--verbose", action="store_true", help="enable console logging")

    submit = subparsers.add_parser(
        "submit", help="submit a sweep spec to a running service and stream its records"
    )
    submit.add_argument("--socket", required=True, help="unix socket of a running `repro serve`")
    submit.add_argument("--spec", required=True,
                        help="path to a SweepSpec JSON file ('-' for stdin)")
    submit.add_argument("--out", default=None,
                        help="write one RunRecord JSON object per line (canonical grid order) "
                             "to this file")
    submit.add_argument("--json", action="store_true",
                        help="print the job summary as JSON instead of a table")
    submit.add_argument("--no-wait", action="store_true",
                        help="queue the job and print its id without waiting for records")
    submit.add_argument("--verbose", action="store_true", help="enable console logging")

    jobs = subparsers.add_parser("jobs", help="list the jobs of a running service")
    jobs.add_argument("--socket", required=True, help="unix socket of a running `repro serve`")
    jobs.add_argument("--json", action="store_true", help="print summaries as JSON")

    condense = subparsers.add_parser("condense", help="run a clean graph condensation")
    _add_common_arguments(condense)

    attack = subparsers.add_parser("attack", help="run the BGC attack and report CTA/ASR")
    _add_common_arguments(attack)
    attack.add_argument("--poison-ratio", type=float, default=0.1,
                        help="poisoned fraction of the training set (default 0.1)")
    attack.add_argument("--poison-number", type=int, default=None,
                        help="absolute poison budget (overrides --poison-ratio)")
    attack.add_argument("--target-class", type=int, default=0, help="attack target class")
    attack.add_argument("--trigger-size", type=int, default=4, help="trigger subgraph size")
    attack.add_argument("--random-selection", action="store_true",
                        help="use random instead of representative node selection")
    return parser


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora", choices=sorted(list_datasets()))
    # known() includes alias spellings (gcondx, dcgraph, gcsntk) so historical
    # invocations keep parsing; build() resolves them to the canonical entry.
    parser.add_argument("--method", default="gcond", choices=CONDENSERS.known())
    parser.add_argument("--ratio", type=float, default=0.026, help="condensation ratio")
    parser.add_argument("--epochs", type=int, default=20, help="condensation / attack epochs")
    parser.add_argument("--eval-epochs", type=int, default=150, help="downstream training epochs")
    parser.add_argument("--architecture", default="gcn", help="downstream GNN architecture")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--verbose", action="store_true", help="enable console logging")


# ------------------------------------------------------------------ #
# Spec construction (the single source of truth for legacy defaults)
# ------------------------------------------------------------------ #
def spec_from_legacy_args(args: argparse.Namespace, *, with_attack: bool) -> ExperimentSpec:
    """Build the ExperimentSpec equivalent of a legacy CLI invocation.

    Both ``condense`` and ``attack`` route through here, so condensation and
    evaluation defaults can never drift between the two subcommands again.
    """
    payload: Dict[str, Any] = {
        "dataset": {"name": args.dataset, "overrides": {"seed": args.seed}},
        "model": args.architecture,
        "condenser": {
            "name": args.method,
            "overrides": {"epochs": args.epochs, "ratio": args.ratio},
        },
        "evaluation": {"overrides": {"epochs": args.eval_epochs}},
        "seed": args.seed,
    }
    if with_attack:
        attack_overrides: Dict[str, Any] = {
            "target_class": args.target_class,
            "epochs": args.epochs,
            "use_random_selection": args.random_selection,
        }
        if args.poison_number is not None:
            attack_overrides["poison_number"] = args.poison_number
            attack_overrides["poison_ratio"] = None
        else:
            attack_overrides["poison_ratio"] = args.poison_ratio
        payload["attack"] = {"name": "bgc", "overrides": attack_overrides}
        payload["trigger"] = {"overrides": {"trigger_size": args.trigger_size}}
    return ExperimentSpec.from_dict(payload)


def _load_payload(path: str) -> Dict[str, Any]:
    if path == "-":
        return json.load(sys.stdin)
    return json.loads(Path(path).read_text())


# ------------------------------------------------------------------ #
# Subcommands
# ------------------------------------------------------------------ #
def run_datasets_command() -> int:
    rows = []
    for row in statistics_table(seed=0):
        rows.append(
            {
                "dataset": row["name"],
                "nodes": int(row["nodes"]),
                # The published size of the real graph this stand-in emulates
                # ("-" for the graphs generated at full size); `nodes` is
                # always the size actually generated.
                "reference": (
                    int(row["reference_nodes"]) if "reference_nodes" in row else "-"
                ),
                "edges": int(row["edges"]),
                "classes": int(row["classes"]),
                "features": int(row["features"]),
                "train/val/test": f"{int(row['train'])}/{int(row['val'])}/{int(row['test'])}",
                "homophily": round(float(row["homophily"]), 3),
            }
        )
    print(format_table(_align_rows(rows)))
    return 0


def _record_row(record: RunRecord) -> Dict[str, Any]:
    """Table-II-style row for one RunRecord (failed cells show their error)."""
    spec = record.spec
    row: Dict[str, Any] = {
        "dataset": spec.dataset.name,
        "method": spec.condenser.name,
        "ratio": spec.condenser.overrides.get("ratio", ""),
    }
    if not record.ok:
        error = record.error or {}
        row["status"] = f"failed: {error.get('type', 'Exception')}"
        return row
    if spec.attack.is_set:
        row.update(
            {
                "C-CTA %": format_percent(record.clean_cta),
                "CTA %": format_percent(record.attack_cta),
                "C-ASR %": format_percent(record.clean_asr),
                "ASR %": format_percent(record.attack_asr),
                "poisoned nodes": record.poisoned_nodes,
            }
        )
    else:
        row.update(
            {
                "condensed nodes": record.condensed_nodes,
                "C-CTA %": format_percent(record.clean_cta),
            }
        )
    if spec.defense.is_set:
        row["defense"] = spec.defense.name
        row["D-CTA %"] = format_percent(record.defense_cta)
        if spec.attack.is_set:
            row["D-ASR %"] = format_percent(record.defense_asr)
    return row


def run_run_command(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_dict(_load_payload(args.spec))
    record = run_experiment(spec)
    if args.json:
        print(json.dumps(record.to_dict()))
    else:
        print(format_table([_record_row(record)]))
    return 0


def execution_from_args(args: argparse.Namespace, base: ExecutionSpec) -> ExecutionSpec:
    """Overlay the sweep CLI flags onto the spec's own execution block.

    ``--workers N`` with N > 1 implies the process backend (the spec stays
    serial only when ``--backend serial`` is passed explicitly); every other
    flag overrides its field alone.
    """
    execution = base
    if args.workers is not None:
        backend = args.backend or (
            "process" if args.workers > 1 else execution.backend
        )
        execution = replace(execution, workers=args.workers, backend=backend)
    elif args.backend is not None:
        execution = replace(execution, backend=args.backend)
    if args.cell_timeout is not None:
        execution = replace(execution, timeout=args.cell_timeout)
    if args.on_error is not None:
        execution = replace(execution, on_error=args.on_error)
    return execution


class _OrderedJsonlSink:
    """Stream RunRecords to a JSONL file in canonical grid order.

    The process backend completes cells out of order; this reorder buffer
    flushes a record only once every lower grid index has been written, so
    serial and parallel runs of the same sweep produce byte-comparable files
    (modulo the wall-clock ``timings``).
    """

    def __init__(self, handle: TextIO) -> None:
        self._handle = handle
        self._buffered: Dict[int, str] = {}
        self._next_index = 0

    def __call__(self, record: RunRecord) -> None:
        index = record.cell_index if record.cell_index is not None else self._next_index
        self._buffered[index] = json.dumps(record.to_dict())
        while self._next_index in self._buffered:
            self._handle.write(self._buffered.pop(self._next_index) + "\n")
            self._handle.flush()
            self._next_index += 1

    def flush_remaining(self) -> None:
        """Write any still-buffered records, ascending by grid index.

        Called when the sweep aborts (``on_error="raise"``) before a
        lower-indexed cell completed: records that *did* complete must reach
        the file — with index gaps — rather than be dropped with the buffer.
        """
        for index in sorted(self._buffered):
            self._handle.write(self._buffered.pop(index) + "\n")
        self._handle.flush()


def run_sweep_command(args: argparse.Namespace) -> int:
    sweep = SweepSpec.from_dict(_load_payload(args.spec))
    execution = execution_from_args(args, sweep.execution)
    sink = open(args.out, "w") if args.out else None
    on_record = _OrderedJsonlSink(sink) if sink is not None else None
    try:
        records = run_sweep(sweep, on_record=on_record, execution=execution)
    finally:
        if sink is not None:
            on_record.flush_remaining()
            sink.close()
    print(format_table(_align_rows([_record_row(record) for record in records])))
    print(
        sweep_summary_line(
            len(records),
            len(records.failed),
            execution.backend,
            execution.workers,
            records.cache_stats,
        )
    )
    return 1 if records.failed else 0


def _align_rows(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Give every row the union of all columns (first-appearance order).

    Grids mixing clean and attacked cells produce rows with different keys;
    ``format_table`` renders the first row's columns, so without alignment
    the attack metrics of later cells would silently vanish.
    """
    columns: Dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key, None)
    return [{key: row.get(key, "") for key in columns} for row in rows]


def _split_axis_flag(raw: str | None) -> List[Any] | None:
    """Parse a comma-separated axis flag; ``"none"`` means the undefended cell."""
    if raw is None:
        return None
    values: List[Any] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        values.append(None if token.lower() == "none" else token)
    if not values:
        raise ConfigurationError(f"axis flag {raw!r} names no components")
    return values


def transfer_spec_from_args(args: argparse.Namespace) -> TransferSweepSpec:
    """Build the TransferSweepSpec a ``repro transfer`` invocation describes."""
    if args.spec is not None:
        spec = TransferSweepSpec.from_dict(_load_payload(args.spec))
    else:
        base = ExperimentSpec.from_dict(
            {
                "dataset": args.dataset,
                "condenser": {"name": args.condenser, "overrides": {"epochs": args.epochs}},
                "attack": args.attack,
                "evaluation": {"overrides": {"epochs": args.eval_epochs}},
            }
        )
        spec = TransferSweepSpec(base=base, seed=args.seed)
    models = _split_axis_flag(args.models)
    defenses = _split_axis_flag(args.defenses)
    if models is not None:
        spec = replace(spec, models=models)
    if defenses is not None:
        spec = replace(spec, defenses=defenses)
    return spec


def run_transfer_command(args: argparse.Namespace) -> int:
    """Run the model × defense transferability matrix and print/emit it."""
    transfer = transfer_spec_from_args(args)
    sweep = transfer.to_sweep()
    execution = execution_from_args(args, sweep.execution)
    sink = open(args.out, "w") if args.out else None
    on_record = _OrderedJsonlSink(sink) if sink is not None else None
    try:
        records = run_sweep(sweep, on_record=on_record, execution=execution)
    finally:
        if sink is not None:
            on_record.flush_remaining()
            sink.close()
    matrix = transfer_matrix(records)
    if args.matrix_out:
        Path(args.matrix_out).write_text(json.dumps(matrix, indent=2) + "\n")
    if args.json:
        print(json.dumps(matrix))
    else:
        print(format_transfer_matrix(matrix))
        print(
            sweep_summary_line(
                len(records),
                len(records.failed),
                execution.backend,
                execution.workers,
                records.cache_stats,
            )
        )
    return 1 if records.failed else 0


def run_condense_command(args: argparse.Namespace) -> int:
    spec = spec_from_legacy_args(args, with_attack=False)
    record = run_experiment(spec)
    print(format_table([_record_row(record)]))
    return 0


def run_attack_command(args: argparse.Namespace) -> int:
    spec = spec_from_legacy_args(args, with_attack=True)
    record = run_experiment(spec)
    print(format_table([_record_row(record)]))
    return 0


def run_serve_command(args: argparse.Namespace) -> int:
    """Start the condensation service and serve the unix-socket protocol.

    Blocks until a client sends ``{"op": "shutdown"}`` or the process
    receives SIGINT; either way the worker pool and the result store are
    shut down cleanly before returning.
    """
    from repro.service import CondensationService, ResultStore
    from repro.service.server import ServiceServer

    service = CondensationService(
        args.workers,
        store=ResultStore(args.store),
        max_pending=args.max_pending,
        recycle_after=args.recycle_after,
        timeout=args.cell_timeout,
    )
    service.start()
    server = ServiceServer(args.socket, service)
    store_root = service.store.root
    print(
        f"repro service: {args.workers} workers, "
        f"store={'in-memory' if store_root is None else store_root}, "
        f"listening on {args.socket}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    return 0


def run_submit_command(args: argparse.Namespace) -> int:
    """Submit a sweep to a running service; stream, reorder, and report.

    Records stream back in completion order and pass through the same
    :class:`_OrderedJsonlSink` reorder buffer as the in-process ``sweep``
    command, so ``--out`` files are byte-comparable with serial runs of the
    same spec (modulo ``timings``).  Exit code 1 when any cell failed.
    """
    from repro.service.server import request, submit_and_stream

    payload = _load_payload(args.spec)
    if args.no_wait:
        response = request(
            args.socket, {"op": "submit", "sweep": payload, "wait": False, "block": True}
        )
        job = response["job"]
        if args.json:
            print(json.dumps(job))
        else:
            print(f"queued {job['job_id']} ({job['name']})")
        return 0
    sink = open(args.out, "w") if args.out else None
    on_record = _OrderedJsonlSink(sink) if sink is not None else None
    records: List[RunRecord] = []
    summary: Dict[str, Any] | None = None
    try:
        for event in submit_and_stream(args.socket, payload):
            if event.get("event") == "record":
                record = RunRecord.from_dict(event["record"])
                records.append(record)
                if on_record is not None:
                    on_record(record)
            elif event.get("event") == "done":
                summary = event["job"]
    finally:
        if sink is not None:
            on_record.flush_remaining()
            sink.close()
    records.sort(key=lambda record: record.cell_index)
    if args.json:
        print(json.dumps(summary))
    else:
        print(format_table(_align_rows([_record_row(record) for record in records])))
        if summary is not None:
            print(
                f"{summary['completed']} cells | {summary['failed']} failed | "
                f"{summary['store_hits']} served from store | "
                f"job {summary['job_id']} {summary['status']}"
            )
    return 1 if summary is None or summary["failed"] else 0


def run_jobs_command(args: argparse.Namespace) -> int:
    """List every job the running service has seen."""
    from repro.service.server import request

    jobs = request(args.socket, {"op": "jobs"})["jobs"]
    if args.json:
        print(json.dumps(jobs))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    rows = [
        {key: ("" if value is None else value) for key, value in job.items()}
        for job in jobs
    ]
    print(format_table(_align_rows(rows)))
    return 0


def _validate_blocked_environment() -> str | None:
    """Eagerly resolve the blocked-propagation knobs; return an error message.

    A malformed ``REPRO_BLOCKED_THRESHOLD`` used to surface as a
    ``GraphValidationError`` traceback out of the first chain build — deep
    inside a run, after dataset generation already happened.  Checking it
    before dispatch turns that into one actionable line.
    """
    try:
        blocked_threshold()
    except GraphValidationError as error:
        return (
            f"error: {error}\n"
            "hint: REPRO_BLOCKED_THRESHOLD selects the element count above "
            "which hop chains go out of core — set it to a non-negative "
            "integer (e.g. 16777216), to 0 to force the blocked engine, or "
            "unset it to use the default."
        )
    return None


def _validate_kernel_environment() -> str | None:
    """Eagerly resolve ``REPRO_KERNEL_BACKEND``; return an error message.

    Same rationale as :func:`_validate_blocked_environment`: an unknown
    backend name would otherwise surface as a ``ConfigurationError``
    traceback out of the first dispatched primitive, deep inside a run.
    """
    try:
        kernel_backend_name()
    except ConfigurationError as error:
        return (
            f"error: {error}\n"
            "hint: REPRO_KERNEL_BACKEND selects the numerical kernel backend "
            "every primitive dispatches through — set it to one of "
            f"{', '.join(available_kernel_backends())}, or unset it to use "
            "the numpy reference."
        )
    return None


def main(argv: List[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "verbose", False):
        enable_console_logging()
    environment_error = (
        _validate_blocked_environment() or _validate_kernel_environment()
    )
    if environment_error is not None:
        print(environment_error, file=sys.stderr)
        return 2
    if args.command == "datasets":
        return run_datasets_command()
    if args.command == "run":
        return run_run_command(args)
    if args.command == "sweep":
        return run_sweep_command(args)
    if args.command == "transfer":
        return run_transfer_command(args)
    if args.command == "serve":
        return run_serve_command(args)
    if args.command in ("submit", "jobs"):
        runner = run_submit_command if args.command == "submit" else run_jobs_command
        try:
            return runner(args)
        except (ConnectionError, RuntimeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "condense":
        return run_condense_command(args)
    if args.command == "attack":
        return run_attack_command(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
