"""Command-line interface for the BGC reproduction.

Three subcommands cover the common workflows::

    python -m repro.cli datasets                      # list datasets + statistics
    python -m repro.cli condense --dataset cora --method gcond --ratio 0.026
    python -m repro.cli attack   --dataset cora --method gcond --ratio 0.026 \
        --poison-ratio 0.1 --epochs 20

``attack`` runs the full threat model (clean baseline + BGC) and prints a
Table-II-style row; ``condense`` runs a clean condensation and reports the
downstream accuracy only.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    BGC,
    BGCConfig,
    CondensationConfig,
    EvaluationConfig,
    load_dataset,
    list_datasets,
    make_condenser,
    available_condensers,
)
from repro.attack.trigger import TriggerConfig
from repro.datasets import statistics_table
from repro.evaluation.pipeline import (
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.evaluation.reporting import format_percent, format_table
from repro.utils import new_rng
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Backdoor Graph Condensation (BGC) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the available datasets and their statistics")

    condense = subparsers.add_parser("condense", help="run a clean graph condensation")
    _add_common_arguments(condense)

    attack = subparsers.add_parser("attack", help="run the BGC attack and report CTA/ASR")
    _add_common_arguments(attack)
    attack.add_argument("--poison-ratio", type=float, default=0.1,
                        help="poisoned fraction of the training set (default 0.1)")
    attack.add_argument("--poison-number", type=int, default=None,
                        help="absolute poison budget (overrides --poison-ratio)")
    attack.add_argument("--target-class", type=int, default=0, help="attack target class")
    attack.add_argument("--trigger-size", type=int, default=4, help="trigger subgraph size")
    attack.add_argument("--random-selection", action="store_true",
                        help="use random instead of representative node selection")
    return parser


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora", choices=sorted(list_datasets()))
    parser.add_argument("--method", default="gcond", choices=available_condensers())
    parser.add_argument("--ratio", type=float, default=0.026, help="condensation ratio")
    parser.add_argument("--epochs", type=int, default=20, help="condensation / attack epochs")
    parser.add_argument("--eval-epochs", type=int, default=150, help="downstream training epochs")
    parser.add_argument("--architecture", default="gcn", help="downstream GNN architecture")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--verbose", action="store_true", help="enable console logging")


def run_datasets_command() -> int:
    rows = []
    for row in statistics_table(seed=0):
        rows.append(
            {
                "dataset": row["name"],
                "nodes": int(row["nodes"]),
                "edges": int(row["edges"]),
                "classes": int(row["classes"]),
                "features": int(row["features"]),
                "train/val/test": f"{int(row['train'])}/{int(row['val'])}/{int(row['test'])}",
                "homophily": round(float(row["homophily"]), 3),
            }
        )
    print(format_table(rows))
    return 0


def run_condense_command(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    condenser = make_condenser(args.method, CondensationConfig(epochs=args.epochs, ratio=args.ratio))
    condensed = condenser.condense(graph, new_rng(args.seed))
    evaluation = EvaluationConfig(architecture=args.architecture, epochs=args.eval_epochs)
    model = train_model_on_condensed(condensed, graph, evaluation, new_rng(args.seed + 1))
    cta = evaluate_clean(model, graph)
    print(
        format_table(
            [
                {
                    "dataset": args.dataset,
                    "method": args.method,
                    "ratio": args.ratio,
                    "condensed nodes": condensed.num_nodes,
                    "C-CTA %": format_percent(cta),
                }
            ]
        )
    )
    return 0


def run_attack_command(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    condensation = CondensationConfig(epochs=args.epochs, ratio=args.ratio)
    evaluation = EvaluationConfig(architecture=args.architecture, epochs=args.eval_epochs)

    attack = BGC(
        BGCConfig(
            target_class=args.target_class,
            poison_ratio=None if args.poison_number is not None else args.poison_ratio,
            poison_number=args.poison_number,
            epochs=args.epochs,
            use_random_selection=args.random_selection,
            trigger=TriggerConfig(trigger_size=args.trigger_size),
        )
    )
    result = attack.run(graph, make_condenser(args.method, condensation), new_rng(args.seed))
    victim = train_model_on_condensed(result.condensed, graph, evaluation, new_rng(args.seed + 1))

    clean_condensed = make_condenser(args.method, condensation).condense(graph, new_rng(args.seed + 2))
    clean_model = train_model_on_condensed(clean_condensed, graph, evaluation, new_rng(args.seed + 3))

    print(
        format_table(
            [
                {
                    "dataset": args.dataset,
                    "method": args.method,
                    "ratio": args.ratio,
                    "C-CTA %": format_percent(evaluate_clean(clean_model, graph)),
                    "CTA %": format_percent(evaluate_clean(victim, graph)),
                    "C-ASR %": format_percent(
                        evaluate_backdoor(clean_model, graph, result.generator, result.target_class)
                    ),
                    "ASR %": format_percent(
                        evaluate_backdoor(victim, graph, result.generator, result.target_class)
                    ),
                    "poisoned nodes": int(result.poisoned_nodes.size),
                }
            ]
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "verbose", False):
        enable_console_logging()
    if args.command == "datasets":
        return run_datasets_command()
    if args.command == "condense":
        return run_condense_command(args)
    if args.command == "attack":
        return run_attack_command(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
