"""Gradient-matching graph condensation (DC / GCond family).

The condensed graph is optimised so that the gradient of a surrogate SGC
model's training loss on the *synthetic* graph matches the gradient on the
*original* (possibly poisoned) graph, class by class (Eq. 6 of the paper).

Because the surrogate is linear in its weight matrix ``W``, the parameter
gradient has the closed form ``H^T (softmax(H W) - Y) / n`` with ``H`` the
propagated features.  The synthetic-side gradient is therefore expressed as a
*forward* computation in the autograd engine, and a single backward pass
yields the gradient of the matching loss w.r.t. the synthetic features (and
the structure generator), avoiding any double-backward machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.autograd import Adam, Linear, Module, Parameter, Tensor
from repro.autograd import functional as F
from repro.condensation.base import (
    CondensationConfig,
    CondensedGraph,
    Condenser,
)
from repro.exceptions import CondensationError
from repro.graph.cache import PropagationCache, get_default_cache
from repro.graph.data import GraphData
from repro.utils.logging import get_logger

logger = get_logger("condensation.gradient_matching")


# --------------------------------------------------------------------- #
# Numpy-side helpers (real-graph gradients are constants w.r.t. S)
# --------------------------------------------------------------------- #
def per_class_model_gradient(
    propagated: np.ndarray,
    labels: np.ndarray,
    weight: np.ndarray,
    index: np.ndarray,
    num_classes: int,
) -> np.ndarray:
    """Closed-form gradient of the CE loss of a linear model w.r.t. ``weight``.

    Parameters
    ----------
    propagated:
        ``(N, d)`` propagated feature matrix ``H``.
    labels:
        ``(N,)`` integer labels.
    weight:
        ``(d, C)`` current surrogate weight.
    index:
        Node subset over which the loss is computed.
    num_classes:
        Total number of classes ``C``.
    """
    index = np.asarray(index, dtype=np.int64)
    if index.size == 0:
        return np.zeros_like(weight)
    h = propagated[index]
    logits = h @ weight
    logits = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    probs = exp / exp.sum(axis=1, keepdims=True)
    targets = np.zeros_like(probs)
    targets[np.arange(index.size), labels[index]] = 1.0
    return h.T @ (probs - targets) / index.size


def all_class_model_gradients(
    propagated: np.ndarray,
    labels: np.ndarray,
    weight: np.ndarray,
    index: np.ndarray,
    num_classes: int,
) -> Dict[int, np.ndarray]:
    """Vectorised counterpart of :func:`per_class_model_gradient` for all classes.

    The softmax residual ``softmax(HW) - Y`` is computed in a single pass
    over every node in ``index``; the per-class gradients are then derived
    with masked segment-sums (one contiguous slice per class after a stable
    sort by label) instead of ``C`` separate logits/softmax passes.  Rows are
    processed in the same relative order as the per-class routine, so the
    results agree to floating-point round-off.

    Returns a mapping ``class -> (d, C)`` gradient covering exactly the
    classes present in ``labels[index]``.
    """
    index = np.asarray(index, dtype=np.int64)
    if index.size == 0:
        return {}
    from repro.graph.blocked import BlockedArray

    if isinstance(propagated, BlockedArray):
        return _blocked_all_class_model_gradients(
            propagated, labels, weight, index, num_classes
        )
    h = propagated[index]
    logits = h @ weight
    logits -= logits.max(axis=1, keepdims=True)
    np.exp(logits, out=logits)
    residual = logits
    residual /= residual.sum(axis=1, keepdims=True)
    index_labels = labels[index]
    residual[np.arange(index.size), index_labels] -= 1.0

    # Stable sort keeps each class's rows in their original relative order,
    # making every per-class slice bit-identical to the scalar routine.
    order = np.argsort(index_labels, kind="stable")
    sorted_labels = index_labels[order]
    h_sorted = h[order]
    residual_sorted = residual[order]
    boundaries = np.searchsorted(sorted_labels, np.arange(num_classes + 1))
    gradients: Dict[int, np.ndarray] = {}
    for cls in range(num_classes):
        start, stop = boundaries[cls], boundaries[cls + 1]
        if start == stop:
            continue
        gradients[cls] = (
            h_sorted[start:stop].T @ residual_sorted[start:stop] / (stop - start)
        )
    return gradients


def _blocked_all_class_model_gradients(
    propagated,
    labels: np.ndarray,
    weight: np.ndarray,
    index: np.ndarray,
    num_classes: int,
) -> Dict[int, np.ndarray]:
    """:func:`all_class_model_gradients` over a blocked hop product.

    Never gathers the full ``(len(index), d)`` row matrix: the logits pass
    streams one row block at a time, and each per-class gradient gathers only
    that class's rows (bounded by the largest class, not the training set).
    When the product holds a single block the arithmetic — gather, GEMM
    shapes, division — is identical to the dense routine, so results are
    bit-identical there; multi-block runs agree to round-off.
    """
    logits = np.empty((index.size, weight.shape[1]), dtype=np.float64)
    for start, _, block in propagated.blocks():
        mask = (index >= start) & (index < start + block.shape[0])
        if not mask.any():
            continue
        logits[mask] = block[index[mask] - start] @ weight
    logits -= logits.max(axis=1, keepdims=True)
    np.exp(logits, out=logits)
    residual = logits
    residual /= residual.sum(axis=1, keepdims=True)
    index_labels = labels[index]
    residual[np.arange(index.size), index_labels] -= 1.0

    order = np.argsort(index_labels, kind="stable")
    sorted_labels = index_labels[order]
    sorted_index = index[order]
    residual_sorted = residual[order]
    boundaries = np.searchsorted(sorted_labels, np.arange(num_classes + 1))
    gradients: Dict[int, np.ndarray] = {}
    for cls in range(num_classes):
        start, stop = boundaries[cls], boundaries[cls + 1]
        if start == stop:
            continue
        class_rows = propagated.gather(sorted_index[start:stop])
        gradients[cls] = class_rows.T @ residual_sorted[start:stop] / (stop - start)
    return gradients


def closed_form_surrogate_steps(
    propagated: np.ndarray,
    labels: np.ndarray,
    weight: np.ndarray,
    first_moment: np.ndarray,
    second_moment: np.ndarray,
    start_step: int,
    steps: int,
    lr: float,
) -> float:
    """``steps`` closed-form CE/Adam updates of a linear surrogate, in place.

    The surrogate is linear in ``weight``, so the cross-entropy gradient has
    the closed form ``H^T (softmax(HW) - Y) / n`` — no autograd graph is
    built.  ``weight`` and the Adam moment buffers are updated in place;
    ``start_step`` continues the bias-correction counter, which is what lets
    callers batch one surrogate optimisation across attack epochs (the BGC
    warm start and ``GradientMatchingCondenser.train_surrogate`` both drive
    this loop).  Returns the last step's loss.
    """
    count = labels.size
    row_index = np.arange(count)
    targets = np.zeros((count, weight.shape[1]))
    targets[row_index, labels] = 1.0
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    loss_value = np.nan
    for step in range(start_step + 1, start_step + steps + 1):
        logits = propagated @ weight
        logits -= logits.max(axis=1, keepdims=True)
        log_norm = np.log(np.exp(logits).sum(axis=1, keepdims=True))
        loss_value = float(-np.mean(logits[row_index, labels] - log_norm[:, 0]))
        gradient = propagated.T @ (np.exp(logits - log_norm) - targets)
        gradient /= count
        first_moment *= beta1
        first_moment += (1.0 - beta1) * gradient
        second_moment *= beta2
        second_moment += (1.0 - beta2) * np.square(gradient)
        m_hat = first_moment / (1.0 - beta1**step)
        v_hat = second_moment / (1.0 - beta2**step)
        weight -= lr * m_hat / (np.sqrt(v_hat) + eps)
    return loss_value


def gradient_distance(real: np.ndarray, synthetic: Tensor, metric: str = "cosine") -> Tensor:
    """Distance between a constant real gradient and a synthetic-gradient tensor.

    ``cosine`` sums ``1 - cos(column_i(real), column_i(synthetic))`` over output
    columns (the distance used by GCond); ``euclidean`` is the squared
    Frobenius distance.
    """
    real_tensor = Tensor(np.asarray(real, dtype=np.float64))
    if metric == "euclidean":
        diff = synthetic - real_tensor
        return (diff * diff).sum()
    if metric != "cosine":
        raise CondensationError(f"unknown gradient distance {metric!r}")
    eps = 1e-10
    dot = (synthetic * real_tensor).sum(axis=0)
    real_norm = np.sqrt((np.asarray(real) ** 2).sum(axis=0)) + eps
    syn_norm = ((synthetic * synthetic).sum(axis=0) + eps) ** 0.5
    cosine = dot / (syn_norm * Tensor(real_norm))
    ones = Tensor(np.ones_like(real_norm))
    return (ones - cosine).sum()


def normalize_dense_tensor(adjacency: Tensor) -> Tensor:
    """Differentiable GCN normalisation ``D^{-1/2}(A+I)D^{-1/2}`` of a dense tensor."""
    n = adjacency.shape[0]
    with_loops = adjacency + Tensor(np.eye(n))
    degrees = with_loops.sum(axis=1, keepdims=True)
    inv_sqrt = (degrees + 1e-12) ** -0.5
    return with_loops * inv_sqrt * inv_sqrt.T


class StructureGenerator(Module):
    """Generates the condensed adjacency from the synthetic features.

    GCond parameterises ``A'_{ij} = σ(MLP_φ([x'_i ; x'_j]))``; this
    implementation uses the symmetric low-rank form
    ``A' = σ(E E^T / sqrt(k))`` with ``E = MLP_φ(X')`` which keeps the same
    differentiable coupling between features and structure while avoiding the
    quadratic pair construction (documented in ``DESIGN.md``).
    """

    #: Logit offset subtracted from the pairwise scores.  Without it a freshly
    #: initialised generator outputs ``σ(≈0) ≈ 0.5`` for every pair, i.e. a
    #: near-complete condensed graph that over-smooths downstream GNNs.  The
    #: offset starts the structure sparse and lets matching add edges back.
    score_bias = 2.0

    def __init__(self, num_features: int, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder1 = Linear(num_features, hidden, rng=rng)
        self.encoder2 = Linear(hidden, hidden, rng=rng)
        self.hidden = hidden

    def forward(self, features: Tensor) -> Tensor:
        embedding = F.relu(self.encoder1(features))
        embedding = self.encoder2(embedding)
        scores = embedding.matmul(embedding.T) * (1.0 / np.sqrt(self.hidden))
        adjacency = F.sigmoid(scores - self.score_bias)
        # Remove self-loops; normalisation re-adds a unit self-loop explicitly.
        mask = Tensor(1.0 - np.eye(features.shape[0]))
        return adjacency * mask


@dataclass
class _SyntheticState:
    """Internal mutable state of a gradient-matching run."""

    features: Parameter
    labels: np.ndarray
    class_index: Dict[int, np.ndarray]
    surrogate_weight: Parameter
    structure_generator: StructureGenerator | None
    feature_optimizer: Adam
    structure_optimizer: Adam | None
    #: Persistent Adam moments of the surrogate — (m, v, step) — carried
    #: across ``epoch_step`` calls when ``surrogate_warm_start`` is set.
    surrogate_moments: tuple | None = None
    #: Total surrogate steps taken since the last (re-)initialisation.
    surrogate_steps_done: int = 0


class GradientMatchingCondenser(Condenser):
    """Shared machinery for DC-Graph, GCond and GCond-X.

    Subclasses toggle two switches:

    * ``use_structure`` — learn a condensed adjacency (GCond) or keep the
      identity (DC-Graph, GCond-X);
    * ``propagate_real`` — whether the real-graph features are propagated
      through the (poisoned) original adjacency before matching (GCond and
      GCond-X do; DC-Graph treats features as i.i.d. samples).
    """

    name = "gradient-matching"
    use_structure = False
    propagate_real = True

    def __init__(
        self,
        config: CondensationConfig | None = None,
        cache: PropagationCache | None = None,
    ) -> None:
        super().__init__(config)
        self._graph: GraphData | None = None
        self._state: _SyntheticState | None = None
        self._rng: np.random.Generator | None = None
        # Shared by default: every condenser instance (GCond, GCond-X,
        # DC-Graph, GC-SNTK) working on the same graph version reuses one
        # propagation, and the BGC attack's per-epoch poisoned graphs are
        # updated incrementally against their common base.
        self._cache = cache if cache is not None else get_default_cache()

    # -------------------------------------------------------------- #
    # Stateful API (used directly by the BGC attack)
    # -------------------------------------------------------------- #
    def initialize(self, graph: GraphData, rng: np.random.Generator) -> None:
        """Create the synthetic graph variables for ``graph``."""
        self._graph = graph
        self._rng = rng
        budget = self._budget(graph)
        features, labels, class_index = self._init_synthetic(graph, budget, rng)
        feature_param = Parameter(features, name="synthetic_features")
        # Adam moves each coordinate by roughly the learning rate per step, so
        # the feature learning rate is scaled by the feature magnitude to keep
        # updates proportional to the data (documented in DESIGN.md).
        feature_scale = max(float(np.abs(features).mean()), 1e-8)
        feature_lr = self.config.lr_features * feature_scale
        surrogate = Parameter(
            rng.normal(scale=0.1, size=(graph.num_features, graph.num_classes)),
            name="surrogate_weight",
        )
        structure_generator: StructureGenerator | None = None
        structure_optimizer: Adam | None = None
        if self.use_structure:
            structure_generator = StructureGenerator(
                graph.num_features, self.config.structure_hidden, rng
            )
            structure_optimizer = Adam(
                structure_generator.parameters(), lr=self.config.lr_structure
            )
        self._state = _SyntheticState(
            features=feature_param,
            labels=labels,
            class_index=class_index,
            surrogate_weight=surrogate,
            structure_generator=structure_generator,
            feature_optimizer=Adam([feature_param], lr=feature_lr),
            structure_optimizer=structure_optimizer,
        )

    def reset_surrogate(self, rng: np.random.Generator | None = None) -> None:
        """Re-initialise the surrogate weight (start of every cold outer epoch)."""
        state = self._require_state()
        generator = rng if rng is not None else self._rng
        state.surrogate_weight.data = generator.normal(
            scale=0.1, size=state.surrogate_weight.data.shape
        )
        state.surrogate_moments = None
        state.surrogate_steps_done = 0

    def train_surrogate(self, steps: int | None = None) -> float:
        """Train the surrogate weight on the current synthetic graph.

        The surrogate is linear in its weight, so the CE gradient has the
        closed form ``H^T (softmax(HW) - Y) / n``.  The loop feeds that
        directly into Adam instead of building an autograd graph every step —
        the same update, an order of magnitude less per-step overhead (this
        runs once per attack epoch inside the BGC hot loop).  Under
        ``surrogate_warm_start`` the Adam moments and step counter persist on
        the state, so successive ``epoch_step`` calls continue one
        optimisation instead of restarting it.
        """
        state = self._require_state()
        steps = steps if steps is not None else self.config.surrogate_steps
        propagated = self._synthetic_propagated(detach=True).data
        weight = state.surrogate_weight.data
        # Closed-form steps (same update as repro.autograd.Adam) with reused
        # moment buffers — the optimiser-object overhead is comparable to the
        # actual flops at condensed-graph scale.
        warm = self.config.surrogate_warm_start
        if warm and state.surrogate_moments is not None:
            first_moment, second_moment = state.surrogate_moments
            start = state.surrogate_steps_done
        else:
            first_moment = np.zeros_like(weight)
            second_moment = np.zeros_like(weight)
            start = 0
        loss_value = closed_form_surrogate_steps(
            propagated, state.labels, weight, first_moment, second_moment,
            start, steps, self.config.surrogate_lr,
        )
        if warm:
            state.surrogate_moments = (first_moment, second_moment)
            state.surrogate_steps_done = start + steps
        return float(loss_value)

    def surrogate_weight(self) -> np.ndarray:
        """Current surrogate weight matrix (copy)."""
        return self._require_state().surrogate_weight.data.copy()

    def outer_step(self, real_graph: GraphData | None = None) -> float:
        """One gradient-matching update of the synthetic graph.

        ``real_graph`` defaults to the graph passed to :meth:`initialize`;
        the BGC attack passes the current *poisoned* graph instead.
        """
        state = self._require_state()
        graph = real_graph if real_graph is not None else self._graph
        if graph is None:
            raise CondensationError("outer_step called before initialize()")

        real_propagated = self._real_propagated(graph)
        weight = state.surrogate_weight.data

        state.feature_optimizer.zero_grad()
        if state.structure_optimizer is not None:
            state.structure_optimizer.zero_grad()

        synthetic_propagated = self._synthetic_propagated(detach=False)
        weight_tensor = Tensor(weight)
        # One softmax pass over every synthetic node; the per-class gradients
        # below reuse its residual through row slices (the synthetic nodes are
        # laid out class-by-class at initialisation, so the slices are
        # contiguous and backward needs no scatter).
        synthetic_logits = synthetic_propagated.matmul(weight_tensor)
        synthetic_probs = F.softmax(synthetic_logits, axis=-1)
        synthetic_residual = synthetic_probs - Tensor(
            F.one_hot(state.labels, graph.num_classes)
        )

        # One softmax/logits pass over all train nodes; per-class gradients
        # fall out as masked segment-sums (see all_class_model_gradients).
        real_grads = all_class_model_gradients(
            real_propagated, graph.labels, weight, graph.split.train, graph.num_classes
        )
        real_parts: List[np.ndarray] = []
        synthetic_parts: List[Tensor] = []
        for cls, synthetic_index in state.class_index.items():
            real_grad = real_grads.get(cls)
            if real_grad is None or synthetic_index.size == 0:
                continue
            real_parts.append(real_grad)
            synthetic_parts.append(
                self._synthetic_class_gradient(
                    synthetic_propagated, synthetic_residual, synthetic_index
                )
            )
        if not real_parts:
            raise CondensationError("no overlapping classes between real and synthetic graphs")
        # Both distance metrics are column-separable, so the per-class
        # distances collapse into one call on column-stacked gradients — one
        # pass through the autograd graph instead of C.
        total_loss = gradient_distance(
            np.hstack(real_parts),
            Tensor.concatenate(synthetic_parts, axis=1),
            self.config.distance,
        )
        total_loss.backward()
        state.feature_optimizer.step()
        if state.structure_optimizer is not None:
            state.structure_optimizer.step()
        return float(total_loss.item())

    def epoch_step(self, real_graph: GraphData | None = None) -> float:
        """One full condensation epoch: surrogate training, then matching.

        This is the hook the BGC attack drives with the current poisoned
        graph (a :class:`~repro.graph.data.GraphData` or a zero-copy
        :class:`~repro.graph.view.GraphView`).  By default every epoch
        re-initialises and fully retrains the surrogate — the paper-faithful
        reference.  With ``surrogate_warm_start`` the surrogate (weight and
        Adam moments) persists across epochs and later epochs run only
        ``surrogate_refresh_steps`` steps: the synthetic graph moves a little
        per epoch, so continuing one optimisation tracks it at a fraction of
        the retrain cost.
        """
        config = self.config
        state = self._require_state()
        if config.surrogate_warm_start and state.surrogate_steps_done > 0:
            refresh = (
                config.surrogate_refresh_steps
                if config.surrogate_refresh_steps is not None
                else config.surrogate_steps
            )
            self.train_surrogate(refresh)
        else:
            self.reset_surrogate()
            self.train_surrogate()
        return self.outer_step(real_graph)

    def synthetic(self) -> CondensedGraph:
        """Export the current synthetic graph."""
        state = self._require_state()
        graph = self._graph
        adjacency = self._export_adjacency(state)
        return CondensedGraph(
            features=state.features.data.copy(),
            labels=state.labels.copy(),
            adjacency=adjacency,
            method=self.name,
            source=graph.name if graph is not None else "unknown",
            ratio=self.config.ratio,
        )

    # -------------------------------------------------------------- #
    # One-shot clean condensation
    # -------------------------------------------------------------- #
    def condense(self, graph: GraphData, rng: np.random.Generator) -> CondensedGraph:
        """Run the full (clean) condensation loop on ``graph``."""
        working = graph.training_view() if graph.inductive else graph
        self.initialize(working, rng)
        for epoch in range(self.config.epochs):
            loss = self.epoch_step()
            if epoch % max(1, self.config.epochs // 5) == 0:
                logger.debug("%s epoch %d matching loss %.4f", self.name, epoch, loss)
        return self.synthetic()

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    def _budget(self, graph: GraphData) -> np.ndarray:
        reference = graph.split.train.size if graph.inductive else graph.num_nodes
        total = max(int(round(self.config.ratio * reference)), graph.num_classes)
        train_labels = graph.labels[graph.split.train]
        counts = np.bincount(train_labels, minlength=graph.num_classes).astype(np.float64)
        budget = np.zeros(graph.num_classes, dtype=np.int64)
        present = counts > 0
        proportions = counts[present] / counts[present].sum()
        budget[present] = np.maximum(
            self.config.min_nodes_per_class, np.round(proportions * total).astype(np.int64)
        )
        return budget

    def _init_synthetic(
        self, graph: GraphData, budget: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, Dict[int, np.ndarray]]:
        features: List[np.ndarray] = []
        labels: List[int] = []
        class_index: Dict[int, np.ndarray] = {}
        cursor = 0
        train_index = graph.split.train
        train_labels = graph.labels[train_index]
        for cls in range(graph.num_classes):
            count = int(budget[cls])
            if count == 0:
                continue
            candidates = train_index[train_labels == cls]
            if candidates.size == 0:
                continue
            chosen = rng.choice(candidates, size=count, replace=candidates.size < count)
            # Noise is scaled by the feature standard deviation so the class
            # signal of the sampled rows is perturbed, not drowned out.
            noise_scale = self.config.feature_init_noise * float(graph.features.std())
            sampled = graph.features[chosen] + rng.normal(
                scale=noise_scale, size=(count, graph.num_features)
            )
            features.append(sampled)
            labels.extend([cls] * count)
            class_index[cls] = np.arange(cursor, cursor + count)
            cursor += count
        if not features:
            raise CondensationError("synthetic initialisation produced no nodes")
        return np.vstack(features), np.asarray(labels, dtype=np.int64), class_index

    def _real_propagated(self, graph: GraphData):
        """Propagated real features; rows are read via ``result[index]``.

        The clean condensation loop hits the shared cache's memo every epoch;
        a delta-carrying poisoned ``GraphData`` is propagated incrementally,
        and a zero-copy :class:`~repro.graph.view.GraphView` takes the
        difference-form path — the returned
        :class:`~repro.graph.view.PropagatedView` never materialises the
        ``(N, F)`` product, and :func:`all_class_model_gradients` only
        gathers the training rows from it.
        """
        if not self.propagate_real:
            return graph.features
        if getattr(graph, "is_view", False):
            return self._cache.propagated_view(graph, self.config.num_hops)
        return self._cache.propagated(graph, self.config.num_hops)

    def _synthetic_propagated(self, detach: bool) -> Tensor:
        state = self._require_state()
        features: Tensor = state.features
        if detach:
            features = features.detach()
        if not self.use_structure or state.structure_generator is None:
            return features
        adjacency = state.structure_generator(features)
        if detach:
            adjacency = adjacency.detach()
        normalized = normalize_dense_tensor(adjacency)
        hidden = features
        for _ in range(self.config.num_hops):
            hidden = normalized.matmul(hidden)
        return hidden

    @staticmethod
    def _synthetic_class_gradient(
        propagated: Tensor, residual: Tensor, index: np.ndarray
    ) -> Tensor:
        """Closed-form surrogate gradient of one class, in the autograd graph.

        ``residual`` is the shared ``softmax(HW) - Y`` tensor computed once
        per outer step; only the row selection and the ``(d, C)`` matmul are
        per-class work.
        """
        if index.size and np.all(np.diff(index) == 1):
            selector = slice(int(index[0]), int(index[-1]) + 1)
            rows = propagated[selector]
            rows_residual = residual[selector]
        else:
            rows = propagated.index_rows(index)
            rows_residual = residual.index_rows(index)
        return rows.T.matmul(rows_residual) * (1.0 / index.size)

    #: Maximum degree kept per synthetic node when exporting the learned
    #: structure.  Without a cap the sigmoid scores of a briefly-trained
    #: generator drift above the 0.5 threshold for many pairs at once, and the
    #: resulting near-complete graph over-smooths downstream GNNs.  Keeping
    #: only each node's strongest pair(s) preserves the learned-structure
    #: coupling while keeping the condensed graph sparse.
    export_max_degree = 2

    def _export_adjacency(self, state: _SyntheticState) -> np.ndarray:
        n = state.features.data.shape[0]
        if not self.use_structure or state.structure_generator is None:
            return np.eye(n)
        from repro.autograd.tensor import no_grad

        with no_grad():
            adjacency = state.structure_generator(state.features.detach()).data
        # GCond sparsifies the learned structure at export time; additionally
        # keep only each node's strongest edges (see export_max_degree).
        adjacency = np.where(adjacency >= 0.5, adjacency, 0.0)
        np.fill_diagonal(adjacency, 0.0)
        if n > self.export_max_degree:
            keep = np.zeros_like(adjacency, dtype=bool)
            top = np.argsort(-adjacency, axis=1)[:, : self.export_max_degree]
            rows = np.repeat(np.arange(n), self.export_max_degree)
            keep[rows, top.reshape(-1)] = True
            keep |= keep.T
            adjacency = np.where(keep, adjacency, 0.0)
        return adjacency

    def _require_state(self) -> _SyntheticState:
        if self._state is None:
            raise CondensationError("condenser used before initialize()")
        return self._state
