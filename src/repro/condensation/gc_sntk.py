"""GC-SNTK: graph condensation as kernel ridge regression.

Instead of gradient matching, GC-SNTK optimises the condensed features so
that a KRR model with support set ``(X', Y')`` predicts the training labels
of the original graph.  The differentiable loss is

``L(X') = || K_ts(X') (K_ss(X') + λI)^{-1} Y'  -  Y_train ||^2``

where ``K_ts`` is the kernel between propagated real training nodes and the
synthetic support, computed with the linear structure kernel so the whole
expression stays differentiable through the autograd engine (the substitution
relative to the paper's arc-cosine SNTK is documented in ``DESIGN.md``).
Evaluation of GC-SNTK condensed graphs uses the same kernel via
:class:`SNTKPredictor` — a KRR model, matching the paper's note that GC-SNTK
only applies to NTK-based downstream models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.condensation.base import (
    CondensationConfig,
    CondensedGraph,
    Condenser,
)
from repro.registry import CONDENSERS
from repro.condensation.sntk import KernelRidgeRegression
from repro.exceptions import CondensationError
from repro.graph.cache import PropagationCache, get_default_cache
from repro.graph.data import GraphData
from repro.graph.propagation import sgc_precompute
from repro.utils.logging import get_logger

logger = get_logger("condensation.gc_sntk")


@dataclass
class _SNTKState:
    features: Parameter
    labels: np.ndarray
    targets: np.ndarray
    optimizer: Adam


class GCSNTK(Condenser):
    """Kernel-ridge-regression graph condensation with a structure-based kernel."""

    name = "gc-sntk"

    def __init__(
        self,
        config: CondensationConfig | None = None,
        ridge: float = 1e-2,
        cache: PropagationCache | None = None,
    ) -> None:
        super().__init__(config)
        if ridge <= 0:
            raise CondensationError(f"ridge must be positive, got {ridge}")
        self.ridge = ridge
        self._graph: GraphData | None = None
        self._state: _SNTKState | None = None
        self._cache = cache if cache is not None else get_default_cache()

    # -------------------------------------------------------------- #
    # Stateful API (mirrors GradientMatchingCondenser for BGC)
    # -------------------------------------------------------------- #
    def initialize(self, graph: GraphData, rng: np.random.Generator) -> None:
        """Create the synthetic support set for ``graph``."""
        self._graph = graph
        budget = self._budget(graph)
        features, labels = self._init_support(graph, budget, rng)
        targets = np.zeros((labels.shape[0], graph.num_classes))
        targets[np.arange(labels.shape[0]), labels] = 1.0
        feature_param = Parameter(features, name="sntk_support")
        # Scale the learning rate by the feature magnitude (see gradient_matching).
        feature_scale = max(float(np.abs(features).mean()), 1e-8)
        self._state = _SNTKState(
            features=feature_param,
            labels=labels,
            targets=targets,
            optimizer=Adam([feature_param], lr=self.config.lr_features * feature_scale),
        )

    def epoch_step(self, real_graph: GraphData | None = None) -> float:
        """One KRR-loss gradient step on the synthetic support features."""
        state = self._require_state()
        graph = real_graph if real_graph is not None else self._graph
        if graph is None:
            raise CondensationError("epoch_step called before initialize()")
        propagated = self._real_propagated(graph)
        train_index = graph.split.train
        query = propagated[train_index]
        query_targets = np.zeros((train_index.size, graph.num_classes))
        query_targets[np.arange(train_index.size), graph.labels[train_index]] = 1.0

        state.optimizer.zero_grad()
        support = state.features
        kernel_ss = support.matmul(support.T) + Tensor(
            self.ridge * np.eye(support.shape[0])
        )
        alpha = kernel_ss.inverse().matmul(Tensor(state.targets))
        kernel_ts = Tensor(query).matmul(support.T)
        predictions = kernel_ts.matmul(alpha)
        loss = F.mse_loss(predictions, query_targets)
        loss.backward()
        state.optimizer.step()
        return float(loss.item())

    def synthetic(self) -> CondensedGraph:
        """Export the current support set as a (structure-free) condensed graph."""
        state = self._require_state()
        graph = self._graph
        n = state.features.data.shape[0]
        return CondensedGraph(
            features=state.features.data.copy(),
            labels=state.labels.copy(),
            adjacency=np.eye(n),
            method=self.name,
            source=graph.name if graph is not None else "unknown",
            ratio=self.config.ratio,
            metadata={"ridge": self.ridge, "num_hops": float(self.config.num_hops)},
        )

    def condense(self, graph: GraphData, rng: np.random.Generator) -> CondensedGraph:
        """Run the full (clean) GC-SNTK condensation loop."""
        working = graph.training_view() if graph.inductive else graph
        self.initialize(working, rng)
        for epoch in range(self.config.epochs):
            loss = self.epoch_step()
            if epoch % max(1, self.config.epochs // 5) == 0:
                logger.debug("gc-sntk epoch %d krr loss %.5f", epoch, loss)
        return self.synthetic()

    def predictor(self, condensed: CondensedGraph | None = None) -> "SNTKPredictor":
        """Build the KRR predictor for a condensed graph (defaults to the current one)."""
        condensed = condensed if condensed is not None else self.synthetic()
        return SNTKPredictor(condensed, ridge=self.ridge, num_hops=self.config.num_hops)

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    def _budget(self, graph: GraphData) -> np.ndarray:
        reference = graph.split.train.size if graph.inductive else graph.num_nodes
        total = max(int(round(self.config.ratio * reference)), graph.num_classes)
        train_labels = graph.labels[graph.split.train]
        counts = np.bincount(train_labels, minlength=graph.num_classes).astype(np.float64)
        budget = np.zeros(graph.num_classes, dtype=np.int64)
        present = counts > 0
        proportions = counts[present] / counts[present].sum()
        budget[present] = np.maximum(1, np.round(proportions * total).astype(np.int64))
        return budget

    def _init_support(
        self, graph: GraphData, budget: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        propagated = self._real_propagated(graph)
        features = []
        labels = []
        train_index = graph.split.train
        train_labels = graph.labels[train_index]
        for cls in range(graph.num_classes):
            count = int(budget[cls])
            candidates = train_index[train_labels == cls]
            if count == 0 or candidates.size == 0:
                continue
            chosen = rng.choice(candidates, size=count, replace=candidates.size < count)
            # Noise relative to the propagated-feature scale (see gradient_matching).
            noise_scale = self.config.feature_init_noise * float(propagated.std())
            sampled = propagated[chosen] + rng.normal(
                scale=noise_scale, size=(count, graph.num_features)
            )
            features.append(sampled)
            labels.extend([cls] * count)
        if not features:
            raise CondensationError("GC-SNTK initialisation produced no support points")
        return np.vstack(features), np.asarray(labels, dtype=np.int64)

    def _real_propagated(self, graph: GraphData):
        # Version-keyed shared cache (see repro.graph.cache): replaces the
        # fragile id()-keyed memo that could serve stale features after
        # garbage collection recycled an address.  GraphViews take the
        # difference-form path; epoch_step only gathers the training rows.
        if getattr(graph, "is_view", False):
            return self._cache.propagated_view(graph, self.config.num_hops)
        return self._cache.propagated(graph, self.config.num_hops)

    def _require_state(self) -> _SNTKState:
        if self._state is None:
            raise CondensationError("GC-SNTK used before initialize()")
        return self._state


class SNTKPredictor:
    """KRR prediction model over a GC-SNTK condensed graph.

    Implements the same ``predict(adjacency, features)`` call signature as
    :class:`~repro.models.base.NodeClassifier` so the evaluation pipeline can
    use it interchangeably with trained GNNs.
    """

    def __init__(self, condensed: CondensedGraph, ridge: float = 1e-2, num_hops: int = 2) -> None:
        self.num_hops = num_hops
        self.condensed = condensed
        self._krr = KernelRidgeRegression(ridge=ridge, kernel="linear").fit(
            condensed.features, condensed.labels
        )

    def predict(self, adjacency, features: np.ndarray) -> np.ndarray:
        """Propagate query features through ``adjacency`` and classify with KRR."""
        propagated = sgc_precompute(adjacency, np.asarray(features, dtype=np.float64), self.num_hops)
        return self.predict_propagated(propagated)

    def predict_propagated(self, propagated: np.ndarray) -> np.ndarray:
        """Classify already-propagated query features (lets callers reuse a
        :class:`~repro.graph.cache.PropagationCache` product)."""
        return self._krr.predict(propagated)


CONDENSERS.register(
    "gc-sntk", factory=GCSNTK, config_cls=CondensationConfig, aliases=("gcsntk",)
)
