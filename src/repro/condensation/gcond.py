"""GCond and GCond-X (Jin et al., ICLR 2022).

GCond matches the surrogate's training gradients on the original graph with
those on a learned synthetic graph whose adjacency is generated from the
synthetic features; GCond-X is the ablation that drops the learned structure
and trains downstream models on the condensed features alone.
"""

from __future__ import annotations

from repro.condensation.base import CondensationConfig
from repro.condensation.gradient_matching import GradientMatchingCondenser
from repro.registry import CONDENSERS


@CONDENSERS.register("gcond", config_cls=CondensationConfig)
class GCond(GradientMatchingCondenser):
    """Gradient matching with propagated real features and a learned structure."""

    name = "gcond"
    use_structure = True
    propagate_real = True


@CONDENSERS.register("gcond-x", config_cls=CondensationConfig, aliases=("gcondx",))
class GCondX(GradientMatchingCondenser):
    """GCond without the learned condensed structure (features only)."""

    name = "gcond-x"
    use_structure = False
    propagate_real = True
