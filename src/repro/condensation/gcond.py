"""GCond and GCond-X (Jin et al., ICLR 2022).

GCond matches the surrogate's training gradients on the original graph with
those on a learned synthetic graph whose adjacency is generated from the
synthetic features; GCond-X is the ablation that drops the learned structure
and trains downstream models on the condensed features alone.
"""

from __future__ import annotations

from repro.condensation.base import register_condenser
from repro.condensation.gradient_matching import GradientMatchingCondenser


class GCond(GradientMatchingCondenser):
    """Gradient matching with propagated real features and a learned structure."""

    name = "gcond"
    use_structure = True
    propagate_real = True


class GCondX(GradientMatchingCondenser):
    """GCond without the learned condensed structure (features only)."""

    name = "gcond-x"
    use_structure = False
    propagate_real = True


register_condenser("gcond", GCond)
register_condenser("gcond-x", GCondX)
register_condenser("gcondx", GCondX)
