"""Condenser interface, configuration and the :class:`CondensedGraph` product."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.exceptions import CondensationError, ConfigurationError
from repro.graph.data import GraphData
from repro.registry import CONDENSERS


@dataclass
class CondensedGraph:
    """A small synthetic graph produced by a condenser.

    Attributes
    ----------
    features:
        ``(N', d)`` dense synthetic node features.
    labels:
        ``(N',)`` integer synthetic node labels.
    adjacency:
        ``(N', N')`` dense synthetic adjacency.  Structure-free condensers
        (DC-Graph, GCond-X) return the identity matrix.
    method / source / ratio:
        Provenance metadata: condenser name, source dataset name and the
        condensation ratio ``N' / N_train``.
    """

    features: np.ndarray
    labels: np.ndarray
    adjacency: np.ndarray
    method: str = "unknown"
    source: str = "unknown"
    ratio: float = 0.0
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.adjacency = np.asarray(self.adjacency, dtype=np.float64)
        n = self.features.shape[0]
        if self.labels.shape != (n,):
            raise CondensationError(
                f"labels shape {self.labels.shape} does not match {n} synthetic nodes"
            )
        if self.adjacency.shape != (n, n):
            raise CondensationError(
                f"adjacency shape {self.adjacency.shape} does not match {n} synthetic nodes"
            )

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def copy(self) -> "CondensedGraph":
        return CondensedGraph(
            features=self.features.copy(),
            labels=self.labels.copy(),
            adjacency=self.adjacency.copy(),
            method=self.method,
            source=self.source,
            ratio=self.ratio,
            metadata=dict(self.metadata),
        )


@dataclass
class CondensationConfig:
    """Hyperparameters shared by the gradient-matching condensers."""

    epochs: int = 60
    ratio: float = 0.05
    num_hops: int = 2
    lr_features: float = 0.05
    lr_structure: float = 0.01
    surrogate_lr: float = 0.05
    surrogate_steps: int = 10
    #: Carry the surrogate weight and its Adam moments across ``epoch_step``
    #: calls instead of re-initialising per epoch.  After the first epoch only
    #: ``surrogate_refresh_steps`` refresh steps run — this is the
    #: cross-epoch surrogate batching the attack loop uses; the default False
    #: keeps the paper-faithful fresh-surrogate-per-epoch reference path.
    surrogate_warm_start: bool = False
    #: Steps per warm epoch (``None`` = ``surrogate_steps``).  Ignored unless
    #: ``surrogate_warm_start`` is set.
    surrogate_refresh_steps: int | None = None
    distance: str = "cosine"
    structure_hidden: int = 64
    feature_init_noise: float = 0.05
    min_nodes_per_class: int = 1

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if not 0.0 < self.ratio <= 1.0:
            raise ConfigurationError(f"ratio must lie in (0, 1], got {self.ratio}")
        if self.num_hops < 1:
            raise ConfigurationError(f"num_hops must be >= 1, got {self.num_hops}")
        if self.distance not in ("cosine", "euclidean"):
            raise ConfigurationError(
                f"distance must be 'cosine' or 'euclidean', got {self.distance!r}"
            )
        for name in ("lr_features", "lr_structure", "surrogate_lr"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.surrogate_steps < 1:
            raise ConfigurationError("surrogate_steps must be >= 1")
        if self.surrogate_refresh_steps is not None and self.surrogate_refresh_steps < 1:
            raise ConfigurationError("surrogate_refresh_steps must be >= 1")


class Condenser:
    """Abstract condenser: maps a :class:`GraphData` to a :class:`CondensedGraph`."""

    name = "condenser"

    def __init__(self, config: CondensationConfig | None = None) -> None:
        self.config = config or CondensationConfig()

    def condense(self, graph: GraphData, rng: np.random.Generator) -> CondensedGraph:
        raise NotImplementedError

    @staticmethod
    def synthetic_budget(graph: GraphData, ratio: float, min_per_class: int = 1) -> np.ndarray:
        """Number of synthetic nodes per class for a given condensation ratio.

        The budget is ``ratio * |train|`` nodes distributed proportionally to
        the class frequencies among training nodes, with at least
        ``min_per_class`` nodes for every class present in the training set.
        """
        train_labels = graph.labels[graph.split.train]
        num_classes = graph.num_classes
        counts = np.bincount(train_labels, minlength=num_classes).astype(np.float64)
        total = max(int(round(ratio * graph.split.train.size)), num_classes)
        budget = np.zeros(num_classes, dtype=np.int64)
        present = counts > 0
        proportions = counts[present] / counts[present].sum()
        raw = np.maximum(min_per_class, np.round(proportions * total).astype(np.int64))
        budget[present] = raw
        return budget


def register_condenser(
    name: str, factory: Callable[..., Condenser], aliases: tuple[str, ...] = ()
) -> None:
    """Register a condenser under ``name`` (back-compat shim over :data:`CONDENSERS`)."""
    CONDENSERS.register(name, factory=factory, config_cls=CondensationConfig, aliases=aliases)


def available_condensers() -> list[str]:
    """Canonical names accepted by :func:`make_condenser`."""
    return CONDENSERS.available()


def make_condenser(name: str, config: CondensationConfig | None = None) -> Condenser:
    """Instantiate a condenser by name (``dc-graph``, ``gcond``, ``gcond-x``, ``gc-sntk``)."""
    return CONDENSERS.build(name, config)
