"""Graph condensation methods.

Four condensers from the paper's evaluation:

* :class:`~repro.condensation.dc_graph.DCGraph` — the graph-agnostic dataset
  condensation baseline (gradient matching on raw features, no structure),
* :class:`~repro.condensation.gcond.GCond` — gradient matching with a learned
  condensed structure ``A'_{ij} = σ(MLP([x'_i ; x'_j]))``,
* :class:`~repro.condensation.gcond.GCondX` — GCond without structure,
* :class:`~repro.condensation.gc_sntk.GCSNTK` — kernel-ridge-regression
  condensation with a structure-based neural tangent kernel.

All gradient-matching condensers expose a *stateful* API (``initialize``,
``train_surrogate``, ``outer_step``) in addition to the one-shot
:meth:`~repro.condensation.base.Condenser.condense`, which is what the BGC
attack hooks into to interleave trigger updates with condensation updates.
"""

from repro.condensation.base import (
    CondensedGraph,
    Condenser,
    CondensationConfig,
    make_condenser,
    available_condensers,
)
from repro.condensation.gradient_matching import (
    GradientMatchingCondenser,
    all_class_model_gradients,
    gradient_distance,
    per_class_model_gradient,
)
from repro.condensation.dc_graph import DCGraph
from repro.condensation.gcond import GCond, GCondX
from repro.condensation.gc_sntk import GCSNTK
from repro.condensation.sntk import structure_based_ntk, linear_structure_kernel, KernelRidgeRegression

__all__ = [
    "CondensedGraph",
    "Condenser",
    "CondensationConfig",
    "make_condenser",
    "available_condensers",
    "GradientMatchingCondenser",
    "all_class_model_gradients",
    "gradient_distance",
    "per_class_model_gradient",
    "DCGraph",
    "GCond",
    "GCondX",
    "GCSNTK",
    "structure_based_ntk",
    "linear_structure_kernel",
    "KernelRidgeRegression",
]
