"""DC-Graph: the graph-agnostic dataset-condensation baseline.

DC-Graph applies the original DC gradient-matching recipe (Zhao et al., 2021)
to node features without using the graph structure on either side: real
features are matched unpropagated and the condensed graph carries no learned
adjacency.  Downstream GNN training on the condensed graph therefore uses the
identity adjacency (features-only), while evaluation still uses the full test
graph structure — exactly the protocol of the GCond paper.
"""

from __future__ import annotations

from repro.condensation.base import CondensationConfig
from repro.condensation.gradient_matching import GradientMatchingCondenser
from repro.registry import CONDENSERS


@CONDENSERS.register("dc-graph", config_cls=CondensationConfig, aliases=("dcgraph",))
class DCGraph(GradientMatchingCondenser):
    """Gradient matching on raw features; structure-free condensed graph."""

    name = "dc-graph"
    use_structure = False
    propagate_real = False
