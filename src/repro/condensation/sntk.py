"""Structure-based neural tangent kernels and kernel ridge regression.

GC-SNTK (Wang et al., WebConf 2024) reformulates graph condensation as a
kernel ridge regression (KRR) problem: the condensed node features act as
"support" points of a KRR model whose kernel is a neural tangent kernel
computed on structure-propagated features.  This module provides

* :func:`relu_ntk` — the exact NTK of an ``L``-layer infinitely-wide ReLU MLP,
* :func:`linear_structure_kernel` — the (differentiation-friendly) NTK of a
  linear model on propagated features, used inside the condensation loop,
* :func:`structure_based_ntk` — SGC propagation followed by :func:`relu_ntk`,
* :class:`KernelRidgeRegression` — the prediction model used in place of a
  trained GNN when evaluating GC-SNTK condensed graphs.
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from repro.exceptions import CondensationError
from repro.graph.propagation import sgc_precompute


def _pairwise_inner(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64) @ np.asarray(y, dtype=np.float64).T


def relu_ntk(x: np.ndarray, y: np.ndarray, depth: int = 2) -> np.ndarray:
    """NTK of an infinitely wide ``depth``-layer ReLU network between ``x`` and ``y``.

    Uses the standard arc-cosine recursion.  ``depth=2`` corresponds to one
    hidden layer, which is the setting used by GC-SNTK.
    """
    if depth < 1:
        raise CondensationError(f"depth must be >= 1, got {depth}")
    sigma = _pairwise_inner(x, y)
    sigma_xx = np.sum(np.asarray(x, dtype=np.float64) ** 2, axis=1)
    sigma_yy = np.sum(np.asarray(y, dtype=np.float64) ** 2, axis=1)
    theta = sigma.copy()
    for _ in range(depth - 1):
        norms = np.sqrt(np.outer(sigma_xx, sigma_yy)) + 1e-12
        cosine = np.clip(sigma / norms, -1.0, 1.0)
        angle = np.arccos(cosine)
        sigma_next = (norms / (2.0 * np.pi)) * (np.sin(angle) + (np.pi - angle) * cosine)
        derivative = (np.pi - angle) / (2.0 * np.pi)
        theta = theta * derivative + sigma_next
        sigma = sigma_next
        sigma_xx = sigma_xx / 2.0
        sigma_yy = sigma_yy / 2.0
    return theta


def linear_structure_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Kernel of a linear model: the plain Gram matrix ``X Y^T``."""
    return _pairwise_inner(x, y)


def structure_based_ntk(
    adjacency: sp.spmatrix,
    features: np.ndarray,
    support_features: np.ndarray,
    num_hops: int = 2,
    depth: int = 2,
) -> np.ndarray:
    """SNTK between graph nodes and (structure-free) support points.

    Graph nodes are propagated ``num_hops`` steps through the normalised
    adjacency before the ReLU NTK is evaluated against the support features,
    so the structure information enters through the propagation operator —
    the "structure-based" part of the kernel.
    """
    propagated = sgc_precompute(adjacency, features, num_hops)
    return relu_ntk(propagated, support_features, depth=depth)


class KernelRidgeRegression:
    """Multi-class KRR classifier over a fixed support set.

    Fitting solves ``(K_ss + λ I) α = Y_onehot`` once; prediction multiplies
    the query-support kernel by ``α`` and takes the argmax.

    Parameters
    ----------
    ridge:
        Regularisation strength λ.
    kernel:
        ``"relu"`` for the arc-cosine NTK (:func:`relu_ntk`) or ``"linear"``
        for the plain Gram kernel — the latter matches the differentiable
        kernel used inside the GC-SNTK condensation loop.
    depth:
        Network depth for the ReLU NTK (ignored for the linear kernel).
    """

    def __init__(self, ridge: float = 1e-3, kernel: str = "linear", depth: int = 2) -> None:
        if ridge <= 0:
            raise CondensationError(f"ridge must be positive, got {ridge}")
        if kernel not in ("relu", "linear"):
            raise CondensationError(f"kernel must be 'relu' or 'linear', got {kernel!r}")
        self.ridge = ridge
        self.kernel = kernel
        self.depth = depth
        self._support: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._num_classes = 0

    def _kernel(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.kernel == "relu":
            return relu_ntk(x, y, depth=self.depth)
        return linear_structure_kernel(x, y)

    def fit(self, support_features: np.ndarray, support_labels: np.ndarray) -> "KernelRidgeRegression":
        support_features = np.asarray(support_features, dtype=np.float64)
        support_labels = np.asarray(support_labels, dtype=np.int64)
        self._num_classes = int(support_labels.max()) + 1
        targets = np.zeros((support_labels.shape[0], self._num_classes))
        targets[np.arange(support_labels.shape[0]), support_labels] = 1.0
        kernel = self._kernel(support_features, support_features)
        kernel = kernel + self.ridge * np.eye(kernel.shape[0])
        self._alpha = np.linalg.solve(kernel, targets)
        self._support = support_features
        return self

    def decision_function(self, query_features: np.ndarray) -> np.ndarray:
        """Raw per-class scores for ``query_features``."""
        if self._support is None or self._alpha is None:
            raise CondensationError("KernelRidgeRegression.predict called before fit")
        kernel = self._kernel(np.asarray(query_features, dtype=np.float64), self._support)
        return kernel @ self._alpha

    def predict(self, query_features: np.ndarray) -> np.ndarray:
        """Hard class predictions for ``query_features``."""
        return np.argmax(self.decision_function(query_features), axis=1)
