"""String-keyed component registries: the stable extension surface of the repo.

Every pluggable component family has one process-wide :class:`Registry`:

* :data:`DATASETS`   — synthetic benchmark graphs (``"cora"``, ``"tiny"``, ...),
* :data:`MODELS`     — downstream GNN architectures (``"gcn"``, ``"sgc"``, ...),
* :data:`CONDENSERS` — graph condensation methods (``"gcond"``, ``"gc-sntk"``, ...),
* :data:`ATTACKS`    — backdoor attacks (``"bgc"``, ``"naive"``, ``"gta"``, ...),
* :data:`DEFENSES`   — customer-side defenses (``"prune"``, ``"randsmooth"``, ...).

Implementations self-register at import time with the decorator form::

    @CONDENSERS.register("gcond", config_cls=CondensationConfig)
    class GCond(GradientMatchingCondenser): ...

and callers instantiate by name::

    condenser = CONDENSERS.build("gcond", epochs=30, ratio=0.026)

``build`` binds keyword overrides onto the entry's config dataclass (creating
it from defaults, validating through ``__post_init__``) and passes the result
as ``config=``.  Override keys may use dot-paths to reach nested config
dataclasses — ``CONDENSERS.build("...", **{"trigger.trigger_size": 2})`` — and
keys that are not config fields but are accepted by the factory's signature
are forwarded as plain constructor keywords (e.g. GC-SNTK's ``ridge``).

Registries are populated by importing the subsystem packages; importing
:mod:`repro` (or :mod:`repro.api`) loads all five families.  The declarative
:mod:`repro.api` layer resolves every :class:`~repro.api.spec.ExperimentSpec`
component through these registries, so registering a new component here is
all it takes to make it sweepable from JSON.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "Registry",
    "RegistryEntry",
    "bind_config",
    "DATASETS",
    "MODELS",
    "CONDENSERS",
    "ATTACKS",
    "DEFENSES",
    "all_registries",
]


def bind_config(config_cls: type, overrides: Dict[str, Any], base: Any = None):
    """Bind an override mapping onto a config dataclass.

    Starts from ``base`` (or ``config_cls()`` defaults), applies ``overrides``
    and returns a new instance, so every ``__post_init__`` validation runs on
    the final values.  Keys may be dot-paths into nested config dataclasses::

        bind_config(BGCConfig, {"poison_ratio": 0.05, "trigger.trigger_size": 2})
    """
    if not is_dataclass(config_cls):
        raise ConfigurationError(f"{config_cls!r} is not a config dataclass")
    if base is None:
        base = config_cls()
    elif not isinstance(base, config_cls):
        raise ConfigurationError(
            f"base config {type(base).__name__} does not match {config_cls.__name__}"
        )
    field_map = {f.name: f for f in fields(config_cls)}
    updates: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    for key, value in overrides.items():
        head, _, rest = str(key).partition(".")
        if head not in field_map:
            known = ", ".join(sorted(field_map))
            raise ConfigurationError(
                f"unknown {config_cls.__name__} field {head!r} (known: {known})"
            )
        if rest:
            nested.setdefault(head, {})[rest] = value
        elif is_dataclass(getattr(base, head)) and isinstance(value, dict):
            # Natural nested-JSON form: {"trigger": {"trigger_size": 2}} is
            # treated as overrides on the nested config, not a raw dict value.
            nested.setdefault(head, {}).update(value)
        else:
            updates[head] = value
    for head, sub in nested.items():
        current = updates.get(head, getattr(base, head))
        if not is_dataclass(current):
            raise ConfigurationError(
                f"{config_cls.__name__}.{head} is not a nested config; "
                f"cannot apply dotted overrides {sorted(sub)}"
            )
        updates[head] = bind_config(type(current), sub, base=current)
    return replace(base, **updates)


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its factory, config class and metadata."""

    name: str
    factory: Callable[..., Any]
    config_cls: type | None = None
    aliases: Tuple[str, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)


class Registry:
    """A case-insensitive name → factory registry with typed config binding."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._aliases: Dict[str, str] = {}

    # -------------------------------------------------------------- #
    # Registration
    # -------------------------------------------------------------- #
    def register(
        self,
        name: str,
        *,
        config_cls: type | None = None,
        aliases: Iterable[str] = (),
        metadata: Dict[str, Any] | None = None,
        factory: Callable[..., Any] | None = None,
    ):
        """Register a factory under ``name``.

        Decorator form (``factory`` omitted) returns the decorated object
        unchanged; direct form registers ``factory`` immediately and returns
        it.  ``aliases`` are alternative lookup names that do not appear in
        :meth:`available`.
        """
        if factory is not None:
            self._add(RegistryEntry(name, factory, config_cls, tuple(aliases), dict(metadata or {})))
            return factory

        def decorator(obj: Callable[..., Any]):
            self._add(RegistryEntry(name, obj, config_cls, tuple(aliases), dict(metadata or {})))
            return obj

        return decorator

    def _add(self, entry: RegistryEntry) -> None:
        key = entry.name.lower()
        for existing in (key, *map(str.lower, entry.aliases)):
            if existing in self._entries or existing in self._aliases:
                raise ConfigurationError(
                    f"{self.kind} {existing!r} is already registered"
                )
        self._entries[key] = entry
        for alias in entry.aliases:
            self._aliases[alias.lower()] = key

    def unregister(self, name: str) -> None:
        """Remove an entry and its aliases (mainly for tests)."""
        key = self.canonical(name)
        entry = self._entries.pop(key)
        for alias in entry.aliases:
            self._aliases.pop(alias.lower(), None)

    # -------------------------------------------------------------- #
    # Lookup
    # -------------------------------------------------------------- #
    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = name.lower()
        return key in self._entries or key in self._aliases

    def __len__(self) -> int:
        return len(self._entries)

    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to its canonical registry key."""
        key = name.lower()
        key = self._aliases.get(key, key)
        if key not in self._entries:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.available())}"
            )
        return key

    def get(self, name: str) -> RegistryEntry:
        """Return the :class:`RegistryEntry` registered under ``name``."""
        return self._entries[self.canonical(name)]

    def available(self) -> List[str]:
        """Sorted canonical names (aliases resolve but are not listed)."""
        return sorted(self._entries)

    def known(self) -> List[str]:
        """Sorted canonical names *and* aliases — every string build() accepts."""
        return sorted([*self._entries, *self._aliases])

    # -------------------------------------------------------------- #
    # Construction
    # -------------------------------------------------------------- #
    def build(self, name: str, config: Any = None, **overrides):
        """Instantiate the component registered under ``name``.

        With a ``config_cls``, ``overrides`` are bound onto it (dot-paths
        reach nested configs) and passed as ``config=``; override keys that
        match the factory signature instead of a config field are forwarded
        as constructor keywords.  Without a ``config_cls`` all keywords go
        straight to the factory.
        """
        entry = self.get(name)
        if entry.config_cls is None:
            if config is not None:
                raise ConfigurationError(
                    f"{self.kind} {name!r} does not take a config object"
                )
            return entry.factory(**overrides)

        factory_params = self._factory_params(entry)
        field_names = {f.name for f in fields(entry.config_cls)}
        config_overrides: Dict[str, Any] = {}
        init_kwargs: Dict[str, Any] = {}
        for key, value in overrides.items():
            head = str(key).partition(".")[0]
            if head in field_names:
                config_overrides[key] = value
            elif key in factory_params:
                init_kwargs[key] = value
            else:
                raise ConfigurationError(
                    f"unknown override {key!r} for {self.kind} {name!r}: neither a "
                    f"{entry.config_cls.__name__} field nor a constructor argument"
                )
        if config is None and not config_overrides:
            bound = None  # let the component apply its registered defaults
        else:
            bound = bind_config(entry.config_cls, config_overrides, base=config)
        return entry.factory(config=bound, **init_kwargs)

    @staticmethod
    def _factory_params(entry: RegistryEntry) -> set:
        try:
            parameters = inspect.signature(entry.factory).parameters
        except (TypeError, ValueError):
            return set()
        return {p for p in parameters if p != "config"}


#: The five component families (see module docstring).
DATASETS = Registry("dataset")
MODELS = Registry("model")
CONDENSERS = Registry("condenser")
ATTACKS = Registry("attack")
DEFENSES = Registry("defense")


def all_registries() -> Dict[str, Registry]:
    """Name → registry mapping of the five component families."""
    return {
        "datasets": DATASETS,
        "models": MODELS,
        "condensers": CONDENSERS,
        "attacks": ATTACKS,
        "defenses": DEFENSES,
    }
