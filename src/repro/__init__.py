"""Reproduction of "Backdoor Graph Condensation" (BGC, ICDE 2025).

The public API re-exports the main building blocks:

* datasets   — synthetic stand-ins for Cora / Citeseer / Flickr / Reddit,
* models     — GCN / SGC / GraphSAGE / MLP / APPNP / ChebyNet on a numpy
               autograd engine,
* condensation — DC-Graph, GCond, GCond-X and GC-SNTK condensers,
* attack     — the BGC attack, its ablations and baseline attacks,
* defenses   — Prune, Randsmooth and backdoor detectors,
* evaluation — CTA / ASR metrics and the train-on-condensed pipeline,
* registry   — the string-keyed component registries (DATASETS, MODELS,
               CONDENSERS, ATTACKS, DEFENSES) every name resolves through,
* api        — declarative ExperimentSpec / SweepSpec grids over
               attack × condenser × defense, executed by run_experiment /
               run_sweep.

Quickstart
----------
>>> from repro import load_dataset, make_condenser, BGC, BGCConfig
>>> from repro.utils import new_rng
>>> graph = load_dataset("cora", seed=0)
>>> condenser = make_condenser("gcond")
>>> result = BGC(BGCConfig(epochs=10)).run(graph, condenser, new_rng(0))

Or declaratively (a scenario as data, not code):

>>> from repro import ExperimentSpec, run_experiment
>>> spec = ExperimentSpec.from_dict({"dataset": "cora", "condenser": "gcond",
...                                  "attack": "bgc"})
>>> record = run_experiment(spec)   # doctest: +SKIP
"""

from repro.registry import (
    ATTACKS,
    CONDENSERS,
    DATASETS,
    DEFENSES,
    MODELS,
    Registry,
    all_registries,
)
from repro.datasets import load_dataset, list_datasets
from repro.condensation import (
    CondensationConfig,
    CondensedGraph,
    make_condenser,
    available_condensers,
)
from repro.models import make_model, available_architectures, Trainer, TrainingConfig
from repro.attack import BGC, BGCConfig, BGCResult, TriggerConfig, SelectionConfig
from repro.defenses import (
    PruneDefense,
    PruneConfig,
    RandSmoothDefense,
    RandSmoothConfig,
)
from repro.evaluation import (
    EvaluationConfig,
    ExperimentRunner,
    attack_success_rate,
    clean_test_accuracy,
)
from repro.api import (
    ComponentSpec,
    ExperimentSpec,
    RunRecord,
    SweepSpec,
    run_experiment,
    run_sweep,
)
from repro.exceptions import ReproError

__version__ = "1.1.0"

__all__ = [
    "Registry",
    "all_registries",
    "DATASETS",
    "MODELS",
    "CONDENSERS",
    "ATTACKS",
    "DEFENSES",
    "load_dataset",
    "list_datasets",
    "CondensationConfig",
    "CondensedGraph",
    "make_condenser",
    "available_condensers",
    "make_model",
    "available_architectures",
    "Trainer",
    "TrainingConfig",
    "BGC",
    "BGCConfig",
    "BGCResult",
    "TriggerConfig",
    "SelectionConfig",
    "PruneDefense",
    "PruneConfig",
    "RandSmoothDefense",
    "RandSmoothConfig",
    "EvaluationConfig",
    "ExperimentRunner",
    "attack_success_rate",
    "clean_test_accuracy",
    "ComponentSpec",
    "ExperimentSpec",
    "SweepSpec",
    "RunRecord",
    "run_experiment",
    "run_sweep",
    "ReproError",
    "__version__",
]
