"""Reproduction of "Backdoor Graph Condensation" (BGC, ICDE 2025).

The public API re-exports the main building blocks:

* datasets   — synthetic stand-ins for Cora / Citeseer / Flickr / Reddit,
* models     — GCN / SGC / GraphSAGE / MLP / APPNP / ChebyNet on a numpy
               autograd engine,
* condensation — DC-Graph, GCond, GCond-X and GC-SNTK condensers,
* attack     — the BGC attack, its ablations and baseline attacks,
* defenses   — Prune and Randsmooth,
* evaluation — CTA / ASR metrics and the train-on-condensed pipeline.

Quickstart
----------
>>> from repro import load_dataset, make_condenser, BGC, BGCConfig
>>> from repro.utils import new_rng
>>> graph = load_dataset("cora", seed=0)
>>> condenser = make_condenser("gcond")
>>> result = BGC(BGCConfig(epochs=10)).run(graph, condenser, new_rng(0))
"""

from repro.datasets import load_dataset, list_datasets
from repro.condensation import (
    CondensationConfig,
    CondensedGraph,
    make_condenser,
    available_condensers,
)
from repro.models import make_model, available_architectures, Trainer, TrainingConfig
from repro.attack import BGC, BGCConfig, BGCResult, TriggerConfig, SelectionConfig
from repro.evaluation import (
    EvaluationConfig,
    ExperimentRunner,
    attack_success_rate,
    clean_test_accuracy,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "load_dataset",
    "list_datasets",
    "CondensationConfig",
    "CondensedGraph",
    "make_condenser",
    "available_condensers",
    "make_model",
    "available_architectures",
    "Trainer",
    "TrainingConfig",
    "BGC",
    "BGCConfig",
    "BGCResult",
    "TriggerConfig",
    "SelectionConfig",
    "EvaluationConfig",
    "ExperimentRunner",
    "attack_success_rate",
    "clean_test_accuracy",
    "ReproError",
    "__version__",
]
