"""Module system: parameter containers and common layers.

The API intentionally mirrors a minimal subset of ``torch.nn`` so that the
GNN model code reads like the reference implementation: ``Module`` tracks
parameters and submodules recursively, ``Linear`` provides a dense layer with
Glorot initialisation, and ``Sequential`` chains callables.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.autograd import functional as F
from repro.exceptions import AutogradError


class Parameter(Tensor):
    """A tensor flagged as trainable (``requires_grad=True``)."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


def glorot(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=tuple(shape))


class Module:
    """Base class providing recursive parameter discovery and train/eval mode."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -------------------------------------------------------------- #
    # Registration
    # -------------------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a submodule (used for module lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its submodules."""
        params: List[Parameter] = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -------------------------------------------------------------- #
    # Train / eval state
    # -------------------------------------------------------------- #
    def train(self) -> "Module":
        """Switch this module (recursively) to training mode."""
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        """Switch this module (recursively) to evaluation mode."""
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    # -------------------------------------------------------------- #
    # State dict (flat copies of parameter arrays)
    # -------------------------------------------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return copies of all parameter arrays keyed by qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        current = dict(self.named_parameters())
        missing = set(current) - set(state)
        unexpected = set(state) - set(current)
        if missing or unexpected:
            raise AutogradError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in current.items():
            array = np.asarray(state[name], dtype=np.float64)
            if array.shape != param.data.shape:
                raise AutogradError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {array.shape}"
                )
            param.data = array.copy()

    # -------------------------------------------------------------- #
    # Forward
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Dense affine layer ``y = x W + b`` with Glorot-initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot((in_features, out_features), rng), name="weight")
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.use_bias:
            out = out + self.bias.reshape(1, -1)
        return out


class ReLU(Module):
    """Module wrapper around the ReLU nonlinearity."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Dropout(Module):
    """Inverted dropout layer with its own random stream."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise AutogradError(f"dropout rate must lie in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)


class Sequential(Module):
    """Chains modules (or plain callables) in order."""

    def __init__(self, *layers) -> None:
        super().__init__()
        self._layers: List[Callable] = []
        for index, layer in enumerate(layers):
            self._layers.append(layer)
            if isinstance(layer, Module):
                self.register_module(f"layer_{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)
