"""First-order optimisers for :class:`~repro.autograd.module.Parameter` lists."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor
from repro.exceptions import AutogradError


class Optimizer:
    """Base optimiser: tracks a parameter list and clears their gradients."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise AutogradError("optimizer constructed with an empty parameter list")
        if lr <= 0:
            raise AutogradError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Reset gradients of all tracked parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise AutogradError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                velocity = grad if velocity is None else self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with optional weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise AutogradError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._first_moment.get(id(param), np.zeros_like(param.data))
            v = self._second_moment.get(id(param), np.zeros_like(param.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._first_moment[id(param)] = m
            self._second_moment[id(param)] = v
            m_hat = m / (1.0 - self.beta1 ** t)
            v_hat = v / (1.0 - self.beta2 ** t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
