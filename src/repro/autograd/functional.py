"""Differentiable functional building blocks used by the GNN models.

Everything here composes :class:`~repro.autograd.tensor.Tensor` primitives, so
gradients flow without any additional backward rules except for the fused
``log_softmax`` (implemented with its own numerically-stable vjp).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor, is_grad_enabled, sparse_matmul
from repro.exceptions import AutogradError
from repro.kernels import active_backend

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "spmm",
    "one_hot",
    "l2_norm_squared",
    "straight_through_binarize",
    "transpose_last2",
    "batched_matmul",
    "batched_gcn_normalize",
    "embed_blocks",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky rectified linear unit: ``x`` where positive, ``slope * x`` elsewhere.

    Composed as an elementwise product with the constant slope mask, so the
    existing multiply vjp yields the exact piecewise derivative (the
    non-differentiable point at 0 takes the negative-slope branch).
    """
    mask = (x.data > 0).astype(np.float64)
    scale = mask + negative_slope * (1.0 - mask)
    return x * Tensor(scale)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def spmm(matrix, x: Tensor) -> Tensor:
    """Sparse-dense matrix product (alias of :func:`sparse_matmul`)."""
    return sparse_matmul(matrix, x)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    data = x.data
    shifted = data - data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=axis, keepdims=True)
    log_probs = shifted - np.log(denom)
    probs = exp / denom

    def vjp(g: np.ndarray) -> np.ndarray:
        return g - probs * g.sum(axis=axis, keepdims=True)

    if not is_grad_enabled() or not x.requires_grad:
        return Tensor(log_probs, requires_grad=False)
    return Tensor(log_probs, requires_grad=True, parents=[(x, vjp)])


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (via :func:`log_softmax` for stability)."""
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise AutogradError(f"one_hot expects a 1-D label array, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise AutogradError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoding = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoding[np.arange(labels.shape[0]), labels] = 1.0
    return encoding


def nll_loss(log_probs: Tensor, labels: np.ndarray, weights: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood given log-probabilities and integer labels.

    Parameters
    ----------
    log_probs:
        Tensor of shape ``(n, C)`` containing log-probabilities.
    labels:
        Integer class indices of shape ``(n,)``.
    weights:
        Optional per-example weights of shape ``(n,)``; defaults to uniform.
    """
    weighted_targets = _weighted_targets(log_probs.shape, labels, weights)
    picked = log_probs * Tensor(weighted_targets)
    return -picked.sum()


def _weighted_targets(
    shape, labels: np.ndarray, weights: Optional[np.ndarray]
) -> np.ndarray:
    """One-hot targets scaled by normalised per-example weights.

    Shared by the unfused :func:`nll_loss` and the fused
    :func:`cross_entropy` so the two paths validate and normalise
    identically (bit for bit).
    """
    labels = np.asarray(labels, dtype=np.int64)
    n, num_classes = shape
    if labels.shape[0] != n:
        raise AutogradError(
            f"labels length {labels.shape[0]} does not match batch size {n}"
        )
    targets = one_hot(labels, num_classes)
    if weights is None:
        weights = np.full(n, 1.0 / max(n, 1))
    else:
        weights = np.asarray(weights, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise AutogradError("weights must sum to a positive value")
        weights = weights / total
    return targets * weights[:, None]


def cross_entropy(
    logits: Tensor, labels: np.ndarray, weights: Optional[np.ndarray] = None
) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``labels``.

    Runs the kernel backend's fused ``softmax_xent`` pass — one traversal
    for the loss and the saved probabilities instead of the
    ``nll_loss(log_softmax(...))`` chain's four tensor nodes.  The fused
    kernels replay the chain's operation order exactly, so loss and
    gradients stay bit-identical to the unfused composition (asserted in
    ``tests/test_kernel_conformance.py``).
    """
    if logits.ndim != 2:
        raise AutogradError(
            f"cross_entropy expects (n, C) logits, got shape {logits.shape}"
        )
    weighted_targets = _weighted_targets(logits.shape, labels, weights)
    loss, probs = active_backend().softmax_xent(logits.data, weighted_targets)

    def vjp(g: np.ndarray) -> np.ndarray:
        return active_backend().softmax_xent_grad(g, probs, weighted_targets)

    if not is_grad_enabled() or not logits.requires_grad:
        return Tensor(loss, requires_grad=False)
    return Tensor(loss, requires_grad=True, parents=[(logits, vjp)])


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    target_tensor = Tensor(np.asarray(target, dtype=np.float64))
    diff = prediction - target_tensor
    return (diff * diff).mean()


def l2_norm_squared(x: Tensor) -> Tensor:
    """Squared Frobenius norm of a tensor."""
    return (x * x).sum()


def straight_through_binarize(x: Tensor, threshold: float = 0.5) -> Tensor:
    """Binarise in the forward pass, identity gradient in the backward pass.

    Used for generated trigger adjacencies: the graph structure is discrete,
    so the forward value is ``x > threshold`` while gradients flow as if the
    operation were the identity (straight-through estimator).
    """
    binary = (x.data > threshold).astype(np.float64)
    if not is_grad_enabled() or not x.requires_grad:
        return Tensor(binary, requires_grad=False)
    return Tensor(binary, requires_grad=True, parents=[(x, lambda g: g)])


def transpose_last2(x: Tensor) -> Tensor:
    """Swap the last two axes of an ``(..., m, n)`` tensor.

    The batched counterpart of :attr:`Tensor.T`: applied to a stack of
    matrices it transposes each matrix independently, which is what the
    batched trigger loss needs to symmetrise ``(B, t, t)`` structure blocks.
    """
    if x.ndim < 2:
        raise AutogradError(f"transpose_last2 expects ndim >= 2, got shape {x.shape}")
    out_data = active_backend().transpose_last2(x.data)

    def vjp(g: np.ndarray) -> np.ndarray:
        return np.swapaxes(g, -1, -2)

    if not is_grad_enabled() or not x.requires_grad:
        return Tensor(out_data, requires_grad=False)
    return Tensor(out_data, requires_grad=True, parents=[(x, vjp)])


def batched_matmul(a: Tensor, b: Tensor) -> Tensor:
    """Batched matrix product ``(B, m, k) @ (B, k, n) -> (B, m, n)``.

    Both operands must carry the same leading batch dimension; the vjps are
    the batched analogues of the 2-D matmul rules.
    """
    a = Tensor._ensure_tensor(a)
    b = Tensor._ensure_tensor(b)
    if a.ndim != 3 or b.ndim != 3:
        raise AutogradError(
            f"batched_matmul expects 3-D operands, got {a.shape} and {b.shape}"
        )
    if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
        raise AutogradError(
            f"batched_matmul shapes incompatible: {a.shape} and {b.shape}"
        )
    a_data, b_data = a.data, b.data
    out_data = active_backend().batched_matmul(a_data, b_data)
    parents = [
        (a, lambda g: active_backend().batched_matmul(g, np.swapaxes(b_data, -1, -2))),
        (b, lambda g: active_backend().batched_matmul(np.swapaxes(a_data, -1, -2), g)),
    ]
    requires = a.requires_grad or b.requires_grad
    if not is_grad_enabled() or not requires:
        return Tensor(out_data, requires_grad=False)
    return Tensor(out_data, requires_grad=True, parents=parents)


def batched_gcn_normalize(adjacency: Tensor, epsilon: float = 1e-12) -> Tensor:
    """Fused symmetric GCN normalisation of ``(B, m, m)`` adjacency blocks.

    Computes ``D^-1/2 (A + I) D^-1/2`` per block with one analytic vjp
    instead of chaining add / sum / pow / mul / transpose primitives: the
    unfused chain materialises an ``(B, m, m)`` intermediate (plus its
    upstream gradient) per primitive, which made the normalisation the
    dominant cost of a trigger-generator step.  Forward values match the
    primitive chain ``(L * s) * transpose_last2(s)`` exactly — same operation
    order, same ``epsilon`` placement — and the vjp is the sum of the three
    chain-rule paths (direct product term plus the two degree terms through
    ``s = (d + epsilon) ** -0.5``).
    """
    adjacency = Tensor._ensure_tensor(adjacency)
    if adjacency.ndim != 3 or adjacency.shape[-1] != adjacency.shape[-2]:
        raise AutogradError(
            f"batched_gcn_normalize expects (B, m, m) blocks, got {adjacency.shape}"
        )
    m = adjacency.shape[-1]
    with_loops = adjacency.data + np.eye(m)
    degrees = with_loops.sum(axis=2, keepdims=True)
    inv_sqrt = (degrees + epsilon) ** -0.5
    inv_sqrt_t = np.swapaxes(inv_sqrt, -1, -2)
    out_data = (with_loops * inv_sqrt) * inv_sqrt_t

    def vjp(g: np.ndarray) -> np.ndarray:
        ds_row = (g * with_loops * inv_sqrt_t).sum(axis=2, keepdims=True)
        ds_col = (g * with_loops * inv_sqrt).sum(axis=1, keepdims=True)
        ds = ds_row + np.swapaxes(ds_col, -1, -2)
        dd = -0.5 * (degrees + epsilon) ** -1.5 * ds
        return g * inv_sqrt * inv_sqrt_t + dd

    if not is_grad_enabled() or not adjacency.requires_grad:
        return Tensor(out_data, requires_grad=False)
    return Tensor(out_data, requires_grad=True, parents=[(adjacency, vjp)])


def embed_blocks(base: np.ndarray, blocks: Tensor, row_start: int, col_start: int) -> Tensor:
    """Write differentiable sub-blocks into a constant batched matrix.

    ``base`` is a constant ``(B, m, m)`` array; ``blocks`` is a ``(B, t, s)``
    tensor scattered into ``base[:, row_start:row_start+t,
    col_start:col_start+s]``.  The gradient w.r.t. ``blocks`` is the matching
    slice of the upstream gradient; ``base`` receives none (it is constant by
    construction — the host-graph part of a trigger computation graph).
    """
    base = np.asarray(base, dtype=np.float64)
    if base.ndim != 3 or blocks.ndim != 3 or base.shape[0] != blocks.shape[0]:
        raise AutogradError(
            f"embed_blocks expects (B, m, n) base and (B, t, s) blocks, got "
            f"{base.shape} and {blocks.shape}"
        )
    t, s = blocks.shape[1], blocks.shape[2]
    rows = slice(row_start, row_start + t)
    cols = slice(col_start, col_start + s)
    if row_start < 0 or col_start < 0 or row_start + t > base.shape[1] or col_start + s > base.shape[2]:
        raise AutogradError(
            f"block ({t}, {s}) at ({row_start}, {col_start}) exceeds base {base.shape}"
        )
    out_data = active_backend().embed_blocks(base, blocks.data, row_start, col_start)

    def vjp(g: np.ndarray) -> np.ndarray:
        return g[:, rows, cols]

    if not is_grad_enabled() or not blocks.requires_grad:
        return Tensor(out_data, requires_grad=False)
    return Tensor(out_data, requires_grad=True, parents=[(blocks, vjp)])


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with keep-probability ``1 - rate``."""
    if not 0.0 <= rate < 1.0:
        raise AutogradError(f"dropout rate must lie in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
