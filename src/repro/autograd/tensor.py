"""Core :class:`Tensor` type and reverse-mode backpropagation.

The design follows the classic tape-based approach: every differentiable
operation returns a new ``Tensor`` holding references to its parents and a
list of ``(parent, vjp)`` pairs, where ``vjp`` maps the upstream gradient to
the contribution for that parent.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients.

Dense data is stored as ``numpy.ndarray`` (float64 by default).  Sparse
matrices participate only as *constants* on the left side of
``sparse_matmul`` (graph propagation), which is exactly how GNNs use them.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import AutogradError
from repro.kernels import active_backend

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction inside its block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != np.float64:
            return data.astype(np.float64)
        return data
    return np.asarray(data, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were of size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and backward graph node.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    parents:
        Internal — ``(parent, vjp)`` pairs populated by primitive ops.
    name:
        Optional human-readable label used in error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Optional[List[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = parents or []
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a one-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise AutogradError(f"item() called on tensor of shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a new leaf tensor with copied data."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure_tensor(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: List[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]],
    ) -> "Tensor":
        requires = any(p.requires_grad for p, _ in parents)
        if not is_grad_enabled() or not requires:
            return Tensor(data, requires_grad=False)
        return Tensor(data, requires_grad=True, parents=parents)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure_tensor(other)
        out_data = self.data + other.data
        parents = [
            (self, lambda g: _unbroadcast(g, self.shape)),
            (other, lambda g: _unbroadcast(g, other.shape)),
        ]
        return self._make(out_data, parents)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self._make(-self.data, [(self, lambda g: -g)])

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure_tensor(other)
        out_data = self.data - other.data
        parents = [
            (self, lambda g: _unbroadcast(g, self.shape)),
            (other, lambda g: _unbroadcast(-g, other.shape)),
        ]
        return self._make(out_data, parents)

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._ensure_tensor(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure_tensor(other)
        out_data = self.data * other.data
        parents = [
            (self, lambda g: _unbroadcast(g * other.data, self.shape)),
            (other, lambda g: _unbroadcast(g * self.data, other.shape)),
        ]
        return self._make(out_data, parents)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure_tensor(other)
        out_data = self.data / other.data
        parents = [
            (self, lambda g: _unbroadcast(g / other.data, self.shape)),
            (other, lambda g: _unbroadcast(-g * self.data / (other.data ** 2), other.shape)),
        ]
        return self._make(out_data, parents)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._ensure_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutogradError("tensor exponents are not supported")
        out_data = self.data ** exponent
        base = self.data

        def vjp(g: np.ndarray) -> np.ndarray:
            return g * exponent * base ** (exponent - 1)

        return self._make(out_data, [(self, vjp)])

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Matrix product ``self @ other`` (2-D operands)."""
        other = self._ensure_tensor(other)
        if self.ndim != 2 or other.ndim != 2:
            raise AutogradError(
                f"matmul expects 2-D operands, got {self.shape} and {other.shape}"
            )
        out_data = active_backend().matmul(self.data, other.data)
        a_data, b_data = self.data, other.data
        parents = [
            (self, lambda g: active_backend().matmul(g, b_data.T)),
            (other, lambda g: active_backend().matmul(a_data.T, g)),
        ]
        return self._make(out_data, parents)

    def transpose(self) -> "Tensor":
        """Matrix transpose for 2-D tensors."""
        if self.ndim != 2:
            raise AutogradError(f"transpose expects a 2-D tensor, got shape {self.shape}")
        return self._make(self.data.T.copy(), [(self, lambda g: g.T)])

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        original = self.shape
        out_data = self.data.reshape(*shape)
        return self._make(out_data, [(self, lambda g: g.reshape(original))])

    def inverse(self) -> "Tensor":
        """Matrix inverse of a square 2-D tensor.

        The vjp uses ``d(A^{-1}) = -A^{-1} dA A^{-1}``, i.e.
        ``grad_A = -A^{-T} G A^{-T}``.
        """
        if self.ndim != 2 or self.shape[0] != self.shape[1]:
            raise AutogradError(f"inverse expects a square matrix, got shape {self.shape}")
        inv = np.linalg.inv(self.data)

        def vjp(g: np.ndarray) -> np.ndarray:
            return -inv.T @ g @ inv.T

        return self._make(inv, [(self, vjp)])

    # ------------------------------------------------------------------ #
    # Reductions and elementwise functions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def vjp(g: np.ndarray) -> np.ndarray:
            g_arr = np.asarray(g, dtype=np.float64)
            if axis is None:
                return np.broadcast_to(g_arr, shape).copy()
            g_expanded = g_arr if keepdims else np.expand_dims(g_arr, axis)
            return np.broadcast_to(g_expanded, shape).copy()

        return self._make(np.asarray(out_data, dtype=np.float64), [(self, vjp)])

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return self._make(out_data, [(self, lambda g: g * out_data)])

    def log(self) -> "Tensor":
        data = self.data
        out_data = np.log(data)
        return self._make(out_data, [(self, lambda g: g / data)])

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return self._make(out_data, [(self, lambda g: g * 0.5 / out_data)])

    def abs(self) -> "Tensor":
        data = self.data
        return self._make(np.abs(data), [(self, lambda g: g * np.sign(data))])

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return self._make(self.data * mask, [(self, lambda g: g * mask)])

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return self._make(out_data, [(self, lambda g: g * out_data * (1.0 - out_data))])

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return self._make(out_data, [(self, lambda g: g * (1.0 - out_data ** 2))])

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)
        return self._make(out_data, [(self, lambda g: g * mask)])

    # ------------------------------------------------------------------ #
    # Indexing / slicing
    # ------------------------------------------------------------------ #
    def index_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows by integer index (gradient scatters back)."""
        idx = np.asarray(index, dtype=np.int64)
        out_data = self.data[idx]
        shape = self.shape
        # Strictly-increasing (hence duplicate-free) indices scatter with
        # plain fancy assignment, far cheaper than the accumulating
        # np.add.at; unsorted indices take the general path even if unique.
        unique_rows = idx.size < 2 or bool(np.all(np.diff(idx) > 0))

        def vjp(g: np.ndarray) -> np.ndarray:
            return active_backend().scatter_add_rows(shape, idx, g, unique_rows)

        return self._make(out_data, [(self, vjp)])

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, (np.ndarray, list)):
            return self.index_rows(np.asarray(index))
        out_data = self.data[index]
        shape = self.shape

        def vjp(g: np.ndarray) -> np.ndarray:
            full = np.zeros(shape, dtype=np.float64)
            full[index] = g
            return full

        return self._make(np.asarray(out_data, dtype=np.float64), [(self, vjp)])

    # ------------------------------------------------------------------ #
    # Composition helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient routing."""
        tensors = [Tensor._ensure_tensor(t) for t in tensors]
        datas = [t.data for t in tensors]
        out_data = np.concatenate(datas, axis=axis)
        parents: List[Tuple[Tensor, Callable[[np.ndarray], np.ndarray]]] = []
        offset = 0
        for t in tensors:
            length = t.shape[axis]
            start, stop = offset, offset + length

            def make_vjp(start_: int, stop_: int):
                def vjp(g: np.ndarray) -> np.ndarray:
                    slicer = [slice(None)] * g.ndim
                    slicer[axis] = slice(start_, stop_)
                    return g[tuple(slicer)]

                return vjp

            parents.append((t, make_vjp(start, stop)))
            offset = stop
        requires = any(t.requires_grad for t in tensors)
        if not is_grad_enabled() or not requires:
            return Tensor(out_data, requires_grad=False)
        return Tensor(out_data, requires_grad=True, parents=parents)

    @staticmethod
    def stack_rows(tensors: Sequence["Tensor"]) -> "Tensor":
        """Stack 1-D tensors into a 2-D tensor (rows)."""
        reshaped = [t.reshape(1, -1) if t.ndim == 1 else t for t in tensors]
        return Tensor.concatenate(reshaped, axis=0)

    # ------------------------------------------------------------------ #
    # Backward
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1.0`` for scalar tensors.
        """
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = grad.reshape(self.data.shape)

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                # Leaf tensor: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            if node.requires_grad and node._parents:
                # Interior node: optionally keep grad for inspection.
                pass
            for parent, vjp in node._parents:
                if not parent.requires_grad:
                    continue
                contribution = vjp(node_grad)
                existing = grads.get(id(parent))
                grads[id(parent)] = contribution if existing is None else existing + contribution

    def _topological_order(self) -> List["Tensor"]:
        visited: set[int] = set()
        order: List[Tensor] = []

        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order


# ---------------------------------------------------------------------- #
# Sparse propagation
# ---------------------------------------------------------------------- #
def sparse_matmul(matrix: sp.spmatrix, tensor: Tensor) -> Tensor:
    """Multiply a constant sparse matrix by a dense tensor: ``matrix @ tensor``.

    The sparse operand is treated as a constant (no gradient), which matches
    GNN propagation where the normalised adjacency is fixed during a forward
    pass.  The gradient w.r.t. the dense operand is ``matrix.T @ grad``.
    """
    if not sp.issparse(matrix):
        raise AutogradError("sparse_matmul expects a scipy sparse matrix as first operand")
    csr = matrix.tocsr()
    out_data = active_backend().spmm(csr, tensor.data)
    transposed = csr.T.tocsr()
    parents = [(tensor, lambda g: active_backend().spmm(transposed, g))]
    if not is_grad_enabled() or not tensor.requires_grad:
        return Tensor(out_data, requires_grad=False)
    return Tensor(out_data, requires_grad=True, parents=parents)
