"""A small reverse-mode automatic-differentiation engine on numpy.

This subpackage replaces PyTorch autograd in the original BGC implementation.
It provides:

* :class:`~repro.autograd.tensor.Tensor` — an n-d array wrapper carrying a
  gradient and a backward closure,
* differentiable primitives (matmul, sparse matmul, elementwise ops,
  reductions, softmax/log-softmax, …) exposed as ``Tensor`` methods and in
  :mod:`repro.autograd.functional`,
* :class:`~repro.autograd.module.Module` / :class:`~repro.autograd.module.Linear`
  building blocks with parameter management,
* :class:`~repro.autograd.optim.SGD` and :class:`~repro.autograd.optim.Adam`
  optimisers.

The engine supports single backward passes, which is all BGC needs once the
condensation surrogate's parameter gradient is written in closed form (see
``DESIGN.md``).
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.module import Module, Parameter, Linear, Sequential, Dropout, ReLU
from repro.autograd.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Sequential",
    "Dropout",
    "ReLU",
    "SGD",
    "Adam",
    "Optimizer",
]
