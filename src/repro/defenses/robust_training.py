"""Robust-training defenses: DropEdge and DropNode.

Unlike the dataset-level (``apply_to_condensed``) and model-level (``wrap``)
defenses, these change *how the customer trains*: every forward pass during
training sees a randomly perturbed view of the condensed graph — DropEdge
(Rong et al., 2020) removes each undirected edge with probability
``drop_rate``; DropNode (GRAND, Feng et al., 2020) zeroes whole node feature
rows and rescales the survivors by ``1 / (1 - drop_rate)`` so activations
stay unbiased.  Inference always runs on the unperturbed graph.

Both defenses implement the ``retrain`` protocol consumed by
:func:`repro.api.runner._apply_defense`: they rebuild the evaluation model,
wrap it in a training-time perturbation module and fit it on the (possibly
attacked) condensed graph.  GC-SNTK condensed graphs have no training loop to
perturb, so they fall back to the undefended predictor with a warning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.condensation.base import CondensedGraph
from repro.exceptions import DefenseError
from repro.graph.data import GraphData
from repro.models.base import Adjacency, NodeClassifier, make_model
from repro.models.trainer import Trainer, TrainingConfig
from repro.autograd import Tensor
from repro.registry import DEFENSES
from repro.utils.logging import get_logger

logger = get_logger("defenses.robust_training")


@dataclass
class DropEdgeConfig:
    """Configuration of the DropEdge robust-training defense."""

    drop_rate: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise DefenseError(f"drop_rate must lie in [0, 1), got {self.drop_rate}")


@dataclass
class DropNodeConfig:
    """Configuration of the DropNode robust-training defense."""

    drop_rate: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise DefenseError(f"drop_rate must lie in [0, 1), got {self.drop_rate}")


def drop_edges(
    adjacency: Adjacency, drop_rate: float, rng: np.random.Generator
) -> Adjacency:
    """Remove each undirected off-diagonal edge with probability ``drop_rate``.

    Self-loops and the weights of surviving edges are preserved; symmetric
    entry pairs are dropped together (one Bernoulli draw per undirected
    edge).
    """
    if drop_rate == 0.0:
        return adjacency
    if sp.issparse(adjacency):
        coo = adjacency.tocoo()
        mask_upper = coo.row < coo.col
        rows, cols = coo.row[mask_upper], coo.col[mask_upper]
        dropped = rng.random(rows.size) < drop_rate
        if not dropped.any():
            return adjacency.tocsr()
        num_nodes = adjacency.shape[0]
        dropped_ids = (
            rows[dropped].astype(np.int64) * num_nodes
            + cols[dropped].astype(np.int64)
        )
        lo = np.minimum(coo.row, coo.col).astype(np.int64)
        hi = np.maximum(coo.row, coo.col).astype(np.int64)
        keep = ~np.isin(lo * num_nodes + hi, dropped_ids)
        return sp.csr_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])),
            shape=adjacency.shape,
        )
    dense = np.asarray(adjacency, dtype=np.float64).copy()
    upper = np.triu(np.ones_like(dense, dtype=bool), k=1)
    drop = (rng.random(dense.shape) < drop_rate) & upper & (dense != 0)
    dense[drop] = 0.0
    dense[drop.T] = 0.0
    return dense


class _RobustTrainingModel(NodeClassifier):
    """Wraps a node classifier with a per-forward training-time perturbation.

    In training mode every ``forward`` sees a freshly perturbed
    ``(adjacency, features)`` pair; in eval mode (and therefore in
    ``predict``) the wrapper is transparent.
    """

    def __init__(self, base: NodeClassifier, rng: np.random.Generator) -> None:
        super().__init__(base.in_features, base.num_classes)
        self.register_module("base", base)
        self._rng = rng

    def _perturb(self, adjacency: Adjacency, features):
        raise NotImplementedError

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        if self.training:
            adjacency, features = self._perturb(adjacency, features)
        return self.base.forward(adjacency, features)


class _DropEdgeModel(_RobustTrainingModel):
    def __init__(self, base: NodeClassifier, config: DropEdgeConfig, rng) -> None:
        super().__init__(base, rng)
        self.config = config

    def _perturb(self, adjacency, features):
        return drop_edges(adjacency, self.config.drop_rate, self._rng), features


class _DropNodeModel(_RobustTrainingModel):
    def __init__(self, base: NodeClassifier, config: DropNodeConfig, rng) -> None:
        super().__init__(base, rng)
        self.config = config

    def _perturb(self, adjacency, features):
        rate = self.config.drop_rate
        if rate == 0.0:
            return adjacency, features
        num_nodes = adjacency.shape[0]
        scale = (self._rng.random(num_nodes) >= rate) / (1.0 - rate)
        if isinstance(features, Tensor):
            return adjacency, features * Tensor(scale[:, None])
        return adjacency, np.asarray(features, dtype=np.float64) * scale[:, None]


class _RobustTrainingDefense:
    """Shared ``retrain`` protocol for the robust-training family."""

    #: Overridden by subclasses with the matching wrapper class.
    _model_cls: type

    def retrain(
        self,
        condensed: CondensedGraph,
        graph: GraphData,
        evaluation,
        rng: np.random.Generator,
    ) -> NodeClassifier:
        """Train the evaluation model under training-time perturbation."""
        # Imported lazily: the evaluation pipeline imports models/condensation
        # packages, and keeping the dependency one-way at import time avoids
        # a defense <-> evaluation cycle.
        from repro.evaluation.pipeline import train_model_on_condensed

        if condensed.method.split("+", 1)[0] == "gc-sntk":
            logger.warning(
                "%s has no training loop on GC-SNTK condensed graphs; "
                "returning the undefended KRR predictor",
                type(self).__name__,
            )
            return train_model_on_condensed(condensed, graph, evaluation, rng)
        base = make_model(
            evaluation.architecture,
            in_features=condensed.features.shape[1],
            num_classes=max(graph.num_classes, condensed.num_classes),
            rng=rng,
            hidden=evaluation.hidden,
            num_layers=evaluation.num_layers,
            dropout=evaluation.dropout,
        )
        wrapped = self._model_cls(base, self.config, rng)
        trainer = Trainer(
            wrapped,
            TrainingConfig(
                epochs=evaluation.epochs,
                lr=evaluation.lr,
                weight_decay=evaluation.weight_decay,
                patience=evaluation.epochs,
            ),
        )
        trainer.fit(
            condensed.adjacency,
            condensed.features,
            condensed.labels,
            train_index=np.arange(condensed.num_nodes),
        )
        return wrapped


@DEFENSES.register("dropedge", config_cls=DropEdgeConfig)
class DropEdgeDefense(_RobustTrainingDefense):
    """DropEdge: random edge removal on every training forward pass."""

    _model_cls = _DropEdgeModel

    def __init__(self, config: DropEdgeConfig | None = None) -> None:
        self.config = config or DropEdgeConfig()


@DEFENSES.register("dropnode", config_cls=DropNodeConfig)
class DropNodeDefense(_RobustTrainingDefense):
    """DropNode: random node-feature masking on every training forward pass."""

    _model_cls = _DropNodeModel

    def __init__(self, config: DropNodeConfig | None = None) -> None:
        self.config = config or DropNodeConfig()
