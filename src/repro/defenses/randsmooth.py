"""Randsmooth: randomised-subsampling smoothing with majority voting.

A model-level defense (Zhang et al., SACMAT 2021): at inference time the
graph is randomly subsampled ``num_samples`` times (each edge kept with
probability ``keep_probability``), the base model predicts on every sample,
and the final label is the per-node majority vote.  The defense trades clean
accuracy for robustness — the trade-off quantified in Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DefenseError
from repro.registry import DEFENSES
from repro.utils.logging import get_logger

logger = get_logger("defenses.randsmooth")


@dataclass
class RandSmoothConfig:
    """Configuration of the randomised-smoothing defense."""

    num_samples: int = 5
    keep_probability: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise DefenseError("num_samples must be >= 1")
        if not 0.0 < self.keep_probability <= 1.0:
            raise DefenseError(
                f"keep_probability must lie in (0, 1], got {self.keep_probability}"
            )


def _majority_vote_loop(stacked: np.ndarray) -> np.ndarray:
    """Per-node bincount/argmax reference implementation.

    Kept (unused in production) as the pinned semantics for
    :func:`_majority_vote`: the vectorised version must stay bit-identical
    to this loop.
    """
    num_nodes = stacked.shape[1]
    majority = np.empty(num_nodes, dtype=np.int64)
    for node in range(num_nodes):
        counts = np.bincount(stacked[:, node])
        majority[node] = int(np.argmax(counts))
    return majority


def _majority_vote(stacked: np.ndarray) -> np.ndarray:
    """Vectorised per-node majority vote over a ``(num_samples, num_nodes)`` array.

    Ties are broken toward the smallest class label (``argmax`` on the
    per-node count vector returns the first maximum), matching the per-node
    ``bincount``/``argmax`` loop this replaces bit for bit.
    """
    votes = stacked.astype(np.int64, copy=False)
    num_nodes = votes.shape[1]
    num_classes = int(votes.max()) + 1
    flat = votes + np.arange(num_nodes, dtype=np.int64)[None, :] * num_classes
    counts = np.bincount(flat.ravel(), minlength=num_nodes * num_classes)
    return counts.reshape(num_nodes, num_classes).argmax(axis=1).astype(np.int64)


class SmoothedModel:
    """Wraps any predictor with randomised edge subsampling + majority vote.

    The wrapped object only needs a ``predict(adjacency, features)`` method,
    so trained GNNs and the GC-SNTK KRR predictor both work.
    """

    def __init__(self, base_model, config: RandSmoothConfig | None = None) -> None:
        self.base_model = base_model
        self.config = config or RandSmoothConfig()

    def predict(self, adjacency: Union[sp.spmatrix, np.ndarray], features: np.ndarray) -> np.ndarray:
        """Majority-vote prediction over randomly subsampled graphs."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        votes: list[np.ndarray] = []
        for _ in range(config.num_samples):
            sampled = self._subsample(adjacency, rng)
            votes.append(self.base_model.predict(sampled, features))
        return _majority_vote(np.stack(votes, axis=0))

    def _subsample(
        self, adjacency: Union[sp.spmatrix, np.ndarray], rng: np.random.Generator
    ):
        keep = self.config.keep_probability
        if sp.issparse(adjacency):
            coo = adjacency.tocoo()
            mask_upper = coo.row < coo.col
            rows, cols = coo.row[mask_upper], coo.col[mask_upper]
            kept = rng.random(rows.size) < keep
            if kept.all():
                return adjacency.tocsr()
            num_nodes = adjacency.shape[0]
            # Drop each sampled-out undirected edge via its canonical id
            # (min*N+max): the mirror entry maps to the same id, diagonal
            # entries (r*N+r) are never candidates, and surviving entries
            # keep their original weights.
            dropped_ids = (
                rows[~kept].astype(np.int64) * num_nodes
                + cols[~kept].astype(np.int64)
            )
            lo = np.minimum(coo.row, coo.col).astype(np.int64)
            hi = np.maximum(coo.row, coo.col).astype(np.int64)
            entry_keep = ~np.isin(lo * num_nodes + hi, dropped_ids)
            return sp.csr_matrix(
                (coo.data[entry_keep], (coo.row[entry_keep], coo.col[entry_keep])),
                shape=adjacency.shape,
            )
        dense = np.asarray(adjacency, dtype=np.float64).copy()
        upper = np.triu(np.ones_like(dense, dtype=bool), k=1)
        drop = (rng.random(dense.shape) >= keep) & upper & (dense > 0)
        dense[drop] = 0.0
        dense[drop.T] = 0.0
        return dense


@DEFENSES.register("randsmooth", config_cls=RandSmoothConfig)
class RandSmoothDefense:
    """Factory wrapper matching the style of :class:`~repro.defenses.prune.PruneDefense`."""

    def __init__(self, config: RandSmoothConfig | None = None) -> None:
        self.config = config or RandSmoothConfig()

    def wrap(self, model) -> SmoothedModel:
        """Return the smoothed version of ``model``."""
        return SmoothedModel(model, self.config)
