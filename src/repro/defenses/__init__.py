"""Defense methods evaluated against BGC (Table IV) plus detection extensions."""

from repro.defenses.prune import PruneDefense, PruneConfig
from repro.defenses.randsmooth import RandSmoothDefense, RandSmoothConfig, SmoothedModel
from repro.defenses.detection import (
    DetectionReport,
    FeatureOutlierDetector,
    SpectralSignatureDetector,
    remove_flagged_nodes,
)

__all__ = [
    "PruneDefense",
    "PruneConfig",
    "RandSmoothDefense",
    "RandSmoothConfig",
    "SmoothedModel",
    "DetectionReport",
    "FeatureOutlierDetector",
    "SpectralSignatureDetector",
    "remove_flagged_nodes",
]
