"""Defense methods evaluated against BGC (Table IV) plus detection extensions."""

from repro.defenses.prune import PruneDefense, PruneConfig
from repro.defenses.randsmooth import RandSmoothDefense, RandSmoothConfig, SmoothedModel
from repro.defenses.robust_training import (
    DropEdgeConfig,
    DropEdgeDefense,
    DropNodeConfig,
    DropNodeDefense,
    drop_edges,
)
from repro.defenses.detection import (
    DetectionReport,
    FeatureOutlierConfig,
    FeatureOutlierDetector,
    SpectralSignatureConfig,
    SpectralSignatureDetector,
    remove_flagged_nodes,
)

__all__ = [
    "PruneDefense",
    "PruneConfig",
    "RandSmoothDefense",
    "RandSmoothConfig",
    "SmoothedModel",
    "DropEdgeDefense",
    "DropEdgeConfig",
    "DropNodeDefense",
    "DropNodeConfig",
    "drop_edges",
    "DetectionReport",
    "FeatureOutlierConfig",
    "FeatureOutlierDetector",
    "SpectralSignatureConfig",
    "SpectralSignatureDetector",
    "remove_flagged_nodes",
]
