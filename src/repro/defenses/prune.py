"""Prune: a dataset-level defense that removes low-similarity edges.

Following UGBA's defense baseline, the ``prune_fraction`` lowest-similarity
edges (endpoint feature cosine similarity) are removed.  The BGC paper
applies it to the condensed graph before the customer trains on it; this
implementation also supports pruning the (possibly triggered) evaluation
graph, which is how the defense would be deployed at inference time.

Selection is rank-based, not quantile-based: exactly ``floor(fraction * E)``
undirected edges are dropped, ties broken deterministically by ``(row, col)``,
so ``prune_fraction=0.0`` is a bit-for-bit no-op and the same edges are
removed by :meth:`PruneDefense.apply_to_condensed` and
:meth:`PruneDefense.apply_to_graph` for the same similarity profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.condensation.base import CondensedGraph
from repro.exceptions import DefenseError
from repro.graph.data import GraphData
from repro.registry import DEFENSES
from repro.utils.logging import get_logger

logger = get_logger("defenses.prune")


@dataclass
class PruneConfig:
    """Configuration of the edge-pruning defense."""

    prune_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.prune_fraction < 1.0:
            raise DefenseError(
                f"prune_fraction must lie in [0, 1), got {self.prune_fraction}"
            )


def _cosine_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cosine similarity between two equally shaped matrices."""
    numerator = (a * b).sum(axis=1)
    denominator = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1) + 1e-12
    return numerator / denominator


def _rank_drop_mask(
    similarities: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    fraction: float,
) -> np.ndarray:
    """Mark exactly ``floor(fraction * E)`` lowest-similarity edges for removal.

    Ties are broken by ``(row, col)`` so the selection is deterministic and
    independent of how many edges share the threshold similarity.
    """
    num_drop = int(fraction * similarities.size)
    drop = np.zeros(similarities.size, dtype=bool)
    if num_drop == 0:
        return drop
    order = np.lexsort((cols, rows, similarities))
    drop[order[:num_drop]] = True
    return drop


@DEFENSES.register("prune", config_cls=PruneConfig)
class PruneDefense:
    """Remove the lowest-similarity edges from a condensed or full graph."""

    def __init__(self, config: PruneConfig | None = None) -> None:
        self.config = config or PruneConfig()

    def apply_to_condensed(self, condensed: CondensedGraph) -> CondensedGraph:
        """Prune the condensed graph's (dense) adjacency."""
        pruned = condensed.copy()
        adjacency = pruned.adjacency
        rows, cols = np.nonzero(np.triu(adjacency, k=1))
        if rows.size == 0:
            return pruned
        similarities = _cosine_similarity(pruned.features[rows], pruned.features[cols])
        drop = _rank_drop_mask(similarities, rows, cols, self.config.prune_fraction)
        adjacency[rows[drop], cols[drop]] = 0.0
        adjacency[cols[drop], rows[drop]] = 0.0
        pruned.metadata["pruned_edges"] = float(drop.sum())
        logger.debug("pruned %d / %d condensed edges", int(drop.sum()), rows.size)
        return pruned

    def apply_to_graph(self, graph: GraphData) -> GraphData:
        """Prune a full (sparse) graph — e.g. the triggered evaluation graph.

        Only off-diagonal entries are candidates for removal; self-loops and
        the original edge weights of surviving entries are preserved.
        """
        coo = graph.adjacency.tocoo()
        mask_upper = coo.row < coo.col
        rows, cols = coo.row[mask_upper], coo.col[mask_upper]
        if rows.size == 0:
            return graph
        similarities = _cosine_similarity(graph.features[rows], graph.features[cols])
        drop = _rank_drop_mask(similarities, rows, cols, self.config.prune_fraction)
        if not drop.any():
            return graph
        num_nodes = graph.adjacency.shape[0]
        # Canonical undirected edge ids: both (r, c) and (c, r) map to
        # min*N+max, so dropping an upper edge removes its mirror too while
        # diagonal entries (id r*N+r) can never be selected.
        dropped_ids = rows[drop].astype(np.int64) * num_nodes + cols[drop].astype(np.int64)
        lo = np.minimum(coo.row, coo.col).astype(np.int64)
        hi = np.maximum(coo.row, coo.col).astype(np.int64)
        keep = ~np.isin(lo * num_nodes + hi, dropped_ids)
        pruned_adjacency = sp.csr_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])),
            shape=graph.adjacency.shape,
        )
        return graph.with_(adjacency=pruned_adjacency)
