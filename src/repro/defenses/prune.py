"""Prune: a dataset-level defense that removes low-similarity edges.

Following UGBA's defense baseline, edges whose endpoint feature cosine
similarity falls in the lowest ``prune_fraction`` quantile are removed.  The
BGC paper applies it to the condensed graph before the customer trains on it;
this implementation also supports pruning the (possibly triggered) evaluation
graph, which is how the defense would be deployed at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.condensation.base import CondensedGraph
from repro.exceptions import DefenseError
from repro.graph.data import GraphData
from repro.registry import DEFENSES
from repro.utils.logging import get_logger

logger = get_logger("defenses.prune")


@dataclass
class PruneConfig:
    """Configuration of the edge-pruning defense."""

    prune_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.prune_fraction < 1.0:
            raise DefenseError(
                f"prune_fraction must lie in [0, 1), got {self.prune_fraction}"
            )


def _cosine_similarity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cosine similarity between two equally shaped matrices."""
    numerator = (a * b).sum(axis=1)
    denominator = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1) + 1e-12
    return numerator / denominator


@DEFENSES.register("prune", config_cls=PruneConfig)
class PruneDefense:
    """Remove the lowest-similarity edges from a condensed or full graph."""

    def __init__(self, config: PruneConfig | None = None) -> None:
        self.config = config or PruneConfig()

    def apply_to_condensed(self, condensed: CondensedGraph) -> CondensedGraph:
        """Prune the condensed graph's (dense) adjacency."""
        pruned = condensed.copy()
        adjacency = pruned.adjacency
        rows, cols = np.nonzero(np.triu(adjacency, k=1))
        if rows.size == 0:
            return pruned
        similarities = _cosine_similarity(pruned.features[rows], pruned.features[cols])
        threshold = np.quantile(similarities, self.config.prune_fraction)
        drop = similarities <= threshold
        adjacency[rows[drop], cols[drop]] = 0.0
        adjacency[cols[drop], rows[drop]] = 0.0
        pruned.metadata["pruned_edges"] = float(drop.sum())
        logger.debug("pruned %d / %d condensed edges", int(drop.sum()), rows.size)
        return pruned

    def apply_to_graph(self, graph: GraphData) -> GraphData:
        """Prune a full (sparse) graph — e.g. the triggered evaluation graph."""
        coo = graph.adjacency.tocoo()
        mask_upper = coo.row < coo.col
        rows, cols = coo.row[mask_upper], coo.col[mask_upper]
        if rows.size == 0:
            return graph
        similarities = _cosine_similarity(graph.features[rows], graph.features[cols])
        threshold = np.quantile(similarities, self.config.prune_fraction)
        keep = similarities > threshold
        keep_rows = np.concatenate([rows[keep], cols[keep]])
        keep_cols = np.concatenate([cols[keep], rows[keep]])
        data = np.ones(keep_rows.size, dtype=np.float64)
        pruned_adjacency = sp.csr_matrix(
            (data, (keep_rows, keep_cols)), shape=graph.adjacency.shape
        )
        return graph.with_(adjacency=pruned_adjacency)
