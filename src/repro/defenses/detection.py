"""Detection-based defenses for condensed graphs (extension experiments).

The paper's discussion argues that detection- and prune-based defenses are
ineffective against BGC because the malicious information is distributed
across the *synthetic* nodes rather than carried by an explicit trigger.
This module implements two concrete detectors so that claim can be tested
quantitatively (see ``benchmarks/bench_ext_detection.py``):

* :class:`FeatureOutlierDetector` — flags condensed nodes whose features are
  far from their class centroid (z-score of the Euclidean distance).
* :class:`SpectralSignatureDetector` — the classic spectral-signature
  backdoor detector: flags nodes with the largest projection onto the top
  singular vector of the centred per-class feature matrix.

Both return per-node suspicion scores plus a boolean mask at a chosen
contamination rate, and a helper to rebuild a condensed graph with the
flagged nodes removed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from repro.condensation.base import CondensedGraph
from repro.exceptions import DefenseError
from repro.registry import DEFENSES
from repro.utils.logging import get_logger

logger = get_logger("defenses.detection")


@dataclass
class DetectionReport:
    """Outcome of running a detector on a condensed graph."""

    scores: np.ndarray
    flagged: np.ndarray
    contamination: float

    @property
    def num_flagged(self) -> int:
        return int(self.flagged.sum())

    def flagged_indices(self) -> np.ndarray:
        """Indices of the condensed nodes the detector would remove."""
        return np.flatnonzero(self.flagged)


def _validate_contamination(contamination: float) -> None:
    if not 0.0 < contamination < 1.0:
        raise DefenseError(f"contamination must lie in (0, 1), got {contamination}")


@dataclass
class FeatureOutlierConfig:
    """Configuration of the feature-outlier detector."""

    contamination: float = 0.1

    def __post_init__(self) -> None:
        _validate_contamination(self.contamination)


@dataclass
class SpectralSignatureConfig:
    """Configuration of the spectral-signature detector."""

    contamination: float = 0.1

    def __post_init__(self) -> None:
        _validate_contamination(self.contamination)


def _resolve_detector_config(config, contamination, config_cls):
    """Merge the legacy ``contamination=`` keyword with the config object."""
    if config is None:
        if contamination is None:
            return config_cls()
        return config_cls(contamination=contamination)
    if contamination is not None:
        return replace(config, contamination=contamination)
    return config


def _flag_top_scores(scores: np.ndarray, contamination: float) -> np.ndarray:
    """Boolean mask marking the ``contamination`` fraction of highest scores."""
    if not 0.0 < contamination < 1.0:
        raise DefenseError(f"contamination must lie in (0, 1), got {contamination}")
    num_flagged = max(1, int(round(contamination * scores.shape[0])))
    threshold_index = np.argsort(-scores)[:num_flagged]
    mask = np.zeros(scores.shape[0], dtype=bool)
    mask[threshold_index] = True
    return mask


@DEFENSES.register("feature-outlier", aliases=("outlier",), config_cls=FeatureOutlierConfig)
class FeatureOutlierDetector:
    """Z-score distance-to-class-centroid outlier detection."""

    def __init__(
        self,
        config: FeatureOutlierConfig | None = None,
        contamination: float | None = None,
    ) -> None:
        self.config = _resolve_detector_config(config, contamination, FeatureOutlierConfig)

    @property
    def contamination(self) -> float:
        return self.config.contamination

    def score(self, condensed: CondensedGraph) -> np.ndarray:
        """Per-node suspicion scores (larger = more anomalous)."""
        scores = np.zeros(condensed.num_nodes)
        for cls in np.unique(condensed.labels):
            members = np.flatnonzero(condensed.labels == cls)
            features = condensed.features[members]
            centroid = features.mean(axis=0)
            distances = np.linalg.norm(features - centroid, axis=1)
            spread = distances.std()
            if spread <= 1e-12:
                continue
            scores[members] = (distances - distances.mean()) / spread
        return scores

    def detect(self, condensed: CondensedGraph) -> DetectionReport:
        """Score every condensed node and flag the most anomalous ones."""
        scores = self.score(condensed)
        flagged = _flag_top_scores(scores, self.contamination)
        logger.debug("feature-outlier detector flagged %d nodes", int(flagged.sum()))
        return DetectionReport(scores=scores, flagged=flagged, contamination=self.contamination)


@DEFENSES.register("spectral-signature", aliases=("spectral",), config_cls=SpectralSignatureConfig)
class SpectralSignatureDetector:
    """Spectral-signature detection (Tran et al., 2018) adapted to condensed graphs."""

    def __init__(
        self,
        config: SpectralSignatureConfig | None = None,
        contamination: float | None = None,
    ) -> None:
        self.config = _resolve_detector_config(config, contamination, SpectralSignatureConfig)

    @property
    def contamination(self) -> float:
        return self.config.contamination

    def score(self, condensed: CondensedGraph) -> np.ndarray:
        """Squared projection of each node onto its class's top singular vector."""
        scores = np.zeros(condensed.num_nodes)
        for cls in np.unique(condensed.labels):
            members = np.flatnonzero(condensed.labels == cls)
            features = condensed.features[members]
            centred = features - features.mean(axis=0, keepdims=True)
            if centred.shape[0] < 2:
                continue
            # Top right-singular vector of the centred class feature matrix.
            _, _, vt = np.linalg.svd(centred, full_matrices=False)
            projections = centred @ vt[0]
            scores[members] = projections ** 2
        return scores

    def detect(self, condensed: CondensedGraph) -> DetectionReport:
        """Score every condensed node and flag the most anomalous ones."""
        scores = self.score(condensed)
        flagged = _flag_top_scores(scores, self.contamination)
        logger.debug("spectral-signature detector flagged %d nodes", int(flagged.sum()))
        return DetectionReport(scores=scores, flagged=flagged, contamination=self.contamination)


def remove_flagged_nodes(condensed: CondensedGraph, report: DetectionReport) -> CondensedGraph:
    """Return a copy of ``condensed`` with the flagged nodes removed.

    If removal would empty a class entirely, that class's least-suspicious
    flagged node is kept so the downstream model can still be trained.
    """
    keep = ~report.flagged.copy()
    for cls in np.unique(condensed.labels):
        members = np.flatnonzero(condensed.labels == cls)
        if not np.any(keep[members]):
            least_suspicious = members[np.argmin(report.scores[members])]
            keep[least_suspicious] = True
    indices = np.flatnonzero(keep)
    return CondensedGraph(
        features=condensed.features[indices],
        labels=condensed.labels[indices],
        adjacency=condensed.adjacency[np.ix_(indices, indices)],
        method=f"{condensed.method}+detection",
        source=condensed.source,
        ratio=condensed.ratio,
        metadata={**condensed.metadata, "removed_nodes": float((~keep).sum())},
    )


def detection_summary(condensed: CondensedGraph, reports: Dict[str, DetectionReport]) -> Dict[str, float]:
    """Aggregate statistics across detectors for reporting."""
    summary: Dict[str, float] = {"condensed_nodes": float(condensed.num_nodes)}
    for name, report in reports.items():
        summary[f"{name}_flagged"] = float(report.num_flagged)
        summary[f"{name}_max_score"] = float(report.scores.max()) if report.scores.size else 0.0
    return summary
