"""Budgeted node-injection attack with feature-bound projection.

Instead of re-labelling or re-wiring existing nodes, the injection attacker
(in the style of GREAT / GraphWar's ``injection_attacker``) *appends* a small
budget of fake nodes, wires each to a few real training hosts, and optimises
the fake features by projected gradient descent so the surrogate classifies
the injected neighbourhood as the target class.  Every candidate state is a
:class:`~repro.graph.view.GraphView` overlay — the base graph is never
copied, the appended rows live in the view's
:class:`~repro.graph.view.StackedFeatures` overlay block, and propagation is
served incrementally by
:meth:`~repro.graph.cache.PropagationCache.propagated_view` (the dirty set is
the hosts' K-hop neighbourhood, not the graph).

Feature bounds
--------------
Injected features are projected after every gradient step onto the
per-dimension ``[min, max]`` envelope of the *real* feature matrix, so no
fake node carries values outside the range an inspector would consider
plausible.  The projection is what keeps the attack budgeted in feature
space, exactly as GraphWar's ``feat_limits`` does.

Gradient
--------
The surrogate is linear (``Z = Â^K X W``), so the loss gradient with respect
to the injected feature rows is exact: with ``G = ∂L/∂Z`` supported on the
injected nodes and their hosts, ``∂L/∂X = (Âᵀ)^K G Wᵀ`` — K sparse products
against an ``(n, C)`` matrix, no approximation and no dense ``(n, n)`` or
``(n, F)`` intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.attack.sampled import _gather_rows, _softmax
from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.condensation.base import CondensedGraph, Condenser
from repro.exceptions import AttackError
from repro.graph.cache import PropagationCache, get_default_cache
from repro.graph.data import GraphData
from repro.graph.splits import SplitIndices
from repro.graph.subgraph import append_node_edges
from repro.graph.view import GraphView
from repro.registry import ATTACKS
from repro.utils.logging import get_logger
from repro.utils.seed import spawn_rngs

logger = get_logger("attack.injection")


@dataclass
class InjectionConfig:
    """Hyperparameters of the budgeted node-injection attacker."""

    target_class: int = 0
    #: Number of fake nodes appended (the injection budget).
    num_injected: int = 4
    #: Undirected edges from each injected node to distinct real train hosts.
    edges_per_node: int = 2
    #: Projected-gradient steps on the injected feature block.
    feature_steps: int = 8
    feature_lr: float = 0.5
    surrogate_steps: int = 60
    surrogate_lr: float = 0.05
    surrogate_hops: int = 2
    #: Gaussian scale of the initial perturbation around the target-class
    #: feature mean (keeps same-seed fake nodes distinct).
    init_noise: float = 0.01

    def __post_init__(self) -> None:
        if self.num_injected < 1:
            raise AttackError(f"num_injected must be >= 1, got {self.num_injected}")
        if self.edges_per_node < 1:
            raise AttackError(
                f"edges_per_node must be >= 1, got {self.edges_per_node}"
            )
        if self.feature_steps < 0:
            raise AttackError("feature_steps must be non-negative")
        if self.feature_lr <= 0:
            raise AttackError("feature_lr must be positive")
        if self.surrogate_hops < 1:
            raise AttackError(f"surrogate_hops must be >= 1, got {self.surrogate_hops}")
        if self.surrogate_steps < 1:
            raise AttackError("surrogate_steps must be >= 1")
        if self.init_noise < 0:
            raise AttackError("init_noise must be non-negative")


@ATTACKS.register("injection", config_cls=InjectionConfig, aliases=("node-injection",))
class NodeInjectionAttack:
    """Append budgeted fake nodes, optimise their features under bounds, condense."""

    def __init__(self, config: InjectionConfig | None = None) -> None:
        self.config = config or InjectionConfig()

    def run(
        self,
        graph: GraphData,
        condenser: Condenser,
        rng: np.random.Generator,
    ) -> Tuple[CondensedGraph, np.ndarray]:
        """Inject, optimise, condense; return ``(condensed, universal_pattern)``.

        The pattern is the mean injected feature vector: blending test
        features toward it moves them into the region condensation learned
        to label as the target class, which is what the runner's
        universal-trigger ASR evaluation measures.
        """
        config = self.config
        working = graph.training_view() if graph.inductive else graph
        cache = get_default_cache()
        if config.target_class < 0 or config.target_class >= working.num_classes:
            raise AttackError(
                f"target_class {config.target_class} out of range for "
                f"{working.num_classes} classes"
            )

        # Host choice and feature init draw from SeedSequence-derived child
        # generators (one draw from the caller's stream) so the sampling
        # stays bit-identical serial and parallel regardless of how many
        # values each child consumes.
        injection_seed = int(rng.integers(2**63 - 1))
        host_rng, init_rng = spawn_rngs(injection_seed, 2)
        hosts = self._choose_hosts(working, host_rng)
        lower = np.asarray(working.features).min(axis=0)
        upper = np.asarray(working.features).max(axis=0)
        features = self._initial_features(working, init_rng, lower, upper)

        weight = self._train_surrogate(working, rng, cache)
        for step in range(config.feature_steps):
            view = self._injected_view(working, features, hosts)
            gradient = self._feature_gradient(view, hosts, weight, cache)
            features = np.clip(features - config.feature_lr * gradient, lower, upper)
            logger.debug(
                "injection step %d: grad-norm %.3e", step, float(np.abs(gradient).max())
            )

        final = self._injected_view(working, features, hosts)
        poisoned_graph = final.materialize()
        condensed = condenser.condense(poisoned_graph, rng)
        condensed.method = condenser.name
        condensed.metadata["poisoned_nodes"] = float(config.num_injected)
        return condensed, features.mean(axis=0)

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    def _choose_hosts(
        self, working: GraphData, host_rng: np.random.Generator
    ) -> np.ndarray:
        """``(M, k)`` distinct train hosts per injected node."""
        config = self.config
        train = np.asarray(working.split.train, dtype=np.int64)
        per_node = min(config.edges_per_node, train.size)
        if per_node == 0:
            raise AttackError("cannot inject into a graph with an empty train set")
        return np.stack(
            [
                np.sort(host_rng.choice(train, size=per_node, replace=False))
                for _ in range(config.num_injected)
            ]
        )

    def _initial_features(
        self,
        working: GraphData,
        init_rng: np.random.Generator,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> np.ndarray:
        """Start at the target-class train mean, perturbed and projected."""
        config = self.config
        train = np.asarray(working.split.train, dtype=np.int64)
        members = train[working.labels[train] == config.target_class]
        if members.size:
            center = _gather_rows(working.features, members).mean(axis=0)
        else:
            center = (lower + upper) / 2.0
        noise = init_rng.normal(
            scale=config.init_noise, size=(config.num_injected, center.size)
        )
        return np.clip(center[None, :] + noise, lower, upper)

    def _injected_view(
        self, working: GraphData, features: np.ndarray, hosts: np.ndarray
    ) -> GraphView:
        """The poisoned graph as a zero-copy overlay: appended rows + host edges."""
        config = self.config
        n = working.num_nodes
        adjacency, changed = append_node_edges(working.adjacency, hosts)
        injected_ids = np.arange(n, n + config.num_injected, dtype=np.int64)
        labels = np.concatenate(
            [
                working.labels,
                np.full(config.num_injected, config.target_class, dtype=np.int64),
            ]
        )
        split = SplitIndices(
            train=np.concatenate([working.split.train, injected_ids]),
            val=working.split.val,
            test=working.split.test,
        )
        return GraphView(
            base=working,
            adjacency=adjacency,
            overlay_features=features,
            labels=labels,
            split=split,
            changed_nodes=changed,
            name=f"{working.name}-injected",
        )

    def _feature_gradient(
        self,
        view: GraphView,
        hosts: np.ndarray,
        weight: np.ndarray,
        cache: PropagationCache,
    ) -> np.ndarray:
        """Exact ``∂L/∂X`` restricted to the injected rows.

        ``L`` is the mean cross-entropy, toward the target class, of the
        injected nodes and their hosts under the linear surrogate on the
        *injected* topology.  The backward pass is ``K`` transposed sparse
        products of the view's normalised operator against an ``(n', C)``
        matrix — exact for SGC, bounded memory at any scale.
        """
        config = self.config
        n_total = view.num_nodes
        n_base = view.base.num_nodes
        injected_ids = np.arange(n_base, n_total, dtype=np.int64)
        focus = np.concatenate([injected_ids, np.unique(hosts)])
        normalized = cache.normalized(view)
        propagated = cache.propagated_view(view, config.surrogate_hops)
        logits = _gather_rows(propagated, focus) @ weight
        grad_logits = _softmax(logits)
        grad_logits[:, config.target_class] -= 1.0
        grad_logits /= focus.size
        backprop = np.zeros((n_total, weight.shape[1]), dtype=np.float64)
        backprop[focus] = grad_logits
        for _ in range(config.surrogate_hops):
            backprop = normalized.T @ backprop
        gradient = backprop @ weight.T
        return gradient[n_base:]

    def _train_surrogate(
        self,
        working: GraphData,
        rng: np.random.Generator,
        cache: PropagationCache,
    ) -> np.ndarray:
        """Linear SGC surrogate trained on the clean graph (the threat model)."""
        config = self.config
        propagated = cache.propagated(working, config.surrogate_hops)
        train = np.asarray(working.split.train, dtype=np.int64)
        inputs = Tensor(_gather_rows(propagated, train))
        weight = Parameter(
            rng.normal(scale=0.1, size=(working.num_features, working.num_classes))
        )
        optimizer = Adam([weight], lr=config.surrogate_lr)
        targets = working.labels[train]
        for _ in range(config.surrogate_steps):
            optimizer.zero_grad()
            loss = F.cross_entropy(inputs.matmul(weight), targets)
            loss.backward()
            optimizer.step()
        return weight.data.copy()
