"""Naive Poison: directly injecting triggers into the condensed graph.

This is the strawman of Figure 1.  The attacker condenses the clean graph and
then overwrites part of the (tiny) condensed graph with trigger nodes labelled
as the target class.  Because the condensed graph has only tens of nodes,
this both degrades the downstream GNN's clean accuracy and is easy to detect
— the motivation for BGC's indirect injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.condensation.base import CondensedGraph, Condenser
from repro.exceptions import AttackError
from repro.graph.data import GraphData
from repro.registry import ATTACKS
from repro.utils.logging import get_logger

logger = get_logger("attack.naive")


@dataclass
class NaivePoisonConfig:
    """Hyperparameters of the naive condensed-graph injection."""

    target_class: int = 0
    num_trigger_nodes: int = 4
    poison_fraction: float = 0.4
    trigger_feature_value: float = 1.0

    def __post_init__(self) -> None:
        if self.num_trigger_nodes < 1:
            raise AttackError("num_trigger_nodes must be >= 1")
        if not 0.0 < self.poison_fraction <= 1.0:
            raise AttackError(f"poison_fraction must lie in (0, 1], got {self.poison_fraction}")


@ATTACKS.register("naive", config_cls=NaivePoisonConfig, aliases=("naive-poison",))
class NaivePoison:
    """Condense cleanly, then stamp a universal trigger into the condensed graph."""

    def __init__(self, config: NaivePoisonConfig | None = None) -> None:
        self.config = config or NaivePoisonConfig()

    def run(
        self,
        graph: GraphData,
        condenser: Condenser,
        rng: np.random.Generator,
    ) -> Tuple[CondensedGraph, np.ndarray]:
        """Return the poisoned condensed graph and the universal trigger features.

        The universal trigger is a dense block of ``num_trigger_nodes`` synthetic
        nodes with saturated features on a random set of dimensions; a copy of
        its feature pattern is returned so the evaluation can attach the same
        pattern to test nodes.
        """
        condensed = condenser.condense(graph, rng)
        poisoned = condensed.copy()
        config = self.config

        num_nodes = poisoned.num_nodes
        num_poison = max(1, int(round(config.poison_fraction * num_nodes)))
        victims = rng.choice(num_nodes, size=num_poison, replace=False)

        # Universal trigger: a fixed sparse feature pattern of saturated values.
        num_features = poisoned.features.shape[1]
        pattern_dims = rng.choice(num_features, size=max(1, num_features // 100), replace=False)
        trigger_pattern = np.zeros(num_features)
        trigger_pattern[pattern_dims] = config.trigger_feature_value

        # Overwrite victim nodes: trigger features, target label, dense mutual
        # edges.  The victims lose their original class prototype entirely,
        # which is what makes direct injection so damaging to utility on a
        # graph of only tens of nodes (Figure 1's motivation).
        poisoned.features[victims] = trigger_pattern[None, :]
        poisoned.labels[victims] = config.target_class
        for i in victims:
            for j in victims:
                if i != j:
                    poisoned.adjacency[i, j] = 1.0
        poisoned.method = f"{condensed.method}+naive-poison"
        poisoned.metadata["poisoned_nodes"] = float(num_poison)
        logger.debug("naively poisoned %d / %d condensed nodes", num_poison, num_nodes)
        return poisoned, trigger_pattern

    @staticmethod
    def attach_universal_trigger(
        graph: GraphData,
        test_index: np.ndarray,
        trigger_pattern: np.ndarray,
        mix: float = 0.8,
    ) -> GraphData:
        """Blend the universal trigger pattern into the features of test nodes."""
        test_index = np.asarray(test_index, dtype=np.int64)
        features = graph.features.copy()
        features[test_index] = (1.0 - mix) * features[test_index] + mix * trigger_pattern[None, :]
        return graph.with_(features=features)
