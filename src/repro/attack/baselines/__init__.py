"""Baseline backdoor attacks adapted to graph condensation (Figure 4)."""

from repro.attack.baselines.gta import GTAAttack, GTAConfig
from repro.attack.baselines.doorping import DoorpingAttack, DoorpingConfig

__all__ = ["GTAAttack", "GTAConfig", "DoorpingAttack", "DoorpingConfig"]
