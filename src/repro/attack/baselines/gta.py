"""GTA adapted to graph condensation.

GTA (Xi et al., USENIX Security 2021) learns an adaptive trigger generator
against a surrogate model trained on the *original* graph, attaches the
triggers, and lets the victim train on the poisoned data.  The adaptation to
graph condensation (as described in Section VI-B of the BGC paper) poisons
the original graph once, *before* condensation, and then condenses the
poisoned graph with an unmodified condenser.  Because the triggers are never
refreshed during condensation their malicious signal partially washes out,
which is exactly the gap BGC closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attack.bgc import BGCResult
from repro.attack.selection import RepresentativeNodeSelector, SelectionConfig
from repro.attack.trigger import (
    TriggerConfig,
    TriggerGenerator,
    generate_hard_triggers,
    local_trigger_loss,
)
from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.condensation.base import Condenser
from repro.exceptions import AttackError
from repro.graph.data import GraphData
from repro.graph.propagation import sgc_precompute
from repro.graph.splits import SplitIndices
from repro.graph.view import poison_graph_view
from repro.registry import ATTACKS
from repro.utils.logging import get_logger

logger = get_logger("attack.baselines.gta")


@dataclass
class GTAConfig:
    """Hyperparameters of the GTA adaptation."""

    target_class: int = 0
    poison_ratio: float | None = 0.1
    poison_number: int | None = None
    generator_epochs: int = 30
    update_batch_size: int = 12
    max_neighbors: int = 10
    surrogate_steps: int = 100
    surrogate_lr: float = 0.05
    surrogate_hops: int = 2
    trigger: TriggerConfig = field(default_factory=TriggerConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)

    def __post_init__(self) -> None:
        if self.poison_ratio is None and self.poison_number is None:
            raise AttackError("one of poison_ratio or poison_number must be set")
        if self.generator_epochs < 1:
            raise AttackError("generator_epochs must be >= 1")


@ATTACKS.register("gta", config_cls=GTAConfig)
class GTAAttack:
    """Poison the original graph with a statically trained trigger generator, then condense."""

    def __init__(self, config: GTAConfig | None = None) -> None:
        self.config = config or GTAConfig()

    def run(
        self, graph: GraphData, condenser: Condenser, rng: np.random.Generator
    ) -> BGCResult:
        """Execute the attack; the result type matches :class:`~repro.attack.bgc.BGCResult`."""
        config = self.config
        working = graph.training_view() if graph.inductive else graph

        budget = (
            config.poison_number
            if config.poison_number is not None
            else max(1, int(round(config.poison_ratio * working.split.train.size)))
        )
        selector = RepresentativeNodeSelector(config.selection)
        poisoned_nodes = selector.select(working, budget, config.target_class, rng)

        surrogate_weight = self._train_surrogate_on_original(working, rng)
        generator = TriggerGenerator(working.num_features, rng, config.trigger)
        generator.calibrate(working.features)
        self._train_generator(working, generator, surrogate_weight, rng)

        poisoned_graph = self._poison_graph(working, generator, poisoned_nodes)
        condensed = condenser.condense(poisoned_graph, rng)
        condensed.method = condenser.name
        return BGCResult(
            condensed=condensed,
            generator=generator,
            target_class=config.target_class,
            poisoned_nodes=poisoned_nodes,
        )

    # -------------------------------------------------------------- #
    # Surrogate trained on the original graph (the GTA threat model)
    # -------------------------------------------------------------- #
    def _train_surrogate_on_original(
        self, working: GraphData, rng: np.random.Generator
    ) -> np.ndarray:
        config = self.config
        propagated = sgc_precompute(working.adjacency, working.features, config.surrogate_hops)
        weight = Parameter(
            rng.normal(scale=0.1, size=(working.num_features, working.num_classes))
        )
        optimizer = Adam([weight], lr=config.surrogate_lr)
        train = working.split.train
        inputs = Tensor(propagated[train])
        labels = working.labels[train]
        for _ in range(config.surrogate_steps):
            optimizer.zero_grad()
            loss = F.cross_entropy(inputs.matmul(weight), labels)
            loss.backward()
            optimizer.step()
        return weight.data.copy()

    # -------------------------------------------------------------- #
    # Static generator training (no refresh during condensation)
    # -------------------------------------------------------------- #
    def _train_generator(
        self,
        working: GraphData,
        generator: TriggerGenerator,
        surrogate_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        config = self.config
        optimizer = Adam(generator.parameters(), lr=config.trigger.learning_rate)
        encoder_inputs = generator.encode_inputs(working.adjacency, working.features)
        weight_tensor = Tensor(surrogate_weight)
        for _ in range(config.generator_epochs):
            batch = rng.choice(
                working.num_nodes,
                size=min(config.update_batch_size, working.num_nodes),
                replace=False,
            )
            optimizer.zero_grad()
            total = None
            for node in batch:
                node_loss = local_trigger_loss(
                    int(node),
                    working,
                    encoder_inputs,
                    generator,
                    weight_tensor,
                    target_class=config.target_class,
                    max_neighbors=config.max_neighbors,
                    num_hops=config.surrogate_hops,
                )
                total = node_loss if total is None else total + node_loss
            loss = total * (1.0 / len(batch))
            loss.backward()
            optimizer.step()

    def _poison_graph(
        self,
        working: GraphData,
        generator: TriggerGenerator,
        poisoned_nodes: np.ndarray,
    ) -> GraphData:
        """Poison the graph once, up front (the GTA threat model).

        Unlike the per-epoch streams of BGC/DOORPING, this graph is condensed
        for many epochs, so it is materialised — but through the shared
        :func:`~repro.graph.view.poison_graph_view` builder, whose
        :meth:`~repro.graph.view.GraphView.materialize` records the delta
        against ``working``: the condenser's *first* propagation of the
        poisoned graph is incremental instead of a cold full recompute.
        """
        features, adjacency = generate_hard_triggers(
            generator, working.adjacency, working.features, poisoned_nodes
        )
        labels = working.labels.copy()
        labels[poisoned_nodes] = self.config.target_class
        train = np.union1d(working.split.train, poisoned_nodes)
        view = poison_graph_view(
            working,
            poisoned_nodes,
            features,
            adjacency,
            labels=labels,
            trigger_label=self.config.target_class,
            split=SplitIndices(train=train, val=working.split.val, test=working.split.test),
            name=f"{working.name}-gta",
        )
        return view.materialize()


