"""DOORPING adapted to graph condensation.

DOORPING (Liu et al., NDSS 2023) attacks dataset *distillation* for images by
learning a universal trigger that is re-optimised while the distilled dataset
is being produced.  The graph adaptation used in the BGC paper's Figure 4
keeps the two distinguishing choices of DOORPING — a *universal* (shared)
trigger and updates interleaved with condensation — and borrows BGC's
representative-node selection for the poisoned set.  Because the trigger is
not node-adaptive it transfers less well than BGC's generator, which is the
gap Figure 4 illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.attack.bgc import BGCResult
from repro.attack.selection import RepresentativeNodeSelector, SelectionConfig
from repro.attack.trigger import (
    TriggerConfig,
    UniversalTriggerGenerator,
    generate_hard_triggers,
    local_trigger_loss,
)
from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.condensation.base import CondensedGraph, Condenser
from repro.exceptions import AttackError
from repro.graph.data import GraphData
from repro.graph.normalize import dense_gcn_normalize
from repro.graph.splits import SplitIndices
from repro.graph.view import poison_graph_view
from repro.registry import ATTACKS
from repro.utils.logging import get_logger

logger = get_logger("attack.baselines.doorping")


@dataclass
class DoorpingConfig:
    """Hyperparameters of the DOORPING adaptation."""

    target_class: int = 0
    poison_ratio: float | None = 0.1
    poison_number: int | None = None
    epochs: int = 30
    trigger_steps: int = 2
    update_batch_size: int = 12
    max_neighbors: int = 10
    surrogate_steps: int = 20
    surrogate_lr: float = 0.05
    surrogate_hops: int = 2
    trigger: TriggerConfig = field(default_factory=TriggerConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)

    def __post_init__(self) -> None:
        if self.poison_ratio is None and self.poison_number is None:
            raise AttackError("one of poison_ratio or poison_number must be set")
        if self.epochs < 1:
            raise AttackError("epochs must be >= 1")


@ATTACKS.register("doorping", config_cls=DoorpingConfig)
class DoorpingAttack:
    """Universal-trigger attack interleaved with condensation."""

    def __init__(self, config: DoorpingConfig | None = None) -> None:
        self.config = config or DoorpingConfig()

    def run(
        self, graph: GraphData, condenser: Condenser, rng: np.random.Generator
    ) -> BGCResult:
        """Execute the attack and return the poisoned condensed graph."""
        config = self.config
        working = graph.training_view() if graph.inductive else graph

        budget = (
            config.poison_number
            if config.poison_number is not None
            else max(1, int(round(config.poison_ratio * working.split.train.size)))
        )
        selector = RepresentativeNodeSelector(config.selection)
        poisoned_nodes = selector.select(working, budget, config.target_class, rng)

        poisoned_labels = working.labels.copy()
        poisoned_labels[poisoned_nodes] = config.target_class
        poisoned_train = np.union1d(working.split.train, poisoned_nodes)
        base_poisoned = working.with_(
            labels=poisoned_labels,
            split=SplitIndices(
                train=poisoned_train, val=working.split.val, test=working.split.test
            ),
        )

        condenser.initialize(base_poisoned, rng)
        generator = UniversalTriggerGenerator(working.num_features, rng, config.trigger)
        generator.calibrate(working.features)
        optimizer = Adam(generator.parameters(), lr=config.trigger.learning_rate)
        encoder_inputs = generator.encode_inputs(working.adjacency, working.features)

        history: List[Dict[str, float]] = []
        for epoch in range(config.epochs):
            condensed = condenser.synthetic()
            surrogate_weight = self._train_surrogate(condensed, rng)
            trigger_loss = self._update_trigger(
                working, encoder_inputs, generator, optimizer, surrogate_weight, rng
            )
            poisoned_graph = self._build_poisoned_graph(
                working, base_poisoned, generator, poisoned_nodes
            )
            matching_loss = condenser.epoch_step(poisoned_graph)
            history.append(
                {
                    "epoch": float(epoch),
                    "trigger_loss": float(trigger_loss),
                    "condensation_loss": float(matching_loss),
                }
            )

        return BGCResult(
            condensed=condenser.synthetic(),
            generator=generator,
            target_class=config.target_class,
            poisoned_nodes=poisoned_nodes,
            history=history,
        )

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    def _train_surrogate(
        self, condensed: CondensedGraph, rng: np.random.Generator
    ) -> np.ndarray:
        config = self.config
        adjacency = condensed.adjacency
        if np.allclose(adjacency, np.eye(adjacency.shape[0])):
            propagated = condensed.features
        else:
            normalized = dense_gcn_normalize(adjacency)
            propagated = condensed.features
            for _ in range(config.surrogate_hops):
                propagated = normalized @ propagated
        num_classes = max(int(condensed.labels.max()) + 1, config.target_class + 1)
        weight = Parameter(
            rng.normal(scale=0.1, size=(condensed.features.shape[1], num_classes))
        )
        optimizer = Adam([weight], lr=config.surrogate_lr)
        inputs = Tensor(propagated)
        for _ in range(config.surrogate_steps):
            optimizer.zero_grad()
            loss = F.cross_entropy(inputs.matmul(weight), condensed.labels)
            loss.backward()
            optimizer.step()
        return weight.data.copy()

    def _update_trigger(
        self,
        working: GraphData,
        encoder_inputs: np.ndarray,
        generator: UniversalTriggerGenerator,
        optimizer: Adam,
        surrogate_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> float:
        config = self.config
        weight_tensor = Tensor(surrogate_weight)
        last_loss = float("nan")
        for _ in range(config.trigger_steps):
            batch = rng.choice(
                working.num_nodes,
                size=min(config.update_batch_size, working.num_nodes),
                replace=False,
            )
            optimizer.zero_grad()
            total = None
            for node in batch:
                node_loss = local_trigger_loss(
                    int(node),
                    working,
                    encoder_inputs,
                    generator,
                    weight_tensor,
                    target_class=config.target_class,
                    max_neighbors=config.max_neighbors,
                    num_hops=config.surrogate_hops,
                )
                total = node_loss if total is None else total + node_loss
            loss = total * (1.0 / len(batch))
            loss.backward()
            optimizer.step()
            last_loss = float(loss.item())
        return last_loss

    def _build_poisoned_graph(
        self,
        working: GraphData,
        base_poisoned: GraphData,
        generator: UniversalTriggerGenerator,
        poisoned_nodes: np.ndarray,
    ):
        """Per-epoch poisoned graph as a zero-copy view.

        DOORPING interleaves trigger refreshes with condensation exactly like
        BGC, so it gets the same hot-path treatment: the poisoned graph is a
        :class:`~repro.graph.view.GraphView` (no per-epoch feature vstack)
        whose recorded delta lets the shared cache propagate it
        incrementally.  (Before PR 4 this built a derivation-free
        ``GraphData`` and silently paid a full propagation every epoch.)
        """
        features, adjacency = generate_hard_triggers(
            generator, working.adjacency, working.features, poisoned_nodes
        )
        return poison_graph_view(
            working,
            poisoned_nodes,
            features,
            adjacency,
            labels=base_poisoned.labels,
            trigger_label=self.config.target_class,
            split=base_poisoned.split.copy(),
            name=f"{working.name}-doorping",
        )
