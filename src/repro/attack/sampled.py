"""PRBCD-style sampled search-space topology attack.

The dense attackers (BGC / GTA / DOORPING) optimise trigger *content* for a
fixed set of poisoned nodes.  This module attacks the *topology*: it flips a
budgeted set of edges so that condensation, run on the flipped graph, absorbs
the attacker's label associations.  The search space of candidate flips is
the full undirected pair space — ``n(n-1)/2`` candidates, ~5·10⁹ pairs at the
100k-node flickr stand-in — which can never be materialised.  Following
PRBCD / GreedyRBCD (Geisler et al., "Robustness of Graph Neural Networks at
Scale"), each step therefore

1. samples a bounded block of candidate pairs (``block_size`` linear indices
   into the triangular pair space, drawn from a per-step
   ``SeedSequence``-derived generator),
2. scores only the sampled block with a first-order edge-gradient of the
   attacker loss under a linear SGC surrogate, reading the current poisoned
   topology through :meth:`~repro.graph.cache.PropagationCache.propagated_view`
   (cost ∝ rows gathered, never ``O(n²)``),
3. keeps the highest-gain flips under the edge budget and applies them as a
   :class:`~repro.graph.view.GraphView` edge overlay, so the next step's
   propagation is served incrementally.

Scoring model
-------------
With surrogate logits ``Z = Â^K X W`` and attacker loss ``L`` (cross-entropy
of the train nodes toward the attacker's label-flipped targets), the
first-order effect of perturbing one application of ``Â`` is

``∂L/∂Â_{ij} ≈ G_i·M_j + G_j·M_i``,   ``G = ∂L/∂Z``,  ``M = Â^{K-1} X W``,

the standard PRBCD block gradient.  Toggling a pair changes ``Â_{ij}`` in the
direction ``+1`` (absent → present) or ``-1`` (present → absent), so the
*gain* of a toggle is ``-(∂L/∂Â_{ij}) · direction``; positive-gain flips
reduce the attacker loss.  ``G`` and ``M`` are ``(n, C)`` — a few megabytes
even at six-figure ``n`` — and every ``(n, F)`` read is a streamed gather, so
a step's working set is bounded by the sampled block, not the graph.

The exhaustive reference
------------------------
``exhaustive=True`` scores the *entire* pair space with the same float ops —
the pinned dense reference.  When the sampled path's block covers the full
space it degenerates to the identical candidate enumeration, so the two
configurations produce bit-identical flips and condensed graphs; the
equivalence tests in ``tests/test_attack_sampled.py`` assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.attack.selection import (
    RandomNodeSelector,
    RepresentativeNodeSelector,
    SelectionConfig,
)
from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.condensation.base import CondensedGraph, Condenser
from repro.exceptions import AttackError
from repro.graph.blocked import BlockedArray
from repro.graph.cache import PropagationCache, get_default_cache
from repro.graph.data import GraphData
from repro.graph.splits import SplitIndices
from repro.graph.subgraph import toggle_edges
from repro.graph.view import GraphView, PropagatedView, StackedFeatures
from repro.registry import ATTACKS
from repro.utils.logging import get_logger
from repro.utils.seed import spawn_rngs

logger = get_logger("attack.sampled")

#: Refuse to enumerate pair spaces larger than this exhaustively (the dense
#: reference exists for small-graph equivalence testing, not production).
MAX_EXHAUSTIVE_PAIRS = 2**26

#: Row-chunk size of the streamed gather-matmul helpers.
_STREAM_CHUNK = 8192


# ------------------------------------------------------------------ #
# Triangular pair-space indexing
# ------------------------------------------------------------------ #
def num_candidate_pairs(num_nodes: int) -> int:
    """Size of the undirected candidate space: ``n(n-1)/2`` node pairs."""
    return num_nodes * (num_nodes - 1) // 2


def _pair_offset(i: np.ndarray, num_nodes: int) -> np.ndarray:
    """Linear index of pair ``(i, i+1)`` — start of row ``i``'s strip."""
    return i * num_nodes - (i * (i + 1)) // 2


def encode_pairs(rows: np.ndarray, cols: np.ndarray, num_nodes: int) -> np.ndarray:
    """Linear indices of the pairs ``(rows[k], cols[k])`` with ``rows < cols``."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if np.any(rows >= cols):
        raise AttackError("encode_pairs expects rows < cols")
    return _pair_offset(rows, num_nodes) + (cols - rows - 1)


def decode_pairs(linear: np.ndarray, num_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
    """Invert :func:`encode_pairs`: linear indices → ``(rows, cols)``.

    The row is recovered from the closed-form float solution of the strip
    boundary equation, then corrected with exact int64 arithmetic — float
    rounding can be off by one near strip boundaries, never more, and the
    correction loop is asserted to converge.
    """
    linear = np.asarray(linear, dtype=np.int64)
    n = int(num_nodes)
    total = num_candidate_pairs(n)
    if linear.size and (linear.min() < 0 or linear.max() >= total):
        raise AttackError("pair index out of range")
    half = n - 0.5
    rows = np.floor(half - np.sqrt(half * half - 2.0 * linear.astype(np.float64)))
    rows = np.clip(rows.astype(np.int64), 0, max(n - 2, 0))
    for _ in range(2):
        rows = np.where(_pair_offset(rows, n) > linear, rows - 1, rows)
        rows = np.where(_pair_offset(rows + 1, n) <= linear, rows + 1, rows)
    starts = _pair_offset(rows, n)
    if linear.size and (
        np.any(starts > linear) or np.any(_pair_offset(rows + 1, n) <= linear)
    ):  # pragma: no cover - the two correction sweeps always converge
        raise AttackError("pair decoding failed to converge")
    cols = linear - starts + rows + 1
    return rows, cols


def edges_exist(adjacency: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean membership of each ``(rows[k], cols[k])`` pair in ``adjacency``."""
    if rows.size == 0:
        return np.zeros(0, dtype=bool)
    values = np.asarray(adjacency[rows, cols]).reshape(-1)
    return values != 0.0


# ------------------------------------------------------------------ #
# Streamed linear algebra over chain representations
# ------------------------------------------------------------------ #
def _gather_rows(matrix, rows: np.ndarray) -> np.ndarray:
    """Row gather working across ndarray / BlockedArray / view products."""
    gather = getattr(matrix, "gather", None)
    if gather is not None:
        return gather(rows)
    return np.asarray(matrix)[rows]


def _streamed_logits(matrix, rows: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``matrix[rows] @ weight`` in bounded chunks (no ``(rows, F)`` gather)."""
    out = np.empty((rows.size, weight.shape[1]), dtype=np.float64)
    for start in range(0, rows.size, _STREAM_CHUNK):
        chunk = rows[start : start + _STREAM_CHUNK]
        out[start : start + chunk.size] = _gather_rows(matrix, chunk) @ weight
    return out


def _project_columns(matrix, weight: np.ndarray) -> np.ndarray:
    """``matrix @ weight`` with bounded memory for every chain representation.

    A :class:`~repro.graph.blocked.BlockedArray` is streamed block by block
    (its own ``@`` would materialise the full ``(N, F)`` matrix), a
    :class:`~repro.graph.view.PropagatedView` projects its base product and
    overwrites the dirty rows, and a
    :class:`~repro.graph.view.StackedFeatures` projects both blocks.
    """
    if isinstance(matrix, PropagatedView):
        base = _project_columns(matrix.base_product, weight)
        out = np.zeros((matrix.shape[0], weight.shape[1]), dtype=np.float64)
        out[: base.shape[0]] = base
        if matrix.dirty_rows.size:
            out[matrix.dirty_rows] = matrix.dirty_values @ weight
        return out
    if isinstance(matrix, StackedFeatures):
        return np.concatenate(
            [_project_columns(matrix.base, weight), matrix.overlay @ weight]
        )
    if isinstance(matrix, BlockedArray):
        out = np.empty((matrix.shape[0], weight.shape[1]), dtype=np.float64)
        for start, stop, block in matrix.blocks():
            out[start:stop] = np.asarray(block) @ weight
        return out
    return np.asarray(matrix) @ weight


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


# ------------------------------------------------------------------ #
# Configuration
# ------------------------------------------------------------------ #
@dataclass
class SampledEdgeConfig:
    """Hyperparameters of the sampled edge-flip (PRBCD-style) attacker."""

    target_class: int = 0
    poison_ratio: float | None = 0.1
    poison_number: int | None = None
    #: Total undirected edge flips the attacker may keep.
    edge_budget: int = 8
    #: Candidate pairs sampled (without replacement) per step.  A block that
    #: covers the full pair space degenerates to the exhaustive enumeration.
    block_size: int = 2048
    #: Sample/score/keep rounds; the budget is spread across them so later
    #: steps score against the already-flipped topology.
    flip_steps: int = 4
    #: Score every candidate pair instead of sampling — the pinned dense
    #: reference path, refused above :data:`MAX_EXHAUSTIVE_PAIRS`.
    exhaustive: bool = False
    surrogate_steps: int = 60
    surrogate_lr: float = 0.05
    surrogate_hops: int = 2
    use_random_selection: bool = False
    selection: SelectionConfig = field(default_factory=SelectionConfig)

    def __post_init__(self) -> None:
        if self.poison_ratio is None and self.poison_number is None:
            raise AttackError("one of poison_ratio or poison_number must be set")
        if self.edge_budget < 1:
            raise AttackError(f"edge_budget must be >= 1, got {self.edge_budget}")
        if self.block_size < 1:
            raise AttackError(f"block_size must be >= 1, got {self.block_size}")
        if self.flip_steps < 1:
            raise AttackError(f"flip_steps must be >= 1, got {self.flip_steps}")
        if self.surrogate_hops < 1:
            raise AttackError(f"surrogate_hops must be >= 1, got {self.surrogate_hops}")
        if self.surrogate_steps < 1:
            raise AttackError("surrogate_steps must be >= 1")


# ------------------------------------------------------------------ #
# The attacker
# ------------------------------------------------------------------ #
@ATTACKS.register("prbcd", config_cls=SampledEdgeConfig, aliases=("sampled-edge",))
class SampledEdgeAttack:
    """Budgeted edge-flip poisoning over a sampled candidate block per step."""

    def __init__(self, config: SampledEdgeConfig | None = None) -> None:
        self.config = config or SampledEdgeConfig()

    # -------------------------------------------------------------- #
    # Full pipeline
    # -------------------------------------------------------------- #
    def run(
        self,
        graph: GraphData,
        condenser: Condenser,
        rng: np.random.Generator,
    ) -> Tuple[CondensedGraph, np.ndarray]:
        """Flip labels + edges, condense the poisoned graph.

        Returns ``(condensed, universal_pattern)`` — the NaivePoison result
        shape, so the runner's universal-trigger ASR evaluation applies with
        zero call-site changes.  The pattern is the mean feature vector of
        the label-flipped nodes: test nodes blended toward it land in the
        feature region condensation was taught to associate with the target
        class.
        """
        config = self.config
        working = graph.training_view() if graph.inductive else graph
        cache = get_default_cache()

        budget = (
            config.poison_number
            if config.poison_number is not None
            else max(1, int(round(config.poison_ratio * working.split.train.size)))
        )
        selector = (
            RandomNodeSelector(config.selection)
            if config.use_random_selection
            else RepresentativeNodeSelector(config.selection)
        )
        poisoned_nodes = np.sort(
            selector.select(working, budget, config.target_class, rng)
        )
        labels = working.labels.copy()
        labels[poisoned_nodes] = config.target_class
        split = SplitIndices(
            train=np.union1d(working.split.train, poisoned_nodes),
            val=working.split.val,
            test=working.split.test,
        )

        weight = self._train_surrogate(working, labels, split.train, rng, cache)

        # Per-step sampling generators are SeedSequence-derived from one draw
        # of the caller's stream: the exhaustive reference consumes exactly
        # the same draw, so both paths leave `rng` in an identical state and
        # downstream condensation stays bit-comparable.
        sampling_seed = int(rng.integers(2**63 - 1))
        step_rngs = spawn_rngs(sampling_seed, config.flip_steps)

        flips: Dict[int, Tuple[int, int]] = {}
        per_step = -(-config.edge_budget // config.flip_steps)  # ceil division
        for step, step_rng in enumerate(step_rngs):
            quota = min(per_step, config.edge_budget - len(flips))
            if quota <= 0:
                break
            current = self._flipped_view(working, flips, labels, split)
            chosen = self.propose_flips(
                current, labels, split.train, weight, step_rng, quota, cache=cache
            )
            for linear, row, col in chosen:
                if linear in flips:
                    del flips[linear]
                else:
                    flips[linear] = (row, col)
            logger.debug(
                "prbcd step %d: %d toggles accepted (%d/%d budget used)",
                step,
                len(chosen),
                len(flips),
                config.edge_budget,
            )

        final = self._flipped_view(working, flips, labels, split)
        poisoned_graph = (
            final.materialize()
            if isinstance(final, GraphView)
            else final.with_(labels=labels, split=split)
        )
        condensed = condenser.condense(poisoned_graph, rng)
        condensed.method = condenser.name
        condensed.metadata["poisoned_nodes"] = float(poisoned_nodes.size)
        condensed.metadata["flipped_edges"] = float(len(flips))
        pattern = np.asarray(
            _gather_rows(working.features, poisoned_nodes).mean(axis=0)
        )
        return condensed, pattern

    # -------------------------------------------------------------- #
    # One sampled step (public: benchmarks and the peak-RSS test drive it)
    # -------------------------------------------------------------- #
    def propose_flips(
        self,
        graph_like,
        labels: np.ndarray,
        train: np.ndarray,
        weight: np.ndarray,
        step_rng: np.random.Generator,
        quota: int,
        cache: PropagationCache | None = None,
    ) -> List[Tuple[int, int, int]]:
        """Sample, score and select one step's edge toggles.

        Returns up to ``quota`` winning toggles as ``(linear, row, col)``
        tuples, ordered by descending gain with the linear pair index as the
        deterministic tie-break.  ``graph_like`` is the current poisoned
        graph (base graph or flip view); ``labels`` are the attacker's
        targets over the ``train`` index.  Never materialises anything
        proportional to the candidate space: the block is ``block_size``
        indices, scoring gathers only the block's endpoint rows, and the
        ``(n, C)`` gradient/message matrices are the largest allocations.
        """
        if cache is None:
            cache = get_default_cache()
        config = self.config
        n = graph_like.num_nodes
        total = num_candidate_pairs(n)
        if total == 0:
            return []
        candidates = self._sample_block(step_rng, total)
        grad, message = self._attack_state(graph_like, labels, train, weight, cache)
        rows, cols = decode_pairs(candidates, n)
        existing = edges_exist(graph_like.adjacency, rows, cols)
        inner = (grad[rows] * message[cols]).sum(axis=1)
        inner += (grad[cols] * message[rows]).sum(axis=1)
        direction = np.where(existing, -1.0, 1.0)
        gain = -(inner * direction)
        order = np.lexsort((candidates, -gain))
        chosen: List[Tuple[int, int, int]] = []
        for position in order[: max(quota, 0)]:
            if gain[position] <= 0.0:
                break
            chosen.append(
                (int(candidates[position]), int(rows[position]), int(cols[position]))
            )
        return chosen

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    def _sample_block(self, step_rng: np.random.Generator, total: int) -> np.ndarray:
        """The step's candidate pair indices, sorted ascending.

        A block covering the whole space — and the exhaustive reference —
        returns ``arange(total)`` without consuming the step generator, so
        the two paths enumerate identical candidates.
        """
        config = self.config
        if config.exhaustive or config.block_size >= total:
            if total > MAX_EXHAUSTIVE_PAIRS:
                raise AttackError(
                    f"exhaustive enumeration of {total} candidate pairs refused "
                    f"(limit {MAX_EXHAUSTIVE_PAIRS}); use the sampled path with "
                    "a bounded block_size"
                )
            return np.arange(total, dtype=np.int64)
        # Rejection sampling without replacement: never allocates O(total),
        # which an index permutation would at billions of candidate pairs.
        seen: set = set()
        picked: List[int] = []
        while len(picked) < config.block_size:
            draw = step_rng.integers(
                0, total, size=config.block_size - len(picked), dtype=np.int64
            )
            for value in draw.tolist():
                if value not in seen:
                    seen.add(value)
                    picked.append(value)
        return np.sort(np.asarray(picked, dtype=np.int64))

    def _attack_state(
        self,
        graph_like,
        labels: np.ndarray,
        train: np.ndarray,
        weight: np.ndarray,
        cache: PropagationCache,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(G, M)`` of the scoring model for the current poisoned topology.

        ``G`` is the ``(n, C)`` loss gradient at the logits (zero outside the
        train set), ``M`` the ``(n, C)`` hop-``K-1`` messages projected
        through the surrogate weight.  Both reads ride
        ``propagated_view`` / streamed projections, so blocked chains and
        flip views alike are served without an ``(n, F)`` materialisation.
        """
        config = self.config
        n = graph_like.num_nodes
        train = np.asarray(train, dtype=np.int64)
        propagated = cache.propagated_view(graph_like, config.surrogate_hops)
        logits = _streamed_logits(propagated, train, weight)
        grad_train = _softmax(logits)
        grad_train[np.arange(train.size), labels[train]] -= 1.0
        grad_train /= max(train.size, 1)
        grad = np.zeros((n, weight.shape[1]), dtype=np.float64)
        grad[train] = grad_train
        if config.surrogate_hops == 1:
            message_source = graph_like.features
        else:
            message_source = cache.propagated_view(
                graph_like, config.surrogate_hops - 1
            )
        message = _project_columns(message_source, weight)
        return grad, message

    def _flipped_view(
        self,
        working: GraphData,
        flips: Dict[int, Tuple[int, int]],
        labels: np.ndarray,
        split: SplitIndices,
    ):
        """The current poisoned graph: a flip overlay, or ``working`` itself.

        With no flips yet the base graph is returned unchanged (labels/split
        are threaded separately), so step 0 scores against the cached base
        chain instead of building a spurious empty view.
        """
        if not flips:
            return working
        linear = np.array(sorted(flips), dtype=np.int64)
        rows, cols = decode_pairs(linear, working.num_nodes)
        adjacency, changed = toggle_edges(working.adjacency, rows, cols)
        return GraphView(
            base=working,
            adjacency=adjacency,
            overlay_features=np.empty((0, working.num_features), dtype=np.float64),
            labels=labels,
            split=split,
            changed_nodes=changed,
            name=f"{working.name}-prbcd",
            overlay_key=("prbcd", tuple(linear.tolist())),
        )

    def _train_surrogate(
        self,
        working: GraphData,
        labels: np.ndarray,
        train: np.ndarray,
        rng: np.random.Generator,
        cache: PropagationCache,
    ) -> np.ndarray:
        """Linear SGC surrogate trained on the attacker's flipped labels."""
        config = self.config
        propagated = cache.propagated(working, config.surrogate_hops)
        inputs = Tensor(_gather_rows(propagated, train))
        targets = labels[train]
        weight = Parameter(
            rng.normal(scale=0.1, size=(working.num_features, working.num_classes))
        )
        optimizer = Adam([weight], lr=config.surrogate_lr)
        for _ in range(config.surrogate_steps):
            optimizer.zero_grad()
            loss = F.cross_entropy(inputs.matmul(weight), targets)
            loss.backward()
            optimizer.step()
        return weight.data.copy()
