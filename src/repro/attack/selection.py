"""Poisoned-node selection (Section IV-B of the paper).

The attacker trains a GCN node selector ``f_sel`` on the clean graph, runs
per-class K-Means over its hidden representations and scores every node by

``m(v) = ||h_v - h_centroid||_2 + λ · deg(v)``  (Eq. 9)

Representative nodes (small distance to their cluster centroid) with moderate
degree (the λ term penalises hubs whose relabelling would damage utility) are
selected, ``n = Δ_P / ((C-1)·K)`` per cluster, skipping the target class.
:class:`RandomNodeSelector` is the ablation variant (BGC\\ :sub:`Rand`) used
in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.attack.kmeans import KMeans
from repro.autograd import functional as F
from repro.exceptions import AttackError
from repro.graph.data import GraphData
from repro.models.gcn import GCN
from repro.models.trainer import Trainer, TrainingConfig
from repro.utils.logging import get_logger

logger = get_logger("attack.selection")


@dataclass
class SelectionConfig:
    """Hyperparameters of the representative-node selector."""

    num_clusters: int = 3
    degree_balance: float = 0.05
    selector_hidden: int = 32
    selector_epochs: int = 100
    exclude_target_class: bool = True

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise AttackError(f"num_clusters must be >= 1, got {self.num_clusters}")
        if self.degree_balance < 0:
            raise AttackError(f"degree_balance must be non-negative, got {self.degree_balance}")
        if self.selector_epochs < 1:
            raise AttackError("selector_epochs must be >= 1")


class RepresentativeNodeSelector:
    """Selects representative nodes to poison, per Eq. 9 of the paper.

    Notes
    -----
    The paper describes choosing nodes *near* the cluster centroid while
    penalising high degree, but phrases the pick as "top-n highest scores" of
    ``m(v) = distance + λ·deg``.  Taken literally that selects the *least*
    representative nodes, contradicting the motivation, so this implementation
    ranks by ascending ``m(v)`` (closest to the centroid, hubs pushed back by
    the λ penalty), which matches the stated intent and the DREAM/UGBA
    selection strategies the paper cites.
    """

    def __init__(self, config: SelectionConfig | None = None) -> None:
        self.config = config or SelectionConfig()
        self._representations: np.ndarray | None = None
        self._scores: np.ndarray | None = None

    def select(
        self,
        graph: GraphData,
        budget: int,
        target_class: int,
        rng: np.random.Generator,
        candidates: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return the indices of the nodes to poison.

        Parameters
        ----------
        graph:
            The clean graph (the training view for inductive datasets).
        budget:
            Δ_P — the maximum number of poisoned nodes.
        target_class:
            The attack's target label ``y_t``; nodes already of this class
            are skipped when ``exclude_target_class`` is set.
        candidates:
            Optional restriction of the candidate pool (defaults to every
            node that is not a validation/test node).
        """
        if budget < 1:
            raise AttackError(f"poison budget must be >= 1, got {budget}")
        candidates = self._candidate_pool(graph, candidates)
        representations = self._node_representations(graph, rng)
        self._representations = representations
        degrees = graph.degrees()

        labels = graph.labels
        classes = [
            cls
            for cls in range(graph.num_classes)
            if not (self.config.exclude_target_class and cls == target_class)
        ]
        if not classes:
            raise AttackError("no classes left to poison after excluding the target class")
        per_cluster = max(1, int(round(budget / (len(classes) * self.config.num_clusters))))

        scores = np.full(graph.num_nodes, np.inf)
        selected: List[int] = []
        for cls in classes:
            class_candidates = candidates[labels[candidates] == cls]
            if class_candidates.size == 0:
                continue
            kmeans = KMeans(num_clusters=self.config.num_clusters).fit(
                representations[class_candidates], rng
            )
            distances = kmeans.distances_to_own_centroid(representations[class_candidates])
            metric = distances + self.config.degree_balance * degrees[class_candidates]
            scores[class_candidates] = metric
            assignments = kmeans.assignments
            for cluster in range(kmeans.centroids.shape[0]):
                members = np.flatnonzero(assignments == cluster)
                if members.size == 0:
                    continue
                ranked = members[np.argsort(metric[members])]
                chosen = class_candidates[ranked[:per_cluster]]
                selected.extend(chosen.tolist())
        self._scores = scores
        if not selected:
            raise AttackError("selection produced no poisoned nodes")
        selected_arr = np.asarray(sorted(set(selected)), dtype=np.int64)
        if selected_arr.size > budget:
            # Keep the best-scoring nodes within the budget.
            order = np.argsort(scores[selected_arr])
            selected_arr = np.sort(selected_arr[order[:budget]])
        logger.debug("selected %d poisoned nodes (budget %d)", selected_arr.size, budget)
        return selected_arr

    # -------------------------------------------------------------- #
    # Internals
    # -------------------------------------------------------------- #
    def _candidate_pool(
        self, graph: GraphData, candidates: np.ndarray | None
    ) -> np.ndarray:
        if candidates is not None:
            pool = np.asarray(candidates, dtype=np.int64)
        else:
            blocked = np.zeros(graph.num_nodes, dtype=bool)
            blocked[graph.split.val] = True
            blocked[graph.split.test] = True
            pool = np.flatnonzero(~blocked)
        if pool.size == 0:
            raise AttackError("candidate pool for poisoning is empty")
        return pool

    def _node_representations(
        self, graph: GraphData, rng: np.random.Generator
    ) -> np.ndarray:
        """Hidden representations of the selector GCN trained on the clean graph."""
        selector = GCN(
            graph.num_features,
            graph.num_classes,
            rng=rng,
            hidden=self.config.selector_hidden,
            num_layers=2,
        )
        trainer = Trainer(
            selector,
            TrainingConfig(epochs=self.config.selector_epochs, patience=self.config.selector_epochs),
        )
        val_index = graph.split.val if graph.split.val.size else None
        trainer.fit(
            graph.adjacency, graph.features, graph.labels, graph.split.train, val_index
        )
        # First-layer hidden representation (post-ReLU), computed without grad.
        from repro.autograd.tensor import no_grad
        from repro.models.base import normalize_adjacency, propagate

        selector.eval()
        with no_grad():
            operator = normalize_adjacency(graph.adjacency)
            hidden = propagate(operator, selector.conv_0(selector.as_tensor(graph.features)))
            hidden = F.relu(hidden)
        return hidden.data


class RandomNodeSelector:
    """Uniformly random poisoned-node selection (the BGC_Rand ablation)."""

    def __init__(self, exclude_target_class: bool = True) -> None:
        self.exclude_target_class = exclude_target_class

    def select(
        self,
        graph: GraphData,
        budget: int,
        target_class: int,
        rng: np.random.Generator,
        candidates: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sample ``budget`` candidate nodes uniformly at random."""
        if budget < 1:
            raise AttackError(f"poison budget must be >= 1, got {budget}")
        if candidates is None:
            blocked = np.zeros(graph.num_nodes, dtype=bool)
            blocked[graph.split.val] = True
            blocked[graph.split.test] = True
            pool = np.flatnonzero(~blocked)
        else:
            pool = np.asarray(candidates, dtype=np.int64)
        if self.exclude_target_class:
            pool = pool[graph.labels[pool] != target_class]
        if pool.size == 0:
            raise AttackError("candidate pool for poisoning is empty")
        size = min(budget, pool.size)
        return np.sort(rng.choice(pool, size=size, replace=False))
