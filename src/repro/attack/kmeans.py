"""A small, dependency-free K-Means implementation.

Used by the poisoned-node selector to cluster per-class node representations.
Lloyd's algorithm with k-means++ initialisation; deterministic given the
caller's random generator.
"""

from __future__ import annotations


import numpy as np

from repro.exceptions import AttackError


class KMeans:
    """Lloyd's K-Means with k-means++ seeding.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``K``.
    max_iterations:
        Upper bound on Lloyd iterations.
    tolerance:
        Stop when the total centroid movement drops below this value.
    """

    def __init__(
        self,
        num_clusters: int,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
    ) -> None:
        if num_clusters < 1:
            raise AttackError(f"num_clusters must be >= 1, got {num_clusters}")
        if max_iterations < 1:
            raise AttackError(f"max_iterations must be >= 1, got {max_iterations}")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.centroids: np.ndarray | None = None
        self.assignments: np.ndarray | None = None
        self.inertia: float = float("inf")

    def fit(self, points: np.ndarray, rng: np.random.Generator) -> "KMeans":
        """Cluster ``points`` (``(n, d)``) into ``num_clusters`` groups."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise AttackError(f"points must be a 2-D array, got shape {points.shape}")
        n = points.shape[0]
        if n == 0:
            raise AttackError("cannot cluster an empty point set")
        effective_k = min(self.num_clusters, n)
        centroids = self._plus_plus_init(points, effective_k, rng)
        assignments = np.zeros(n, dtype=np.int64)
        for _ in range(self.max_iterations):
            distances = self._pairwise_sq_distances(points, centroids)
            assignments = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            for k in range(effective_k):
                members = points[assignments == k]
                if members.shape[0] > 0:
                    new_centroids[k] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its centroid.
                    farthest = int(np.argmax(distances.min(axis=1)))
                    new_centroids[k] = points[farthest]
            movement = float(np.abs(new_centroids - centroids).sum())
            centroids = new_centroids
            if movement < self.tolerance:
                break
        distances = self._pairwise_sq_distances(points, centroids)
        assignments = np.argmin(distances, axis=1)
        self.centroids = centroids
        self.assignments = assignments
        self.inertia = float(distances[np.arange(n), assignments].sum())
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign each point to its nearest fitted centroid."""
        if self.centroids is None:
            raise AttackError("predict called before fit")
        distances = self._pairwise_sq_distances(np.asarray(points, dtype=np.float64), self.centroids)
        return np.argmin(distances, axis=1)

    def distances_to_own_centroid(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance of each point to the centroid of its cluster."""
        if self.centroids is None or self.assignments is None:
            raise AttackError("distances_to_own_centroid called before fit")
        points = np.asarray(points, dtype=np.float64)
        diffs = points - self.centroids[self.assignments]
        return np.sqrt((diffs ** 2).sum(axis=1))

    @staticmethod
    def _pairwise_sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        point_norms = (points ** 2).sum(axis=1, keepdims=True)
        centroid_norms = (centroids ** 2).sum(axis=1)
        return point_norms - 2.0 * points @ centroids.T + centroid_norms

    @staticmethod
    def _plus_plus_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        n = points.shape[0]
        centroids = np.empty((k, points.shape[1]), dtype=np.float64)
        first = int(rng.integers(n))
        centroids[0] = points[first]
        closest = ((points - centroids[0]) ** 2).sum(axis=1)
        for index in range(1, k):
            total = closest.sum()
            # Degenerate distance mass falls back to a uniform draw.  Three
            # cases would otherwise crash or corrupt `rng.choice(p=...)`:
            # an all-duplicate point set (total == 0 → 0/0 NaN weights), a
            # NaN coordinate (total is NaN, every comparison False, NaN
            # weights propagate), and huge coordinates whose squared
            # distances overflow to inf (weights collapse to 0/NaN and no
            # longer sum to 1).
            if not np.isfinite(total) or total <= 0:
                chosen = int(rng.integers(n))
            else:
                probabilities = closest / total
                chosen = int(rng.choice(n, p=probabilities))
            centroids[index] = points[chosen]
            distances = ((points - centroids[index]) ** 2).sum(axis=1)
            closest = np.minimum(closest, distances)
        return centroids
