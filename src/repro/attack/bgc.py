"""BGC: the Backdoor attack against Graph Condensation (Algorithm 1).

The attacker is the condensation-service provider.  Each condensation epoch
interleaves three updates:

1. a surrogate SGC model is (re)trained on the current condensed graph,
2. the adaptive trigger generator is optimised to make that surrogate
   classify trigger-attached nodes into the target class,
3. the refreshed triggers are attached to the selected representative nodes
   of the original graph and the condensed graph takes one condensation step
   against this poisoned graph.

The result is a condensed graph that looks clean, trains GNNs with near-clean
utility, yet encodes the trigger → target-class association.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.attack.selection import (
    RandomNodeSelector,
    RepresentativeNodeSelector,
    SelectionConfig,
)
from repro.attack.trigger import (
    TriggerConfig,
    TriggerGenerator,
    batched_local_trigger_loss,
    generate_hard_triggers,
)
from repro.autograd import Adam, Parameter, Tensor
from repro.autograd import functional as F
from repro.condensation.base import CondensedGraph, Condenser
from repro.condensation.gradient_matching import (
    closed_form_surrogate_steps,
    normalize_dense_tensor,
)
from repro.exceptions import AttackError
from repro.graph.data import GraphData
from repro.graph.normalize import dense_gcn_normalize
from repro.graph.splits import SplitIndices
from repro.graph.subgraph import attach_trigger_subgraph
from repro.graph.view import poison_graph_view
from repro.registry import ATTACKS
from repro.utils.logging import get_logger

logger = get_logger("attack.bgc")


@dataclass
class BGCConfig:
    """Hyperparameters of the BGC attack (defaults follow the paper)."""

    target_class: int = 0
    poison_ratio: float | None = 0.1
    poison_number: int | None = None
    epochs: int = 30
    surrogate_steps: int = 20
    surrogate_lr: float = 0.05
    surrogate_hops: int = 2
    generator_steps: int = 2
    update_batch_size: int = 12
    max_neighbors: int = 10
    directed: bool = False
    source_class: int | None = None
    use_random_selection: bool = False
    #: Build the per-epoch poisoned graph as a zero-copy
    #: :class:`~repro.graph.view.GraphView` instead of materialising the
    #: ``(N + P·t, F)`` feature vstack.  Bit-identical results either way
    #: (pinned by the hot-path equivalence tests); False is the materialised
    #: reference path.
    use_graph_view: bool = True
    #: Carry the surrogate weight and Adam moments across attack epochs and
    #: retrain with ``surrogate_refresh_steps`` closed-form steps per epoch
    #: instead of a fresh ``surrogate_steps``-step autograd run.  False is
    #: the full-retrain reference path (the paper's Algorithm 1 verbatim).
    surrogate_warm_start: bool = False
    #: Steps per warm epoch after the first (``None`` = ``surrogate_steps``);
    #: same semantics and default as the condenser-side
    #: :attr:`repro.condensation.base.CondensationConfig.surrogate_refresh_steps`.
    surrogate_refresh_steps: int | None = None
    trigger: TriggerConfig = field(default_factory=TriggerConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)

    def __post_init__(self) -> None:
        if self.poison_ratio is None and self.poison_number is None:
            raise AttackError("one of poison_ratio or poison_number must be set")
        if self.poison_ratio is not None and not 0.0 < self.poison_ratio <= 1.0:
            raise AttackError(f"poison_ratio must lie in (0, 1], got {self.poison_ratio}")
        if self.poison_number is not None and self.poison_number < 1:
            raise AttackError(f"poison_number must be >= 1, got {self.poison_number}")
        if self.epochs < 1:
            raise AttackError("epochs must be >= 1")
        if self.generator_steps < 0:
            raise AttackError("generator_steps must be >= 0")
        if self.update_batch_size < 1:
            raise AttackError("update_batch_size must be >= 1")
        if self.surrogate_refresh_steps is not None and self.surrogate_refresh_steps < 1:
            raise AttackError(
                f"surrogate_refresh_steps must be >= 1, got {self.surrogate_refresh_steps}"
            )
        if self.directed and self.source_class is None:
            raise AttackError("directed attacks require a source_class")


@dataclass
class BGCResult:
    """Everything the attacker hands over (and keeps) after a BGC run."""

    condensed: CondensedGraph
    generator: TriggerGenerator
    target_class: int
    poisoned_nodes: np.ndarray
    history: List[Dict[str, float]] = field(default_factory=list)


@ATTACKS.register("bgc", config_cls=BGCConfig)
class BGC:
    """Backdoor attack against graph condensation (the paper's method)."""

    def __init__(self, config: BGCConfig | None = None) -> None:
        self.config = config or BGCConfig()
        #: Warm-start surrogate lineage (weight + Adam moments); reset per run.
        self._surrogate_state: dict | None = None
        #: Per-run memo of constant trigger scaffolds (see _update_generator).
        self._scaffold_cache: dict = {}

    # -------------------------------------------------------------- #
    # Public entry point
    # -------------------------------------------------------------- #
    def run(
        self,
        graph: GraphData,
        condenser: Condenser,
        rng: np.random.Generator,
    ) -> BGCResult:
        """Execute Algorithm 1 and return the poisoned condensed graph."""
        config = self.config
        working = graph.training_view() if graph.inductive else graph
        if config.target_class >= working.num_classes:
            raise AttackError(
                f"target_class {config.target_class} out of range for "
                f"{working.num_classes} classes"
            )

        poisoned_nodes = self._select_poisoned_nodes(working, rng)
        poisoned_labels = working.labels.copy()
        poisoned_labels[poisoned_nodes] = config.target_class
        poisoned_train = np.union1d(working.split.train, poisoned_nodes)
        base_poisoned = working.with_(
            labels=poisoned_labels,
            split=SplitIndices(
                train=poisoned_train,
                val=working.split.val,
                test=working.split.test,
            ),
        )

        condenser.initialize(base_poisoned, rng)
        generator = TriggerGenerator(working.num_features, rng, config.trigger)
        generator.calibrate(working.features)
        generator_optimizer = Adam(generator.parameters(), lr=config.trigger.learning_rate)
        encoder_inputs = generator.encode_inputs(working.adjacency, working.features)
        self._surrogate_state = None  # fresh warm-start lineage per run
        # Constant per-node trigger scaffolds (local sets, host adjacency
        # blocks, host feature rows) are shared across every generator step
        # and attack epoch of this run — `working` and max_neighbors are
        # fixed — so their sparse gathers are paid once per node per run.
        self._scaffold_cache = {}

        history: List[Dict[str, float]] = []
        for epoch in range(config.epochs):
            condensed = condenser.synthetic()
            surrogate_weight = self._train_surrogate(condensed, rng)
            trigger_loss = self._update_generator(
                working, encoder_inputs, generator, generator_optimizer, surrogate_weight, rng
            )
            poisoned_graph = self._build_poisoned_graph(
                working, base_poisoned, generator, poisoned_nodes
            )
            matching_loss = condenser.epoch_step(poisoned_graph)
            history.append(
                {
                    "epoch": float(epoch),
                    "trigger_loss": float(trigger_loss),
                    "condensation_loss": float(matching_loss),
                }
            )
            if epoch % max(1, config.epochs // 5) == 0:
                logger.debug(
                    "bgc epoch %d trigger loss %.4f matching loss %.4f",
                    epoch,
                    trigger_loss,
                    matching_loss,
                )

        return BGCResult(
            condensed=condenser.synthetic(),
            generator=generator,
            target_class=config.target_class,
            poisoned_nodes=poisoned_nodes,
            history=history,
        )

    # -------------------------------------------------------------- #
    # Poisoned-node selection
    # -------------------------------------------------------------- #
    def _select_poisoned_nodes(
        self, working: GraphData, rng: np.random.Generator
    ) -> np.ndarray:
        config = self.config
        if config.poison_number is not None:
            budget = config.poison_number
        else:
            # The poisoning ratio is taken relative to the labelled training
            # set (the paper's absolute poison numbers for Flickr/Reddit are
            # ~0.1-0.2% of their training sets; a ratio of the full node count
            # would swamp the 140-node Planetoid training sets and destroy
            # utility, which is exactly what BGC is designed to avoid).
            budget = max(1, int(round(config.poison_ratio * working.split.train.size)))
        candidates = None
        if config.directed:
            candidates = np.flatnonzero(working.labels == config.source_class)
            blocked = np.zeros(working.num_nodes, dtype=bool)
            blocked[working.split.val] = True
            blocked[working.split.test] = True
            candidates = candidates[~blocked[candidates]]
        if config.use_random_selection:
            selector = RandomNodeSelector()
            return selector.select(working, budget, config.target_class, rng, candidates)
        selector = RepresentativeNodeSelector(config.selection)
        return selector.select(working, budget, config.target_class, rng, candidates)

    # -------------------------------------------------------------- #
    # Surrogate model on the condensed graph
    # -------------------------------------------------------------- #
    def _train_surrogate(
        self, condensed: CondensedGraph, rng: np.random.Generator
    ) -> np.ndarray:
        """Train an SGC surrogate on the condensed graph; return its weight matrix.

        Two regimes, selected by ``config.surrogate_warm_start``:

        * **full retrain** (the reference, default): a fresh weight and a
          fresh autograd Adam run of ``surrogate_steps`` per attack epoch —
          Algorithm 1 verbatim;
        * **warm start**: the weight and Adam moments persist across epochs
          (the condensed graph moves a little per epoch, so the surrogate is
          one continuous optimisation batched across attack epochs), epochs
          after the first run only ``surrogate_refresh_steps`` closed-form
          gradient steps — ``H^T (softmax(HW) - Y)/n`` fed straight into
          Adam, no autograd graph.
        """
        config = self.config
        if not config.surrogate_warm_start:
            propagated = self._propagate_condensed(condensed)
            num_classes = max(int(condensed.labels.max()) + 1, config.target_class + 1)
            weight = Parameter(
                rng.normal(scale=0.1, size=(condensed.features.shape[1], num_classes))
            )
            optimizer = Adam([weight], lr=config.surrogate_lr)
            inputs = Tensor(propagated)
            for _ in range(config.surrogate_steps):
                optimizer.zero_grad()
                logits = inputs.matmul(weight)
                loss = F.cross_entropy(logits, condensed.labels)
                loss.backward()
                optimizer.step()
            return weight.data.copy()
        return self._train_surrogate_warm(condensed, rng)

    def _train_surrogate_warm(
        self, condensed: CondensedGraph, rng: np.random.Generator
    ) -> np.ndarray:
        """Warm-start leg of :meth:`_train_surrogate` (closed-form steps)."""
        config = self.config
        propagated = self._propagate_condensed(condensed)
        num_classes = max(int(condensed.labels.max()) + 1, config.target_class + 1)
        shape = (condensed.features.shape[1], num_classes)
        state = self._surrogate_state
        if state is None or state["weight"].shape != shape:
            state = {
                "weight": rng.normal(scale=0.1, size=shape),
                "m": np.zeros(shape),
                "v": np.zeros(shape),
                "step": 0,
            }
            self._surrogate_state = state
            steps = config.surrogate_steps
        else:
            steps = (
                config.surrogate_refresh_steps
                if config.surrogate_refresh_steps is not None
                else config.surrogate_steps
            )
        closed_form_surrogate_steps(
            propagated, condensed.labels, state["weight"], state["m"], state["v"],
            state["step"], steps, config.surrogate_lr,
        )
        state["step"] += steps
        return state["weight"].copy()

    def _propagate_condensed(self, condensed: CondensedGraph) -> np.ndarray:
        adjacency = condensed.adjacency
        if np.allclose(adjacency, np.eye(adjacency.shape[0])):
            return condensed.features
        normalized = dense_gcn_normalize(adjacency)
        propagated = condensed.features
        for _ in range(self.config.surrogate_hops):
            propagated = normalized @ propagated
        return propagated

    # -------------------------------------------------------------- #
    # Trigger-generator update
    # -------------------------------------------------------------- #
    def _update_generator(
        self,
        working: GraphData,
        encoder_inputs: np.ndarray,
        generator: TriggerGenerator,
        optimizer: Adam,
        surrogate_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> float:
        """Run ``generator_steps`` optimisation steps of the trigger generator.

        Each step draws one batch and optimises the mean surrogate
        cross-entropy (Eq. 13) over it via
        :func:`~repro.attack.trigger.batched_local_trigger_loss` — a single
        block-diagonal autograd graph for the whole batch rather than one
        small graph per node.
        """
        config = self.config
        weight_tensor = Tensor(surrogate_weight)
        if config.directed:
            pool = np.flatnonzero(working.labels == config.source_class)
        else:
            pool = np.arange(working.num_nodes)
        if pool.size == 0:
            raise AttackError("no nodes available to optimise triggers against")
        last_loss = float("nan")
        for _ in range(config.generator_steps):
            batch_size = min(config.update_batch_size, pool.size)
            batch = rng.choice(pool, size=batch_size, replace=False)
            optimizer.zero_grad()
            loss = batched_local_trigger_loss(
                batch,
                working,
                encoder_inputs,
                generator,
                weight_tensor,
                target_class=config.target_class,
                max_neighbors=config.max_neighbors,
                num_hops=config.surrogate_hops,
                scaffold_cache=self._scaffold_cache,
            )
            loss.backward()
            optimizer.step()
            last_loss = float(loss.item())
        return last_loss

    # -------------------------------------------------------------- #
    # Poisoned-graph construction
    # -------------------------------------------------------------- #
    def _build_poisoned_graph(
        self,
        working: GraphData,
        base_poisoned: GraphData,
        generator: TriggerGenerator,
        poisoned_nodes: np.ndarray,
    ):
        """Attach the current triggers to the poisoned nodes of the original graph.

        The result is recorded as a delta against ``working``: the only
        pre-existing rows the attachment touches are the poisoned host nodes
        (each gains one edge to its trigger block), so downstream propagation
        through :class:`~repro.graph.cache.PropagationCache` recomputes only
        the triggers' K-hop neighbourhood each attack epoch instead of the
        whole graph.

        With ``config.use_graph_view`` (the default) the poisoned graph is a
        zero-copy :class:`~repro.graph.view.GraphView` — trigger rows overlay
        the base feature matrix instead of being vstacked under it, and the
        condenser reads propagated features in difference form.  The
        materialised ``GraphData`` branch below is the pinned reference path;
        both produce bit-identical condensation steps (asserted in
        ``tests/test_hotpath_equivalence.py``).
        """
        features, adjacency = generate_hard_triggers(
            generator, working.adjacency, working.features, poisoned_nodes
        )
        if self.config.use_graph_view:
            return poison_graph_view(
                working,
                poisoned_nodes,
                features,
                adjacency,
                labels=base_poisoned.labels,
                trigger_label=self.config.target_class,
                split=base_poisoned.split.copy(),
                name=f"{working.name}-poisoned",
                metadata=dict(working.metadata),
            )
        new_adjacency, new_features, _ = attach_trigger_subgraph(
            working.adjacency, working.features, poisoned_nodes, features, adjacency
        )
        num_new = new_features.shape[0] - working.num_nodes
        trigger_labels = np.full(num_new, self.config.target_class, dtype=np.int64)
        return working.with_delta(
            poisoned_nodes,
            adjacency=new_adjacency,
            features=new_features,
            labels=np.concatenate([base_poisoned.labels, trigger_labels]),
            split=base_poisoned.split.copy(),
            name=f"{working.name}-poisoned",
            metadata=dict(working.metadata),
        )
