"""Backdoor attacks against graph condensation.

* :class:`~repro.attack.bgc.BGC` — the paper's attack: representative-node
  poisoning plus a trigger generator that is re-optimised at every
  condensation epoch (Algorithm 1).
* :class:`~repro.attack.naive.NaivePoison` — directly injecting triggers into
  the condensed graph (the Figure 1 strawman).
* :mod:`repro.attack.baselines` — GTA and DOORPING adapted to graph
  condensation (Figure 4 comparison).
* :class:`~repro.attack.sampled.SampledEdgeAttack` — PRBCD-style sampled
  search-space edge flips (budgeted topology poisoning at any scale).
* :class:`~repro.attack.injection.NodeInjectionAttack` — budgeted fake-node
  injection with feature-bound projection.
"""

from repro.attack.kmeans import KMeans
from repro.attack.selection import (
    RepresentativeNodeSelector,
    RandomNodeSelector,
    SelectionConfig,
)
from repro.attack.trigger import (
    TriggerGenerator,
    TriggerConfig,
    UniversalTriggerGenerator,
    batched_local_trigger_loss,
    generate_hard_triggers,
    local_trigger_loss,
)
from repro.attack.bgc import BGC, BGCConfig, BGCResult
from repro.attack.naive import NaivePoison
from repro.attack.baselines import GTAAttack, DoorpingAttack
from repro.attack.sampled import SampledEdgeAttack, SampledEdgeConfig
from repro.attack.injection import NodeInjectionAttack, InjectionConfig
from repro.attack.analysis import (
    condensed_graph_divergence,
    trigger_statistics,
    class_distribution_shift,
)

__all__ = [
    "KMeans",
    "RepresentativeNodeSelector",
    "RandomNodeSelector",
    "SelectionConfig",
    "TriggerGenerator",
    "TriggerConfig",
    "UniversalTriggerGenerator",
    "batched_local_trigger_loss",
    "generate_hard_triggers",
    "local_trigger_loss",
    "BGC",
    "BGCConfig",
    "BGCResult",
    "NaivePoison",
    "GTAAttack",
    "DoorpingAttack",
    "SampledEdgeAttack",
    "SampledEdgeConfig",
    "NodeInjectionAttack",
    "InjectionConfig",
    "condensed_graph_divergence",
    "trigger_statistics",
    "class_distribution_shift",
]
