"""Stealthiness and attack-behaviour analysis tools.

These helpers quantify the claims the paper makes qualitatively:

* a BGC-poisoned condensed graph is statistically close to a clean one
  (:func:`condensed_graph_divergence`),
* the triggers a generator produces stay within the host graph's feature
  range and are structurally small (:func:`trigger_statistics`),
* the per-class composition of the condensed graph is unchanged
  (:func:`class_distribution_shift`).

They are used by the audit example and the extension benchmarks, and are
generally useful when developing new defenses.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.attack.trigger import generate_hard_triggers
from repro.condensation.base import CondensedGraph
from repro.exceptions import AttackError
from repro.graph.data import GraphData


def condensed_graph_divergence(
    clean: CondensedGraph, poisoned: CondensedGraph
) -> Dict[str, float]:
    """Statistical distances between a clean and a poisoned condensed graph.

    Returns feature-moment gaps, edge-count gap and per-class mean-feature
    cosine similarity — the quantities a customer could realistically compare
    if they somehow had access to both versions.
    """
    if clean.features.shape[1] != poisoned.features.shape[1]:
        raise AttackError("condensed graphs have different feature dimensionality")
    clean_edges = float((clean.adjacency > 0).sum())
    poisoned_edges = float((poisoned.adjacency > 0).sum())

    per_class_cosine = []
    for cls in np.unique(clean.labels):
        clean_members = clean.features[clean.labels == cls]
        poisoned_members = poisoned.features[poisoned.labels == cls]
        if clean_members.size == 0 or poisoned_members.size == 0:
            continue
        a = clean_members.mean(axis=0)
        b = poisoned_members.mean(axis=0)
        denominator = np.linalg.norm(a) * np.linalg.norm(b) + 1e-12
        per_class_cosine.append(float(a @ b / denominator))

    return {
        "feature_mean_gap": float(abs(clean.features.mean() - poisoned.features.mean())),
        "feature_std_gap": float(abs(clean.features.std() - poisoned.features.std())),
        "edge_count_gap": abs(clean_edges - poisoned_edges),
        "mean_class_prototype_cosine": float(np.mean(per_class_cosine)) if per_class_cosine else 1.0,
        "node_count_gap": float(abs(clean.num_nodes - poisoned.num_nodes)),
    }


def trigger_statistics(
    generator, graph: GraphData, nodes: np.ndarray
) -> Dict[str, float]:
    """Summary statistics of the triggers generated for ``nodes``.

    Reports how large the trigger features are relative to the host graph and
    how dense the internal trigger structure is — the quantities that govern
    how visible the triggers would be to an inspection of the poisoned graph.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        raise AttackError("trigger_statistics requires at least one node")
    features, adjacency = generate_hard_triggers(generator, graph.adjacency, graph.features, nodes)
    host_max = float(np.abs(graph.features).max()) or 1.0
    trigger_size = features.shape[1]
    possible_internal_edges = max(1, trigger_size * (trigger_size - 1))
    internal_density = float(adjacency.sum() / (adjacency.shape[0] * possible_internal_edges))
    pairwise_variation = 0.0
    if features.shape[0] > 1:
        flat = features.reshape(features.shape[0], -1)
        pairwise_variation = float(np.linalg.norm(flat - flat.mean(axis=0), axis=1).mean())
    return {
        "trigger_size": float(trigger_size),
        "feature_abs_mean": float(np.abs(features).mean()),
        "feature_abs_max": float(np.abs(features).max()),
        "relative_feature_max": float(np.abs(features).max() / host_max),
        "internal_edge_density": internal_density,
        "per_node_variation": pairwise_variation,
        "added_nodes_per_target": float(trigger_size),
        "added_edges_per_target": float(1 + adjacency[0].sum() / 2),
    }


def class_distribution_shift(clean: CondensedGraph, poisoned: CondensedGraph) -> Dict[str, float]:
    """Total-variation distance between the two condensed label distributions."""
    num_classes = max(clean.num_classes, poisoned.num_classes)
    clean_hist = np.bincount(clean.labels, minlength=num_classes).astype(float)
    poisoned_hist = np.bincount(poisoned.labels, minlength=num_classes).astype(float)
    clean_hist /= max(clean_hist.sum(), 1.0)
    poisoned_hist /= max(poisoned_hist.sum(), 1.0)
    return {
        "total_variation": float(0.5 * np.abs(clean_hist - poisoned_hist).sum()),
        "clean_entropy": _entropy(clean_hist),
        "poisoned_entropy": _entropy(poisoned_hist),
    }


def _entropy(distribution: np.ndarray) -> float:
    nonzero = distribution[distribution > 0]
    return float(-(nonzero * np.log(nonzero)).sum())
