"""Adaptive trigger generation (Section IV-C of the paper).

The trigger generator ``f_g`` maps a node's representation to the features
*and* internal structure of a small trigger subgraph.  Its encoder is an MLP
by default; the Table V ablation swaps in a GCN encoder (operating on
propagated features) or a single-layer / 8-head Transformer.  The generated
adjacency is binarised in the forward pass and receives straight-through
gradients, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.autograd import Linear, Module, Tensor
from repro.autograd import functional as F
from repro.exceptions import AttackError
from repro.graph.propagation import sgc_precompute
from repro.models.transformer import TransformerEncoderLayer


@dataclass
class TriggerConfig:
    """Hyperparameters of the trigger generator.

    ``feature_scale`` is a *relative* bound: generated trigger features are
    squashed through ``tanh`` and multiplied by
    ``feature_scale * max|X|`` of the host graph (set via
    :meth:`TriggerGenerator.calibrate`).  Bounding the magnitude keeps the
    attack a genuine backdoor — the association is learned by the condensed
    graph — rather than an adversarial-magnitude perturbation that would fool
    clean models too (clean-model ASR stays at chance level, as in the
    paper's C-ASR columns).
    """

    trigger_size: int = 4
    hidden: int = 64
    encoder: str = "mlp"
    learning_rate: float = 0.01
    feature_scale: float = 0.1
    num_hops: int = 2

    def __post_init__(self) -> None:
        if self.trigger_size < 1:
            raise AttackError(f"trigger_size must be >= 1, got {self.trigger_size}")
        if self.encoder not in ("mlp", "gcn", "transformer"):
            raise AttackError(
                f"encoder must be one of 'mlp', 'gcn', 'transformer', got {self.encoder!r}"
            )
        if self.learning_rate <= 0:
            raise AttackError("learning_rate must be positive")


class TriggerGenerator(Module):
    """Generates per-node trigger features and structure from node representations.

    ``forward(representations)`` returns a pair ``(features, adjacency)`` of
    tensors with shapes ``(n, t, d)`` and ``(n, t, t)`` flattened to 2-D
    (``(n, t*d)`` / ``(n, t*t)``) internally; use :meth:`generate` for the
    reshaped, binarised view.
    """

    def __init__(
        self,
        num_features: int,
        rng: np.random.Generator,
        config: TriggerConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or TriggerConfig()
        self.num_features = num_features
        hidden = self.config.hidden
        encoder = self.config.encoder
        if encoder == "transformer":
            self.input_projection = Linear(num_features, hidden, rng=rng)
            self.encoder_block = TransformerEncoderLayer(hidden, num_heads=8, rng=rng)
        else:
            # The "gcn" encoder receives structure-propagated features as its
            # input (see encode_nodes), so both variants are linear stacks here.
            self.encoder_layer1 = Linear(num_features, hidden, rng=rng)
            self.encoder_layer2 = Linear(hidden, hidden, rng=rng)
        trigger_size = self.config.trigger_size
        self.feature_head = Linear(hidden, trigger_size * num_features, rng=rng)
        self.structure_head = Linear(hidden, trigger_size * trigger_size, rng=rng)
        self._feature_bound = self.config.feature_scale

    # -------------------------------------------------------------- #
    # Calibration and encoding
    # -------------------------------------------------------------- #
    def calibrate(self, host_features: np.ndarray) -> None:
        """Set the trigger feature bound relative to the host graph's scale."""
        magnitude = float(np.abs(np.asarray(host_features)).max())
        if magnitude <= 0.0:
            magnitude = 1.0
        self._feature_bound = self.config.feature_scale * magnitude

    def encode_inputs(self, graph_adjacency, features: np.ndarray) -> np.ndarray:
        """Prepare the raw encoder inputs for a set of nodes.

        The MLP and Transformer encoders consume raw node features; the GCN
        encoder consumes SGC-propagated features so that graph structure
        informs the triggers, mirroring Eq. 10.
        """
        if self.config.encoder == "gcn":
            return sgc_precompute(graph_adjacency, features, self.config.num_hops)
        return np.asarray(features, dtype=np.float64)

    def _encode(self, inputs: Tensor) -> Tensor:
        if self.config.encoder == "transformer":
            projected = self.input_projection(inputs)
            return self.encoder_block(projected)
        hidden = F.relu(self.encoder_layer1(inputs))
        return self.encoder_layer2(hidden)

    def _encode_rowwise(self, inputs: Tensor) -> Tensor:
        """Encode a batch with strictly row-independent semantics.

        Identical to :meth:`_encode` for the MLP and GCN encoders (row-wise
        linear stacks); the transformer encoder treats each row as its own
        length-1 sequence instead of attending across the batch, matching
        what :meth:`trigger_for_node` computes per node.
        """
        if self.config.encoder == "transformer":
            projected = self.input_projection(inputs)
            return self.encoder_block.forward_per_token(projected)
        return self._encode(inputs)

    # -------------------------------------------------------------- #
    # Generation
    # -------------------------------------------------------------- #
    def forward(self, inputs: Tensor) -> Tuple[Tensor, Tensor]:
        """Return flattened trigger features ``(n, t*d)`` and soft structure ``(n, t*t)``."""
        encoded = self._encode(inputs)
        features = F.tanh(self.feature_head(encoded)) * self._feature_bound
        structure_logits = self.structure_head(encoded)
        structure = F.sigmoid(structure_logits)
        return features, structure

    def trigger_for_node(self, node_input: np.ndarray) -> Tuple[Tensor, Tensor]:
        """Differentiable trigger (features ``(t, d)``, soft adjacency ``(t, t)``) for one node."""
        inputs = Tensor(np.asarray(node_input, dtype=np.float64).reshape(1, -1))
        flat_features, flat_structure = self.forward(inputs)
        t = self.config.trigger_size
        features = flat_features.reshape(t, self.num_features)
        soft = flat_structure.reshape(t, t)
        symmetric = (soft + soft.T) * 0.5
        structure = F.straight_through_binarize(symmetric, threshold=0.5)
        # Zero the diagonal: trigger nodes carry no self-loops of their own.
        mask = Tensor(1.0 - np.eye(t))
        return features, structure * mask

    def triggers_for_nodes(self, node_inputs: np.ndarray) -> Tuple[Tensor, Tensor]:
        """Differentiable triggers for a whole batch in one forward pass.

        Returns ``(features, structures)`` with shapes ``(B, t, d)`` and
        ``(B, t, t)``; row ``i`` equals :meth:`trigger_for_node` of input
        ``i`` (up to float rounding), but the batch shares one autograd
        graph.  Row independence is preserved for every encoder — the
        transformer encoder runs per-token (see :meth:`_encode_rowwise`)
        rather than attending across whichever nodes happen to share the
        batch.
        """
        inputs = Tensor(np.asarray(node_inputs, dtype=np.float64))
        if inputs.ndim != 2:
            raise AttackError(f"node_inputs must be 2-D, got shape {inputs.shape}")
        batch = inputs.shape[0]
        t = self.config.trigger_size
        encoded = self._encode_rowwise(inputs)
        flat_features = F.tanh(self.feature_head(encoded)) * self._feature_bound
        flat_structure = F.sigmoid(self.structure_head(encoded))
        features = flat_features.reshape(batch, t, self.num_features)
        soft = flat_structure.reshape(batch, t, t)
        symmetric = (soft + F.transpose_last2(soft)) * 0.5
        structures = F.straight_through_binarize(symmetric, threshold=0.5)
        mask = Tensor(1.0 - np.eye(t))
        return features, structures * mask

    def generate(
        self, node_inputs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Hard (numpy) triggers for a batch of nodes.

        Returns ``(features, adjacency)`` with shapes ``(n, t, d)`` and
        ``(n, t, t)``; the adjacency is binary and symmetric.
        """
        from repro.autograd.tensor import no_grad

        node_inputs = np.asarray(node_inputs, dtype=np.float64)
        if node_inputs.ndim != 2:
            raise AttackError(f"node_inputs must be 2-D, got shape {node_inputs.shape}")
        t = self.config.trigger_size
        with no_grad():
            flat_features, flat_structure = self.forward(Tensor(node_inputs))
        features = flat_features.data.reshape(-1, t, self.num_features)
        soft = flat_structure.data.reshape(-1, t, t)
        symmetric = (soft + np.transpose(soft, (0, 2, 1))) * 0.5
        adjacency = (symmetric > 0.5).astype(np.float64)
        for block in adjacency:
            np.fill_diagonal(block, 0.0)
        return features, adjacency


def generate_hard_triggers(
    generator,
    graph_adjacency,
    features: np.ndarray,
    nodes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: hard triggers for ``nodes`` of a graph.

    Works for any object exposing ``encode_inputs`` and ``generate`` —
    :class:`TriggerGenerator` and :class:`UniversalTriggerGenerator` both do.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    inputs = generator.encode_inputs(graph_adjacency, features)[nodes]
    return generator.generate(inputs)


class UniversalTriggerGenerator(Module):
    """A single shared trigger applied identically to every node.

    This is the DOORPING-style trigger: one learnable block of trigger-node
    features with a fixed fully connected internal structure.  It exposes the
    same ``encode_inputs`` / ``generate`` / ``trigger_for_node`` interface as
    :class:`TriggerGenerator` so the attack and evaluation code can use either
    interchangeably.
    """

    def __init__(
        self,
        num_features: int,
        rng: np.random.Generator,
        config: TriggerConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or TriggerConfig()
        self.num_features = num_features
        t = self.config.trigger_size
        from repro.autograd.module import Parameter

        self.trigger_features = Parameter(
            rng.normal(scale=0.1, size=(t, num_features)), name="universal_trigger"
        )
        self._structure = 1.0 - np.eye(t)
        self._feature_bound = self.config.feature_scale

    def calibrate(self, host_features: np.ndarray) -> None:
        """Set the trigger feature bound relative to the host graph's scale."""
        magnitude = float(np.abs(np.asarray(host_features)).max())
        if magnitude <= 0.0:
            magnitude = 1.0
        self._feature_bound = self.config.feature_scale * magnitude

    def encode_inputs(self, graph_adjacency, features: np.ndarray) -> np.ndarray:
        """Node inputs are irrelevant for a universal trigger; pass features through."""
        del graph_adjacency
        return np.asarray(features, dtype=np.float64)

    def trigger_for_node(self, node_input: np.ndarray) -> Tuple[Tensor, Tensor]:
        """Return the shared differentiable trigger regardless of the node."""
        del node_input
        bounded = F.tanh(self.trigger_features) * self._feature_bound
        return bounded, Tensor(self._structure)

    def triggers_for_nodes(self, node_inputs: np.ndarray) -> Tuple[Tensor, Tensor]:
        """The shared trigger broadcast over the batch, gradients accumulating."""
        batch = np.asarray(node_inputs).shape[0]
        t = self.config.trigger_size
        bounded = F.tanh(self.trigger_features) * self._feature_bound
        # Broadcasting multiply tiles the (t, d) block to (B, t, d); the
        # mul-vjp un-broadcasts by summing over the batch axis, so every
        # node's gradient flows back into the single shared trigger.
        ones = Tensor(np.ones((batch, 1, 1)))
        features = ones * bounded.reshape(1, t, self.num_features)
        structures = np.repeat(self._structure[None, :, :], batch, axis=0)
        return features, Tensor(structures)

    def generate(self, node_inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Tile the shared trigger for each requested node."""
        node_inputs = np.asarray(node_inputs, dtype=np.float64)
        count = node_inputs.shape[0]
        bounded = np.tanh(self.trigger_features.data) * self._feature_bound
        features = np.repeat(bounded[None, :, :], count, axis=0)
        adjacency = np.repeat(self._structure[None, :, :], count, axis=0)
        return features, adjacency


def _local_node_set(csr, node: int, max_neighbors: int) -> np.ndarray:
    """Center-first local node set of ``node`` with degree-capped sampling.

    High-degree nodes sample ``max_neighbors`` neighbours with a per-node
    deterministic rng, so the per-node and batched loss paths (and repeated
    epochs) see identical computation graphs for the same node.
    """
    neighbors = csr.indices[csr.indptr[node] : csr.indptr[node + 1]]
    if neighbors.size > max_neighbors:
        neighbors = np.sort(
            np.random.default_rng(node).choice(neighbors, size=max_neighbors, replace=False)
        )
    return np.concatenate(([node], neighbors)).astype(np.int64)


def local_trigger_loss(
    node: int,
    graph,
    encoder_inputs: np.ndarray,
    generator,
    surrogate_weight: Tensor,
    target_class: int,
    max_neighbors: int = 10,
    num_hops: int = 2,
) -> Tensor:
    """Surrogate cross-entropy for one trigger-attached node on its local subgraph.

    The computation graph is the node's sampled 1-hop neighbourhood plus the
    trigger block.  Features are projected through the surrogate weight before
    propagation, so each evaluation costs a few hundred kiloflops while the
    gradient still flows into the trigger features and structure (and from
    there into the generator parameters).

    This is the *reference* path: :func:`batched_local_trigger_loss` computes
    the same quantity for a whole batch in a single autograd graph and is
    pinned to this function by equivalence tests.
    """
    from repro.condensation.gradient_matching import normalize_dense_tensor

    trigger_features, trigger_structure = generator.trigger_for_node(encoder_inputs[node])
    trigger_size = trigger_features.shape[0]

    local = _local_node_set(graph.adjacency, node, max_neighbors)
    n_local = local.size
    csr = graph.adjacency

    base = csr[local][:, local].toarray()
    connector_cols = np.zeros((n_local, trigger_size))
    connector_cols[0, 0] = 1.0
    connector_rows = np.zeros((trigger_size, n_local))
    connector_rows[0, 0] = 1.0

    top = Tensor.concatenate([Tensor(base), Tensor(connector_cols)], axis=1)
    bottom = Tensor.concatenate([Tensor(connector_rows), trigger_structure], axis=1)
    local_adjacency = Tensor.concatenate([top, bottom], axis=0)
    normalized = normalize_dense_tensor(local_adjacency)

    host_projection = graph.features[local] @ surrogate_weight.data
    trigger_projection = trigger_features.matmul(surrogate_weight)
    projected = Tensor.concatenate([Tensor(host_projection), trigger_projection], axis=0)

    hidden = projected
    for _ in range(num_hops):
        hidden = normalized.matmul(hidden)
    return F.cross_entropy(hidden[0:1], np.array([target_class]))


def _batched_gcn_normalize(adjacency: Tensor) -> Tensor:
    """Batched differentiable GCN normalisation of ``(B, m, m)`` blocks.

    Elementwise identical to applying
    :func:`repro.condensation.gradient_matching.normalize_dense_tensor` to
    each block (same self-loop handling and epsilon).  Delegates to the fused
    :func:`repro.autograd.functional.batched_gcn_normalize` — one analytic
    vjp instead of a six-primitive chain, which dominated the cost of an
    attack-epoch generator step.
    """
    return F.batched_gcn_normalize(adjacency)


def batched_local_trigger_loss(
    nodes: np.ndarray,
    graph,
    encoder_inputs: np.ndarray,
    generator,
    surrogate_weight: Tensor,
    target_class: int,
    max_neighbors: int = 10,
    num_hops: int = 2,
    scaffold_cache: dict | None = None,
) -> Tensor:
    """Mean of :func:`local_trigger_loss` over ``nodes`` as ONE autograd graph.

    Each node's local computation graph (sampled 1-hop neighbourhood plus
    trigger block) is an independent connected component, so the whole batch
    is propagated as a block-diagonal system: local sets are padded to a
    common width with isolated filler rows (a filler row carries only its
    self-loop, so no real row ever reads it), stacked into ``(B, m, m)``
    blocks, normalised and propagated with batched dense ops.  The result
    matches averaging the per-node reference to float rounding — values *and*
    gradients — while replacing ``B`` small autograd graphs with one.

    ``scaffold_cache`` memoises each node's constant scaffold — its local
    node set, the induced host adjacency block and the host feature rows —
    across calls.  The scaffold depends only on the graph and
    ``max_neighbors``, both fixed across the generator steps and attack
    epochs of one attack run, while the sparse gathers that build it
    dominated the per-step cost; the projection through ``surrogate_weight``
    is *not* cached (the surrogate changes every epoch).  Pass a dict owned
    by the attack run; ``None`` computes everything fresh.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.ndim != 1 or nodes.size == 0:
        raise AttackError(f"nodes must be a non-empty 1-D array, got shape {nodes.shape}")
    batch = nodes.size
    csr = graph.adjacency
    scaffolds = []
    for node in nodes:
        key = int(node)
        entry = scaffold_cache.get(key) if scaffold_cache is not None else None
        if entry is None:
            local = _local_node_set(csr, key, max_neighbors)
            entry = (
                local,
                csr[local][:, local].toarray(),
                np.asarray(graph.features[local], dtype=np.float64),
            )
            if scaffold_cache is not None:
                scaffold_cache[key] = entry
        scaffolds.append(entry)
    n_host = max(entry[0].size for entry in scaffolds)

    trigger_features, trigger_structures = generator.triggers_for_nodes(
        encoder_inputs[nodes]
    )
    trigger_size = trigger_features.shape[1]
    m = n_host + trigger_size

    # Per-node scaffolds placed into zero-padded batch blocks: filler
    # rows/columns are exactly zero by construction, so no validity masking
    # is needed, and each node's block is identical on every call.
    num_features = int(np.asarray(scaffolds[0][2]).shape[1])
    host_blocks = np.zeros((batch, n_host, n_host), dtype=np.float64)
    host_features = np.zeros((batch, n_host, num_features), dtype=np.float64)
    for i, (local, block, feats) in enumerate(scaffolds):
        size = local.size
        host_blocks[i, :size, :size] = block
        host_features[i, :size] = feats

    # Constant scaffold: host adjacency + host<->trigger connector edges; the
    # differentiable trigger structures are embedded as the trailing blocks.
    base = np.zeros((batch, m, m), dtype=np.float64)
    base[:, :n_host, :n_host] = host_blocks
    base[:, 0, n_host] = 1.0
    base[:, n_host, 0] = 1.0
    local_adjacency = F.embed_blocks(base, trigger_structures, n_host, n_host)
    normalized = _batched_gcn_normalize(local_adjacency)

    # Project features through the surrogate before propagation, as in the
    # reference: host rows are constants, trigger rows carry gradients.
    host_projection = (
        host_features.reshape(batch * n_host, num_features) @ surrogate_weight.data
    ).reshape(batch, n_host, -1)
    num_classes = surrogate_weight.shape[1]
    trigger_projection = (
        trigger_features.reshape(batch * trigger_size, -1)
        .matmul(surrogate_weight)
        .reshape(batch, trigger_size, num_classes)
    )
    projected = Tensor.concatenate(
        [Tensor(host_projection), trigger_projection], axis=1
    )

    hidden = projected
    for _ in range(num_hops):
        hidden = F.batched_matmul(normalized, hidden)
    center_logits = hidden[:, 0, :]
    return F.cross_entropy(center_logits, np.full(batch, target_class, dtype=np.int64))
