"""Synthetic stand-ins for the paper's benchmark datasets.

The original evaluation uses Cora, Citeseer (transductive) and Flickr, Reddit
(inductive) downloaded via PyTorch Geometric.  Without network access this
package generates deterministic, statistically similar synthetic graphs (see
``DESIGN.md`` for the substitution rationale).  Each loader mirrors the real
dataset's class count, feature dimensionality, split protocol and homophily;
the two large inductive graphs generate at six-figure node counts and stream
their hop chains through the blocked engine (:mod:`repro.graph.blocked`).
"""

from repro.datasets.base import (
    DatasetSpec,
    clear_dataset_cache,
    load_dataset,
    list_datasets,
    register_dataset,
)
from repro.datasets.statistics import dataset_statistics, statistics_table
from repro.datasets import planetoid, social, tiny

__all__ = [
    "DatasetSpec",
    "clear_dataset_cache",
    "load_dataset",
    "list_datasets",
    "register_dataset",
    "dataset_statistics",
    "statistics_table",
    "planetoid",
    "social",
    "tiny",
]
