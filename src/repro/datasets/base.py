"""Dataset registry and specification objects.

Datasets live in the shared :data:`repro.registry.DATASETS` registry; the
helpers here keep the historical function API (:func:`load_dataset`,
:func:`list_datasets`, :func:`register_dataset`) and the
:class:`DatasetSpec` metadata attached to every entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.exceptions import DatasetError, ReproError
from repro.graph.data import GraphData
from repro.registry import DATASETS

LoaderFn = Callable[["DatasetSpec", int], GraphData]

#: Memoised ``load_dataset`` results keyed by (lowercase name, seed).
_DATASET_CACHE: Dict[Tuple[str, int], GraphData] = {}


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a synthetic benchmark dataset.

    Attributes mirror the real dataset they emulate; ``num_nodes`` may be a
    scaled-down value for the large inductive graphs (see ``DESIGN.md``).
    """

    name: str
    num_nodes: int
    num_classes: int
    num_features: int
    inductive: bool
    avg_degree: float
    homophily: float
    train_per_class: int = 20
    num_val: int = 500
    num_test: int = 1000
    train_fraction: float = 0.5
    val_fraction: float = 0.25
    reference_nodes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)


def register_dataset(spec: DatasetSpec, loader: LoaderFn) -> None:
    """Register a dataset loader under ``spec.name`` (case-insensitive).

    The registry factory shares the :func:`load_dataset` memo, so building a
    dataset through :data:`~repro.registry.DATASETS` and through
    :func:`load_dataset` pays generation once per ``(name, seed)`` either
    way — regenerating a six-figure inductive graph per caller is the cost
    this avoids.
    """
    if spec.name.lower() in DATASETS:
        raise DatasetError(f"dataset {spec.name!r} is already registered")

    def build(seed: int = 0, _spec: DatasetSpec = spec, _loader: LoaderFn = loader) -> GraphData:
        key = (_spec.name.lower(), int(seed))
        cached = _DATASET_CACHE.get(key)
        if cached is None:
            cached = _DATASET_CACHE[key] = _loader(_spec, seed)
        return cached

    DATASETS.register(
        spec.name, factory=build, metadata={"spec": spec, "loader": loader}
    )


def list_datasets() -> List[str]:
    """Return the names of all registered datasets."""
    return DATASETS.available()


def get_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    try:
        return DATASETS.get(name).metadata["spec"]
    except ReproError as error:
        raise DatasetError(str(error)) from None


def load_dataset(name: str, seed: int = 0) -> GraphData:
    """Generate the synthetic dataset registered under ``name``.

    Results are memoised per ``(name, seed)``: generation is deterministic,
    so repeated loads return the *same* :class:`~repro.graph.data.GraphData`
    object — at the six-figure Flickr/Reddit scale regenerating (and
    re-holding) a graph per caller would dominate both time and memory.
    Callers must treat the returned graph as read-only (they already do:
    sweeps share one loaded graph across cells, and attacks operate on
    views).  :func:`clear_dataset_cache` drops the memo.

    Parameters
    ----------
    name:
        Dataset name, e.g. ``"cora"`` (case-insensitive).
    seed:
        Seed controlling graph topology, features and splits.  The same seed
        always yields exactly the same graph.
    """
    key = (name.lower(), int(seed))
    cached = _DATASET_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        graph = DATASETS.build(name, seed=seed)
    except ReproError as error:
        if name.lower() in DATASETS:
            raise
        raise DatasetError(str(error)) from None
    _DATASET_CACHE[key] = graph
    return graph


def clear_dataset_cache(name: str | None = None) -> None:
    """Drop memoised :func:`load_dataset` results (all, or one dataset's).

    Tests that re-register or monkeypatch dataset loaders (or that need two
    independently generated copies of the same graph) call this to force
    regeneration; normal runs never need it.  Passing ``name`` drops only
    that dataset's entries — useful when evicting everything would force an
    expensive six-figure graph to regenerate in unrelated later tests.
    """
    if name is None:
        _DATASET_CACHE.clear()
        return
    lowered = name.lower()
    for key in [key for key in _DATASET_CACHE if key[0] == lowered]:
        del _DATASET_CACHE[key]
