"""Dataset registry and specification objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.exceptions import DatasetError
from repro.graph.data import GraphData

LoaderFn = Callable[["DatasetSpec", int], GraphData]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a synthetic benchmark dataset.

    Attributes mirror the real dataset they emulate; ``num_nodes`` may be a
    scaled-down value for the large inductive graphs (see ``DESIGN.md``).
    """

    name: str
    num_nodes: int
    num_classes: int
    num_features: int
    inductive: bool
    avg_degree: float
    homophily: float
    train_per_class: int = 20
    num_val: int = 500
    num_test: int = 1000
    train_fraction: float = 0.5
    val_fraction: float = 0.25
    reference_nodes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)


_REGISTRY: Dict[str, tuple[DatasetSpec, LoaderFn]] = {}


def register_dataset(spec: DatasetSpec, loader: LoaderFn) -> None:
    """Register a dataset loader under ``spec.name`` (case-insensitive)."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise DatasetError(f"dataset {spec.name!r} is already registered")
    _REGISTRY[key] = (spec, loader)


def list_datasets() -> List[str]:
    """Return the names of all registered datasets."""
    return sorted(spec.name for spec, _ in _REGISTRY.values())


def get_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    key = name.lower()
    if key not in _REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(list_datasets())}"
        )
    return _REGISTRY[key][0]


def load_dataset(name: str, seed: int = 0) -> GraphData:
    """Generate the synthetic dataset registered under ``name``.

    Parameters
    ----------
    name:
        Dataset name, e.g. ``"cora"`` (case-insensitive).
    seed:
        Seed controlling graph topology, features and splits.  The same seed
        always yields exactly the same graph.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(list_datasets())}"
        )
    spec, loader = _REGISTRY[key]
    return loader(spec, seed)
