"""Dataset registry and specification objects.

Datasets live in the shared :data:`repro.registry.DATASETS` registry; the
helpers here keep the historical function API (:func:`load_dataset`,
:func:`list_datasets`, :func:`register_dataset`) and the
:class:`DatasetSpec` metadata attached to every entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.exceptions import DatasetError, ReproError
from repro.graph.data import GraphData
from repro.registry import DATASETS

LoaderFn = Callable[["DatasetSpec", int], GraphData]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a synthetic benchmark dataset.

    Attributes mirror the real dataset they emulate; ``num_nodes`` may be a
    scaled-down value for the large inductive graphs (see ``DESIGN.md``).
    """

    name: str
    num_nodes: int
    num_classes: int
    num_features: int
    inductive: bool
    avg_degree: float
    homophily: float
    train_per_class: int = 20
    num_val: int = 500
    num_test: int = 1000
    train_fraction: float = 0.5
    val_fraction: float = 0.25
    reference_nodes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)


def register_dataset(spec: DatasetSpec, loader: LoaderFn) -> None:
    """Register a dataset loader under ``spec.name`` (case-insensitive)."""
    if spec.name.lower() in DATASETS:
        raise DatasetError(f"dataset {spec.name!r} is already registered")

    def build(seed: int = 0, _spec: DatasetSpec = spec, _loader: LoaderFn = loader) -> GraphData:
        return _loader(_spec, seed)

    DATASETS.register(
        spec.name, factory=build, metadata={"spec": spec, "loader": loader}
    )


def list_datasets() -> List[str]:
    """Return the names of all registered datasets."""
    return DATASETS.available()


def get_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    try:
        return DATASETS.get(name).metadata["spec"]
    except ReproError as error:
        raise DatasetError(str(error)) from None


def load_dataset(name: str, seed: int = 0) -> GraphData:
    """Generate the synthetic dataset registered under ``name``.

    Parameters
    ----------
    name:
        Dataset name, e.g. ``"cora"`` (case-insensitive).
    seed:
        Seed controlling graph topology, features and splits.  The same seed
        always yields exactly the same graph.
    """
    try:
        return DATASETS.build(name, seed=seed)
    except ReproError as error:
        if name.lower() in DATASETS:
            raise
        raise DatasetError(str(error)) from None
