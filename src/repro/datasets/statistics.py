"""Dataset statistics (reproduces Table I of the paper)."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.datasets.base import load_dataset, list_datasets
from repro.graph.data import GraphData


def dataset_statistics(graph: GraphData) -> Dict[str, float]:
    """Return the Table-I statistics plus homophily for a loaded graph.

    ``num_nodes`` is always the size of the graph actually generated;
    ``reference_nodes`` (present when the loader recorded it in the graph
    metadata) is the published size of the real dataset being emulated.
    Keeping both side by side is what distinguishes a stand-in from its
    reference — earlier revisions reported only one of the two, inviting the
    numbers to be conflated.
    """
    stats = graph.summary()
    stats["avg_degree"] = float(graph.degrees().mean()) if graph.num_nodes else 0.0
    stats["homophily"] = edge_homophily(graph)
    reference = graph.metadata.get("reference_nodes")
    if reference is not None:
        stats["reference_nodes"] = int(reference)
    return stats


def edge_homophily(graph: GraphData) -> float:
    """Fraction of edges whose endpoints share a label."""
    coo = graph.adjacency.tocoo()
    mask = coo.row < coo.col
    rows, cols = coo.row[mask], coo.col[mask]
    if rows.size == 0:
        return 0.0
    same = graph.labels[rows] == graph.labels[cols]
    return float(np.mean(same))


def statistics_table(names: Iterable[str] | None = None, seed: int = 0) -> List[Dict[str, float]]:
    """Build the Table-I rows for the requested datasets (all by default)."""
    names = list(names) if names is not None else list_datasets()
    rows: List[Dict[str, float]] = []
    for name in names:
        graph = load_dataset(name, seed=seed)
        row: Dict[str, float] = {"name": name}  # type: ignore[dict-item]
        row.update(dataset_statistics(graph))
        rows.append(row)
    return rows
