"""Synthetic Flickr and Reddit stand-ins (inductive protocol, six-figure scale).

The stand-ins keep the class counts, feature dimensionality, inductive split
protocol and degree skew of the real graphs at genuine six-figure node
counts: Flickr at 100,000 nodes (reference 89,250) and Reddit at the full
232,965-node reference scale (only Reddit's edge density — 57M edges in the
real graph — remains scaled down).  ``num_nodes`` is the size actually
generated; ``reference_nodes`` records the published size of the graph being
emulated, and both numbers are reported side by side by
:mod:`repro.datasets.statistics` and the ``repro datasets`` CLI listing
(reddit's two columns now agree).  The blocked propagation engine
(:mod:`repro.graph.blocked`) bounds the working set of hop chains at this
scale, which is what made generating reddit at reference size affordable.  Generation is blockwise throughout — the
SBM samples edges block-pair by block-pair and the feature generator draws
row chunks — so no dense ``(N, N)`` intermediate is ever formed; hop chains
over these graphs stream through the blocked engine
(:mod:`repro.graph.blocked`) rather than materialising dense products.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetSpec, register_dataset
from repro.graph.data import GraphData
from repro.graph.generators import class_correlated_features, degree_corrected_sbm
from repro.graph.splits import make_inductive_split
from repro.utils.seed import spawn_rngs


def _build_inductive(spec: DatasetSpec, seed: int) -> GraphData:
    topology_rng, feature_rng, split_rng = spawn_rngs(_dataset_seed(spec.name, seed), 3)

    block_sizes = _zipf_blocks(spec.num_nodes, spec.num_classes, topology_rng)
    avg_block = spec.num_nodes / spec.num_classes
    p_in = min(1.0, spec.homophily * spec.avg_degree / max(avg_block, 1.0))
    p_out = min(
        1.0,
        (1.0 - spec.homophily) * spec.avg_degree / max(spec.num_nodes - avg_block, 1.0),
    )
    adjacency = degree_corrected_sbm(
        block_sizes, p_in, p_out, topology_rng, power_law_exponent=2.2
    )
    labels = np.repeat(np.arange(spec.num_classes), block_sizes)

    features = class_correlated_features(
        labels,
        num_features=spec.num_features,
        signal_words_per_class=max(3, spec.num_features // (4 * spec.num_classes)),
        signal_strength=0.4,
        density=0.02,
        rng=feature_rng,
    )
    split = make_inductive_split(
        num_nodes=spec.num_nodes,
        train_fraction=spec.train_fraction,
        val_fraction=spec.val_fraction,
        rng=split_rng,
    )
    return GraphData(
        adjacency=adjacency,
        features=features,
        labels=labels,
        split=split,
        name=spec.name,
        inductive=True,
        metadata={
            "avg_degree_target": spec.avg_degree,
            "homophily_target": spec.homophily,
            "reference_nodes": float(spec.reference_nodes),
        },
    )


def _zipf_blocks(num_nodes: int, num_classes: int, rng: np.random.Generator) -> list[int]:
    """Zipf-distributed class sizes (social graphs have skewed class frequencies)."""
    ranks = np.arange(1, num_classes + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights = weights / weights.sum()
    sizes = np.maximum(8, np.round(weights * num_nodes).astype(int))
    sizes[0] += num_nodes - sizes.sum()
    rng.shuffle(sizes)
    return sizes.tolist()


def _dataset_seed(name: str, seed: int) -> int:
    """Deterministic (crc32-based) per-dataset seed mixing."""
    import zlib

    return (zlib.crc32(name.lower().encode("utf-8")) + 1_000_003 * int(seed)) % (2**31)


FLICKR_SPEC = DatasetSpec(
    name="flickr",
    num_nodes=100_000,
    num_classes=7,
    num_features=500,
    inductive=True,
    avg_degree=10.0,
    homophily=0.55,
    train_fraction=0.5,
    val_fraction=0.25,
    reference_nodes=89250,
)

REDDIT_SPEC = DatasetSpec(
    name="reddit",
    num_nodes=232_965,
    num_classes=10,
    num_features=602,
    inductive=True,
    avg_degree=25.0,
    homophily=0.78,
    train_fraction=0.66,
    val_fraction=0.10,
    reference_nodes=232965,
)

register_dataset(FLICKR_SPEC, _build_inductive)
register_dataset(REDDIT_SPEC, _build_inductive)
