"""``tiny``: a miniature synthetic dataset for smoke tests and CI sweeps.

Not a stand-in for any paper benchmark — a 60-node, 3-class SBM graph with
strongly class-correlated features, small enough that a full
condense → attack → defend → evaluate cell finishes in well under a second.
The CLI smoke tests, the ``run_sweep`` determinism tests and the CI sweep
job all run against it; treat its statistics as arbitrary but stable.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetSpec, register_dataset
from repro.graph.data import GraphData
from repro.graph.generators import class_correlated_features, stochastic_block_model
from repro.graph.splits import make_planetoid_split
from repro.utils.seed import spawn_rngs


def _build_tiny(spec: DatasetSpec, seed: int) -> GraphData:
    topology_rng, feature_rng, split_rng = spawn_rngs(977_003 + int(seed), 3)
    per_class = spec.num_nodes // spec.num_classes
    block_sizes = [per_class] * spec.num_classes
    adjacency = stochastic_block_model(block_sizes, p_in=0.3, p_out=0.02, rng=topology_rng)
    labels = np.repeat(np.arange(spec.num_classes), per_class)
    features = class_correlated_features(
        labels,
        num_features=spec.num_features,
        signal_words_per_class=4,
        signal_strength=0.6,
        density=0.08,
        rng=feature_rng,
    )
    split = make_planetoid_split(
        labels,
        train_per_class=spec.train_per_class,
        num_val=spec.num_val,
        num_test=spec.num_test,
        rng=split_rng,
    )
    return GraphData(
        adjacency=adjacency,
        features=features,
        labels=labels,
        split=split,
        name=spec.name,
        inductive=False,
        metadata={"avg_degree_target": spec.avg_degree, "homophily_target": spec.homophily},
    )


TINY_SPEC = DatasetSpec(
    name="tiny",
    num_nodes=60,
    num_classes=3,
    num_features=24,
    inductive=False,
    avg_degree=6.0,
    homophily=0.9,
    train_per_class=6,
    num_val=12,
    num_test=24,
    reference_nodes=60,
)

register_dataset(TINY_SPEC, _build_tiny)
