"""Synthetic Cora and Citeseer stand-ins (transductive, Planetoid protocol)."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetSpec, register_dataset
from repro.graph.data import GraphData
from repro.graph.generators import class_correlated_features, degree_corrected_sbm
from repro.graph.splits import make_planetoid_split
from repro.utils.seed import spawn_rngs


def _build_transductive(spec: DatasetSpec, seed: int) -> GraphData:
    """Shared builder for the citation-style transductive datasets."""
    topology_rng, feature_rng, split_rng = spawn_rngs(_dataset_seed(spec.name, seed), 3)

    block_sizes = _balanced_blocks(spec.num_nodes, spec.num_classes, topology_rng)
    p_in, p_out = _edge_probabilities(spec)
    adjacency = degree_corrected_sbm(block_sizes, p_in, p_out, topology_rng)
    labels = np.repeat(np.arange(spec.num_classes), block_sizes)

    features = class_correlated_features(
        labels,
        num_features=spec.num_features,
        signal_words_per_class=max(4, spec.num_features // (4 * spec.num_classes)),
        signal_strength=0.35,
        density=0.01,
        rng=feature_rng,
    )
    split = make_planetoid_split(
        labels,
        train_per_class=spec.train_per_class,
        num_val=spec.num_val,
        num_test=spec.num_test,
        rng=split_rng,
    )
    return GraphData(
        adjacency=adjacency,
        features=features,
        labels=labels,
        split=split,
        name=spec.name,
        inductive=False,
        metadata={"avg_degree_target": spec.avg_degree, "homophily_target": spec.homophily},
    )


def _balanced_blocks(num_nodes: int, num_classes: int, rng: np.random.Generator) -> list[int]:
    """Split ``num_nodes`` into slightly imbalanced class blocks."""
    weights = rng.uniform(0.8, 1.2, size=num_classes)
    weights = weights / weights.sum()
    sizes = np.maximum(1, np.round(weights * num_nodes).astype(int))
    # Adjust the largest block so the sizes sum exactly to num_nodes.
    sizes[np.argmax(sizes)] += num_nodes - sizes.sum()
    return sizes.tolist()


def _edge_probabilities(spec: DatasetSpec) -> tuple[float, float]:
    """Derive SBM probabilities from the target average degree and homophily."""
    avg_block = spec.num_nodes / spec.num_classes
    # Expected intra-class neighbours ~ homophily * avg_degree, spread over a block.
    p_in = min(1.0, spec.homophily * spec.avg_degree / max(avg_block, 1.0))
    inter_nodes = spec.num_nodes - avg_block
    p_out = min(1.0, (1.0 - spec.homophily) * spec.avg_degree / max(inter_nodes, 1.0))
    return p_in, p_out


def _dataset_seed(name: str, seed: int) -> int:
    """Mix the dataset name into the seed so datasets differ at equal seeds.

    Uses crc32 (not ``hash``) so the value is stable across interpreter runs.
    """
    import zlib

    return (zlib.crc32(name.lower().encode("utf-8")) + 1_000_003 * int(seed)) % (2**31)


CORA_SPEC = DatasetSpec(
    name="cora",
    num_nodes=2708,
    num_classes=7,
    num_features=1433,
    inductive=False,
    avg_degree=4.0,
    homophily=0.81,
    train_per_class=20,
    num_val=500,
    num_test=1000,
    reference_nodes=2708,
)

CITESEER_SPEC = DatasetSpec(
    name="citeseer",
    num_nodes=3327,
    num_classes=6,
    num_features=1200,
    inductive=False,
    avg_degree=2.8,
    homophily=0.74,
    train_per_class=20,
    num_val=500,
    num_test=1000,
    reference_nodes=3327,
)

register_dataset(CORA_SPEC, _build_transductive)
register_dataset(CITESEER_SPEC, _build_transductive)
