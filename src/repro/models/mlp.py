"""Structure-agnostic multi-layer perceptron baseline."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import Linear, Tensor
from repro.autograd import functional as F
from repro.exceptions import ConfigurationError
from repro.models.base import Adjacency, NodeClassifier
from repro.registry import MODELS


@MODELS.register("mlp")
class MLP(NodeClassifier):
    """Plain MLP that ignores the adjacency matrix entirely (Table III row)."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
    ) -> None:
        super().__init__(in_features, num_classes)
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        for index in range(num_layers):
            self.register_module(f"fc_{index}", Linear(dims[index], dims[index + 1], rng=rng))

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        del adjacency  # structure-agnostic by design
        hidden = self.as_tensor(features)
        for index in range(self.num_layers):
            layer: Linear = getattr(self, f"fc_{index}")
            hidden = layer(hidden)
            if index < self.num_layers - 1:
                hidden = F.relu(hidden)
                hidden = F.dropout(hidden, self.dropout_rate, self._rng, training=self.training)
        return hidden
