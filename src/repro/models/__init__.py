"""GNN architectures built on the numpy autograd engine.

All models share the :class:`~repro.models.base.NodeClassifier` interface:
``forward(adjacency, features)`` returns logits for every node, where
``adjacency`` may be a scipy sparse matrix (large original graphs) or a dense
numpy array (small condensed graphs).  Training is handled by
:class:`~repro.models.trainer.Trainer`.
"""

from repro.models.base import NodeClassifier, make_model, available_architectures
from repro.models.gat import GAT
from repro.models.gcn import GCN
from repro.models.sgc import SGC
from repro.models.sage import GraphSAGE
from repro.models.mlp import MLP
from repro.models.appnp import APPNP
from repro.models.cheby import ChebyNet
from repro.models.transformer import TransformerEncoderLayer
from repro.models.trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "NodeClassifier",
    "make_model",
    "available_architectures",
    "GAT",
    "GCN",
    "SGC",
    "GraphSAGE",
    "MLP",
    "APPNP",
    "ChebyNet",
    "TransformerEncoderLayer",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
