"""Shared infrastructure for node-classification models."""

from __future__ import annotations

from typing import Callable, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import Module, Tensor
from repro.autograd.tensor import sparse_matmul
from repro.graph.cache import get_default_cache
from repro.graph.normalize import dense_gcn_normalize, gcn_normalize
from repro.registry import MODELS

Adjacency = Union[sp.spmatrix, np.ndarray]


def normalize_adjacency(adjacency: Adjacency, add_loops: bool = True) -> Adjacency:
    """GCN-normalise either a sparse or a dense adjacency matrix.

    The default sparse path is memoised in the shared
    :class:`~repro.graph.cache.PropagationCache`: full-batch training calls
    ``forward`` (and therefore normalisation) once per epoch on the same
    adjacency, so the memo turns hundreds of ``gcn_normalize`` passes per fit
    into one.  Dense (condensed-graph) adjacencies are tiny and stay
    uncached, as does the rare ``add_loops=False`` variant.
    """
    if sp.issparse(adjacency):
        if add_loops:
            return get_default_cache().normalized_adjacency(adjacency)
        return gcn_normalize(adjacency, add_loops=False)
    return dense_gcn_normalize(np.asarray(adjacency), add_loops=add_loops)


def propagate(operator: Adjacency, x: Tensor) -> Tensor:
    """Multiply a (constant) propagation operator by a dense tensor."""
    if sp.issparse(operator):
        return sparse_matmul(operator, x)
    return Tensor(np.asarray(operator, dtype=np.float64)).matmul(x)


class NodeClassifier(Module):
    """Base class: a module mapping ``(adjacency, features)`` to node logits."""

    def __init__(self, in_features: int, num_classes: int) -> None:
        super().__init__()
        self.in_features = in_features
        self.num_classes = num_classes

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        raise NotImplementedError

    def predict(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> np.ndarray:
        """Return hard label predictions for every node."""
        from repro.autograd.tensor import no_grad

        was_training = self.training
        self.eval()
        with no_grad():
            logits = self.forward(adjacency, features)
        if was_training:
            self.train()
        return np.argmax(logits.data, axis=1)

    @staticmethod
    def as_tensor(features: Union[np.ndarray, Tensor]) -> Tensor:
        return features if isinstance(features, Tensor) else Tensor(features)


def register_architecture(name: str, factory: Callable[..., NodeClassifier]) -> None:
    """Register an architecture under ``name`` (back-compat shim over :data:`MODELS`)."""
    MODELS.register(name, factory=factory)


def available_architectures() -> list[str]:
    """Names accepted by :func:`make_model` (the Table III architectures)."""
    return MODELS.available()


def make_model(
    name: str,
    in_features: int,
    num_classes: int,
    rng: np.random.Generator,
    hidden: int = 64,
    num_layers: int = 2,
    dropout: float = 0.5,
) -> NodeClassifier:
    """Instantiate an architecture by name (``gcn``, ``sgc``, ``sage``, ...)."""
    return MODELS.build(
        name,
        in_features=in_features,
        num_classes=num_classes,
        rng=rng,
        hidden=hidden,
        num_layers=num_layers,
        dropout=dropout,
    )
