"""Full-batch training loop with early stopping for node classifiers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.autograd import Adam
from repro.autograd import functional as F
from repro.exceptions import ConfigurationError
from repro.models.base import Adjacency, NodeClassifier
from repro.utils.logging import get_logger

logger = get_logger("models.trainer")


def _feature_array(features) -> np.ndarray:
    """Coerce a feature argument to a contiguous ``(N, F)`` float array.

    Model forward passes read whole feature matrices, so a zero-copy
    :class:`~repro.graph.view.StackedFeatures` (or a
    :class:`~repro.graph.view.PropagatedView`) handed to the trainer is
    materialised here, once — the object caches its own materialisation, so
    repeated epochs over the same view pay the vstack a single time.
    """
    if hasattr(features, "materialize"):
        return features.materialize()
    return np.asarray(features, dtype=np.float64)


@dataclass
class TrainingConfig:
    """Hyperparameters for :class:`Trainer`."""

    epochs: int = 200
    lr: float = 0.01
    weight_decay: float = 5e-4
    patience: int = 30
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {self.lr}")
        if self.patience <= 0:
            raise ConfigurationError(f"patience must be positive, got {self.patience}")


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    best_epoch: int
    best_val_accuracy: float
    final_train_loss: float
    history: list = field(default_factory=list)


class Trainer:
    """Trains a :class:`NodeClassifier` full-batch with Adam and early stopping.

    The trainer supports the two training regimes the BGC pipeline needs:

    * training on a large (possibly poisoned) original graph with explicit
      train/val masks, and
    * training on a small condensed graph where *every* node is a training
      node and no validation set exists (``val_index=None`` disables early
      stopping and runs the full epoch budget).
    """

    def __init__(self, model: NodeClassifier, config: TrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()

    def fit(
        self,
        adjacency: Adjacency,
        features: np.ndarray,
        labels: np.ndarray,
        train_index: np.ndarray,
        val_index: np.ndarray | None = None,
        val_adjacency: Adjacency | None = None,
        val_features: np.ndarray | None = None,
        val_labels: np.ndarray | None = None,
    ) -> TrainingResult:
        """Train the model and restore its best-validation parameters.

        ``val_adjacency`` / ``val_features`` / ``val_labels`` allow validating
        on a different graph than the training graph (needed when training on
        a condensed graph but validating on the original graph).  Feature
        arguments may be zero-copy view objects
        (:class:`~repro.graph.view.StackedFeatures`); they are materialised
        once at entry.
        """
        features = _feature_array(features)
        if val_features is not None:
            val_features = _feature_array(val_features)
        labels = np.asarray(labels, dtype=np.int64)
        train_index = np.asarray(train_index, dtype=np.int64)
        optimizer = Adam(
            self.model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )

        use_validation = val_index is not None and len(val_index) > 0
        val_graph = val_adjacency if val_adjacency is not None else adjacency
        val_feats = val_features if val_features is not None else features
        val_labs = val_labels if val_labels is not None else labels

        best_val = -np.inf
        best_state = self.model.state_dict()
        best_epoch = 0
        epochs_without_improvement = 0
        history = []
        final_loss = np.nan

        self.model.train()
        for epoch in range(self.config.epochs):
            optimizer.zero_grad()
            logits = self.model.forward(adjacency, features)
            loss = F.cross_entropy(logits[train_index], labels[train_index])
            loss.backward()
            optimizer.step()
            final_loss = loss.item()

            if use_validation:
                val_accuracy = self.evaluate(val_graph, val_feats, val_labs, val_index)
                history.append({"epoch": epoch, "loss": final_loss, "val_accuracy": val_accuracy})
                if val_accuracy > best_val:
                    best_val = val_accuracy
                    best_state = self.model.state_dict()
                    best_epoch = epoch
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= self.config.patience:
                        if self.config.verbose:
                            logger.info("early stopping at epoch %d", epoch)
                        break
            else:
                history.append({"epoch": epoch, "loss": final_loss})
                best_epoch = epoch

        if use_validation:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return TrainingResult(
            best_epoch=best_epoch,
            best_val_accuracy=float(best_val) if use_validation else float("nan"),
            final_train_loss=float(final_loss),
            history=history,
        )

    def evaluate(
        self,
        adjacency: Adjacency,
        features: np.ndarray,
        labels: np.ndarray,
        index: np.ndarray,
    ) -> float:
        """Accuracy of the current model on ``index`` nodes."""
        predictions = self.model.predict(adjacency, _feature_array(features))
        index = np.asarray(index, dtype=np.int64)
        if index.size == 0:
            return float("nan")
        return float(np.mean(predictions[index] == np.asarray(labels)[index]))
