"""ChebyNet: spectral convolution with Chebyshev polynomial filters."""

from __future__ import annotations

from typing import List, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import Linear, Tensor
from repro.autograd import functional as F
from repro.exceptions import ConfigurationError
from repro.models.base import Adjacency, NodeClassifier, propagate
from repro.registry import MODELS
from repro.graph.normalize import dense_gcn_normalize, gcn_normalize


@MODELS.register("cheby", aliases=('chebynet',))
class ChebyNet(NodeClassifier):
    """Two-layer ChebyNet with filters of order ``cheb_order`` (default 2).

    The rescaled Laplacian uses the λ_max ≈ 2 approximation, i.e.
    ``L̃ = -D^{-1/2} A D^{-1/2}``.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        cheb_order: int = 2,
    ) -> None:
        super().__init__(in_features, num_classes)
        if cheb_order < 1:
            raise ConfigurationError(f"cheb_order must be >= 1, got {cheb_order}")
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        self.cheb_order = cheb_order
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        for layer_index in range(num_layers):
            for k in range(cheb_order + 1):
                linear = Linear(dims[layer_index], dims[layer_index + 1], rng=rng, bias=(k == 0))
                self.register_module(f"cheb_{layer_index}_{k}", linear)

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        operator = self._rescaled_laplacian(adjacency)
        hidden = self.as_tensor(features)
        for layer_index in range(self.num_layers):
            terms = self._chebyshev_terms(operator, hidden)
            combined = None
            for k, term in enumerate(terms):
                linear: Linear = getattr(self, f"cheb_{layer_index}_{k}")
                projected = linear(term)
                combined = projected if combined is None else combined + projected
            hidden = combined
            if layer_index < self.num_layers - 1:
                hidden = F.relu(hidden)
                hidden = F.dropout(hidden, self.dropout_rate, self._rng, training=self.training)
        return hidden

    def _chebyshev_terms(self, operator, x: Tensor) -> List[Tensor]:
        terms = [x]
        if self.cheb_order >= 1:
            terms.append(propagate(operator, x))
        for _ in range(2, self.cheb_order + 1):
            nxt = propagate(operator, terms[-1]) * 2.0 - terms[-2]
            terms.append(nxt)
        return terms

    @staticmethod
    def _rescaled_laplacian(adjacency: Adjacency):
        """Return ``L̃ = L_sym - I = -Â`` (λ_max ≈ 2 approximation)."""
        if sp.issparse(adjacency):
            return (-gcn_normalize(adjacency, add_loops=False)).tocsr()
        return -dense_gcn_normalize(np.asarray(adjacency), add_loops=False)
