"""Simple Graph Convolution (Wu et al., 2019).

SGC removes nonlinearities: logits are ``Â^K X W``.  Because it is linear in
``W``, its parameter gradient has a closed form — this is why the condensers
use it as their surrogate backbone (see ``repro.condensation``).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import Linear, Tensor
from repro.exceptions import ConfigurationError
from repro.models.base import Adjacency, NodeClassifier, normalize_adjacency, propagate
from repro.registry import MODELS


@MODELS.register("sgc")
class SGC(NodeClassifier):
    """K-hop simplified graph convolution (default K = 2)."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(in_features, num_classes)
        if num_layers < 1:
            raise ConfigurationError(f"num_layers (hops) must be >= 1, got {num_layers}")
        self.num_hops = num_layers
        self.linear = Linear(in_features, num_classes, rng=rng, bias=True)

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        operator = normalize_adjacency(adjacency)
        hidden = self.as_tensor(features)
        for _ in range(self.num_hops):
            hidden = propagate(operator, hidden)
        return self.linear(hidden)

    def propagated_features(
        self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]
    ) -> Tensor:
        """Return ``Â^K X`` without applying the linear head."""
        operator = normalize_adjacency(adjacency)
        hidden = self.as_tensor(features)
        for _ in range(self.num_hops):
            hidden = propagate(operator, hidden)
        return hidden
