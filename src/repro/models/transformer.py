"""A single-layer multi-head Transformer encoder block.

Used only by the trigger-generator ablation (Table V), where the paper swaps
the MLP generator for a 1-layer / 8-head Transformer operating on node
representations.  The implementation is a standard pre-norm-free encoder
block: multi-head self-attention followed by a position-wise feed-forward
network, each with a residual connection.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import Linear, Module, Tensor
from repro.autograd import functional as F
from repro.exceptions import ConfigurationError


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention over a set of node vectors."""

    def __init__(self, model_dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ConfigurationError(
                f"model_dim ({model_dim}) must be divisible by num_heads ({num_heads})"
            )
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.query = Linear(model_dim, model_dim, rng=rng)
        self.key = Linear(model_dim, model_dim, rng=rng)
        self.value = Linear(model_dim, model_dim, rng=rng)
        self.output = Linear(model_dim, model_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        queries = self.query(x)
        keys = self.key(x)
        values = self.value(x)
        head_outputs: List[Tensor] = []
        scale = 1.0 / np.sqrt(self.head_dim)
        for head in range(self.num_heads):
            start = head * self.head_dim
            stop = start + self.head_dim
            q = queries[:, start:stop]
            k = keys[:, start:stop]
            v = values[:, start:stop]
            scores = q.matmul(k.T) * scale
            weights = F.softmax(scores, axis=-1)
            head_outputs.append(weights.matmul(v))
        concatenated = Tensor.concatenate(head_outputs, axis=1)
        return self.output(concatenated)

    def forward_per_token(self, x: Tensor) -> Tensor:
        """Attention when every row is its own length-1 sequence.

        A single token attends only to itself with weight exactly 1 (softmax
        of a 1x1 score), so the block reduces to ``output(value(x))`` applied
        row-wise — bit-identical to calling :meth:`forward` on each row
        separately, without the quadratic cross-row attention.
        """
        return self.output(self.value(x))


class TransformerEncoderLayer(Module):
    """One encoder block: self-attention + feed-forward, both residual."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        rng: np.random.Generator,
        feedforward_dim: int | None = None,
    ) -> None:
        super().__init__()
        feedforward_dim = feedforward_dim or 2 * model_dim
        self.attention = MultiHeadSelfAttention(model_dim, num_heads, rng)
        self.ff1 = Linear(model_dim, feedforward_dim, rng=rng)
        self.ff2 = Linear(feedforward_dim, model_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        attended = x + self.attention(x)
        transformed = attended + self.ff2(F.relu(self.ff1(attended)))
        return transformed

    def forward_per_token(self, x: Tensor) -> Tensor:
        """Row-independent encoder pass: each row is its own length-1 sequence."""
        attended = x + self.attention.forward_per_token(x)
        return attended + self.ff2(F.relu(self.ff1(attended)))
