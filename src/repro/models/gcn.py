"""Graph Convolutional Network (Kipf & Welling, 2017)."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import Linear, Tensor
from repro.autograd import functional as F
from repro.exceptions import ConfigurationError
from repro.models.base import Adjacency, NodeClassifier, normalize_adjacency, propagate
from repro.registry import MODELS


@MODELS.register("gcn")
class GCN(NodeClassifier):
    """Multi-layer GCN with ReLU activations and dropout.

    The layer count is configurable (1-3 layers are used in Table VIII); the
    default of two layers matches the paper's test model.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
    ) -> None:
        super().__init__(in_features, num_classes)
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        for index in range(num_layers):
            layer = Linear(dims[index], dims[index + 1], rng=rng, bias=True)
            self.register_module(f"conv_{index}", layer)

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        operator = normalize_adjacency(adjacency)
        hidden = self.as_tensor(features)
        for index in range(self.num_layers):
            layer: Linear = getattr(self, f"conv_{index}")
            hidden = propagate(operator, layer(hidden))
            if index < self.num_layers - 1:
                hidden = F.relu(hidden)
                hidden = F.dropout(hidden, self.dropout_rate, self._rng, training=self.training)
        return hidden
