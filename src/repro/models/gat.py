"""Graph Attention Network (Velickovic et al., 2018) on the numpy autograd engine.

The layer is expressed entirely in :class:`~repro.autograd.tensor.Tensor`
primitives — gathers (``index_rows``), elementwise ops and constant-sparse
matmuls — so forward and backward ride the active kernel backend like every
other model.  Per-destination softmax over incoming edges is computed with a
*detached* per-segment max shift (softmax is shift-invariant, so gradients
stay exact) and segment sums expressed as ``S @ x`` where ``S`` is the
constant ``(N, E)`` destination-incidence matrix.

Weighted adjacencies (dense condensed graphs) are supported by folding the
edge weight multiplicatively into the unnormalised attention coefficient;
self-loops are added for nodes that lack one, matching the reference
implementation's ``A + I`` convention.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import Linear, Module, Tensor
from repro.autograd import functional as F
from repro.autograd.tensor import sparse_matmul
from repro.exceptions import ConfigurationError
from repro.models.base import Adjacency, NodeClassifier
from repro.registry import MODELS


def _edge_list(adjacency: Adjacency) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed edge list ``(dst, src, weight)`` with self-loops guaranteed.

    Row index is the receiver (matching ``A @ X`` propagation).  Nodes whose
    diagonal entry is zero get a unit self-loop appended; existing diagonal
    entries keep their weight.
    """
    if sp.issparse(adjacency):
        coo = adjacency.tocoo()
        dst, src, weight = coo.row, coo.col, coo.data.astype(np.float64)
        diagonal = adjacency.diagonal()
    else:
        dense = np.asarray(adjacency, dtype=np.float64)
        dst, src = np.nonzero(dense)
        weight = dense[dst, src]
        diagonal = np.diagonal(dense)
    missing = np.flatnonzero(diagonal == 0)
    if missing.size:
        dst = np.concatenate([dst, missing])
        src = np.concatenate([src, missing])
        weight = np.concatenate([weight, np.ones(missing.size)])
    return dst.astype(np.int64), src.astype(np.int64), weight


def _segment_softmax(
    scores: Tensor, weight: np.ndarray, dst: np.ndarray, incidence: sp.csr_matrix
) -> Tensor:
    """Softmax of per-edge ``scores`` over each destination's incoming edges.

    ``weight`` scales the exponentiated coefficient (unit for unweighted
    graphs), and the per-destination max shift is a detached constant —
    softmax is shift-invariant, so the gradient through ``scores`` is exact.
    """
    num_nodes = incidence.shape[0]
    shift = np.full(num_nodes, -np.inf)
    np.maximum.at(shift, dst, scores.data[:, 0])
    shifted = scores - Tensor(shift[dst][:, None])
    weighted = shifted.exp() * Tensor(weight[:, None])
    denominator = sparse_matmul(incidence, weighted)
    return weighted / denominator.index_rows(dst)


class GATLayer(Module):
    """One multi-head attention layer: ``heads`` independent attention maps.

    Head outputs are concatenated when ``concat_heads`` (hidden layers) and
    averaged otherwise (the output layer), per the reference architecture.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        heads: int = 1,
        concat_heads: bool = True,
        negative_slope: float = 0.2,
    ) -> None:
        super().__init__()
        if heads < 1:
            raise ConfigurationError(f"heads must be >= 1, got {heads}")
        self.heads = heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        for head in range(heads):
            self.register_module(
                f"proj_{head}", Linear(in_features, out_features, rng=rng, bias=True)
            )
            self.register_module(
                f"att_src_{head}", Linear(out_features, 1, rng=rng, bias=False)
            )
            self.register_module(
                f"att_dst_{head}", Linear(out_features, 1, rng=rng, bias=False)
            )

    def forward(
        self,
        x: Tensor,
        dst: np.ndarray,
        src: np.ndarray,
        weight: np.ndarray,
        incidence: sp.csr_matrix,
    ) -> Tensor:
        outputs = []
        for head in range(self.heads):
            projected = getattr(self, f"proj_{head}")(x)
            score_src = getattr(self, f"att_src_{head}")(projected)
            score_dst = getattr(self, f"att_dst_{head}")(projected)
            edge_scores = F.leaky_relu(
                score_src.index_rows(src) + score_dst.index_rows(dst),
                negative_slope=self.negative_slope,
            )
            attention = _segment_softmax(edge_scores, weight, dst, incidence)
            messages = attention * projected.index_rows(src)
            outputs.append(sparse_matmul(incidence, messages))
        if len(outputs) == 1:
            return outputs[0]
        if self.concat_heads:
            return Tensor.concatenate(outputs, axis=1)
        total = outputs[0]
        for head_output in outputs[1:]:
            total = total + head_output
        return total * (1.0 / len(outputs))


@MODELS.register("gat")
class GAT(NodeClassifier):
    """Multi-layer GAT: concatenated attention heads on hidden layers,
    averaged heads on the output layer, ReLU + dropout between layers.

    ``hidden`` is the total hidden width: each of the ``heads`` hidden-layer
    heads produces ``max(hidden // heads, 1)`` features.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        heads: int = 2,
        negative_slope: float = 0.2,
    ) -> None:
        super().__init__(in_features, num_classes)
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        if heads < 1:
            raise ConfigurationError(f"heads must be >= 1, got {heads}")
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        head_dim = max(hidden // heads, 1)
        dims = [in_features] + [head_dim * heads] * (num_layers - 1) + [num_classes]
        for index in range(num_layers):
            is_output = index == num_layers - 1
            layer = GATLayer(
                dims[index],
                num_classes if is_output else head_dim,
                rng=rng,
                heads=heads,
                concat_heads=not is_output,
                negative_slope=negative_slope,
            )
            self.register_module(f"gat_{index}", layer)

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        dst, src, weight = _edge_list(adjacency)
        num_nodes = adjacency.shape[0]
        incidence = sp.csr_matrix(
            (np.ones(dst.size), (dst, np.arange(dst.size))),
            shape=(num_nodes, dst.size),
        )
        hidden = self.as_tensor(features)
        for index in range(self.num_layers):
            layer: GATLayer = getattr(self, f"gat_{index}")
            hidden = layer(hidden, dst, src, weight, incidence)
            if index < self.num_layers - 1:
                hidden = F.relu(hidden)
                hidden = F.dropout(hidden, self.dropout_rate, self._rng, training=self.training)
        return hidden
