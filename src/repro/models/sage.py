"""GraphSAGE with mean aggregation (Hamilton et al., 2017)."""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.autograd import Linear, Tensor
from repro.autograd import functional as F
from repro.exceptions import ConfigurationError
from repro.graph.normalize import row_normalize
from repro.models.base import Adjacency, NodeClassifier, propagate
from repro.registry import MODELS


@MODELS.register("sage", aliases=('graphsage',))
class GraphSAGE(NodeClassifier):
    """Mean-aggregator GraphSAGE: ``h = act(W_self x + W_neigh · mean(neighbours))``."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
    ) -> None:
        super().__init__(in_features, num_classes)
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        for index in range(num_layers):
            self.register_module(f"self_{index}", Linear(dims[index], dims[index + 1], rng=rng))
            self.register_module(f"neigh_{index}", Linear(dims[index], dims[index + 1], rng=rng))

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        operator = self._mean_operator(adjacency)
        hidden = self.as_tensor(features)
        for index in range(self.num_layers):
            self_layer: Linear = getattr(self, f"self_{index}")
            neigh_layer: Linear = getattr(self, f"neigh_{index}")
            neighbour_mean = propagate(operator, hidden)
            hidden = self_layer(hidden) + neigh_layer(neighbour_mean)
            if index < self.num_layers - 1:
                hidden = F.relu(hidden)
                hidden = F.dropout(hidden, self.dropout_rate, self._rng, training=self.training)
        return hidden

    @staticmethod
    def _mean_operator(adjacency: Adjacency):
        """Row-normalised adjacency (mean over neighbours)."""
        if sp.issparse(adjacency):
            return row_normalize(adjacency)
        dense = np.asarray(adjacency, dtype=np.float64)
        sums = dense.sum(axis=1, keepdims=True)
        sums[sums == 0] = 1.0
        return dense / sums
