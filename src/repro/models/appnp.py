"""APPNP: predict then propagate with personalised PageRank (Gasteiger et al., 2019)."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import Linear, Tensor
from repro.autograd import functional as F
from repro.exceptions import ConfigurationError
from repro.models.base import Adjacency, NodeClassifier, normalize_adjacency, propagate
from repro.registry import MODELS


@MODELS.register("appnp")
class APPNP(NodeClassifier):
    """Two-layer MLP predictor followed by K steps of PPR propagation."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        num_propagations: int = 10,
        teleport: float = 0.1,
    ) -> None:
        super().__init__(in_features, num_classes)
        if not 0.0 < teleport <= 1.0:
            raise ConfigurationError(f"teleport must lie in (0, 1], got {teleport}")
        if num_propagations < 1:
            raise ConfigurationError(f"num_propagations must be >= 1, got {num_propagations}")
        del num_layers  # predictor depth is fixed at two layers as in the paper
        self.num_propagations = num_propagations
        self.teleport = teleport
        self.dropout_rate = dropout
        self._rng = rng
        self.fc1 = Linear(in_features, hidden, rng=rng)
        self.fc2 = Linear(hidden, num_classes, rng=rng)

    def forward(self, adjacency: Adjacency, features: Union[np.ndarray, Tensor]) -> Tensor:
        operator = normalize_adjacency(adjacency)
        hidden = self.as_tensor(features)
        hidden = F.relu(self.fc1(hidden))
        hidden = F.dropout(hidden, self.dropout_rate, self._rng, training=self.training)
        predictions = self.fc2(hidden)
        state = predictions
        for _ in range(self.num_propagations):
            state = propagate(operator, state) * (1.0 - self.teleport) + predictions * self.teleport
        return state
