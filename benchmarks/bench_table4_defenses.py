"""Table IV — BGC against the Prune and Randsmooth defenses.

For GCond and GCond-X the benchmark reports the undefended CTA/ASR, the
defended values and the relative change, illustrating the utility-vs-defense
trade-off the paper observes.
"""

from __future__ import annotations

from repro.attack import BGC
from repro.condensation import make_condenser
from repro.datasets import load_dataset
from repro.defenses import PruneConfig, PruneDefense, RandSmoothConfig, RandSmoothDefense
from repro.evaluation.pipeline import evaluate_backdoor, evaluate_clean, train_model_on_condensed
from repro.utils.seed import spawn_rngs

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows

DATASET = "cora"
CONDENSERS = ["gcond", "gcond-x"]


def _relative_change(defended: float, undefended: float) -> float:
    if undefended == 0:
        return 0.0
    return (defended - undefended) / undefended


def run_table4():
    settings = BenchSettings()
    ratio = DEFAULT_RATIOS[DATASET]
    graph = load_dataset(DATASET, seed=settings.seed)
    evaluation = settings.evaluation()
    rows = []
    for condenser_name in CONDENSERS:
        attack_rng, eval_rng = spawn_rngs(settings.seed + 13, 2)
        attack = BGC(settings.attack(DATASET))
        result = attack.run(
            graph, make_condenser(condenser_name, settings.condensation(ratio)), attack_rng
        )

        backdoored = train_model_on_condensed(result.condensed, graph, evaluation, eval_rng)
        base_cta = evaluate_clean(backdoored, graph)
        base_asr = evaluate_backdoor(backdoored, graph, result.generator, result.target_class)

        # Prune: dataset-level defense applied to the condensed graph.
        pruned = PruneDefense(PruneConfig(prune_fraction=0.2)).apply_to_condensed(result.condensed)
        pruned_model = train_model_on_condensed(pruned, graph, evaluation, eval_rng)
        prune_cta = evaluate_clean(pruned_model, graph)
        prune_asr = evaluate_backdoor(pruned_model, graph, result.generator, result.target_class)

        # Randsmooth: model-level defense wrapping the backdoored model.
        smoothed = RandSmoothDefense(RandSmoothConfig(num_samples=5, keep_probability=0.7)).wrap(
            backdoored
        )
        smooth_cta = evaluate_clean(smoothed, graph)
        smooth_asr = evaluate_backdoor(smoothed, graph, result.generator, result.target_class)

        rows.append(
            {
                "condenser": condenser_name,
                "defense": "none",
                "CTA": base_cta,
                "ASR": base_asr,
                "dCTA": 0.0,
                "dASR": 0.0,
            }
        )
        rows.append(
            {
                "condenser": condenser_name,
                "defense": "Prune",
                "CTA": prune_cta,
                "ASR": prune_asr,
                "dCTA": _relative_change(prune_cta, base_cta),
                "dASR": _relative_change(prune_asr, base_asr),
            }
        )
        rows.append(
            {
                "condenser": condenser_name,
                "defense": "Randsmooth",
                "CTA": smooth_cta,
                "ASR": smooth_asr,
                "dCTA": _relative_change(smooth_cta, base_cta),
                "dASR": _relative_change(smooth_asr, base_asr),
            }
        )
    return rows


def test_table4_defenses(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    print_header(f"Table IV: BGC against Prune and Randsmooth ({DATASET})")
    print_rows(rows, columns=["condenser", "defense", "CTA", "ASR", "dCTA", "dASR"])
    # Shape check: neither defense fully removes the backdoor (ASR stays high).
    for row in rows:
        if row["defense"] != "none":
            assert row["ASR"] > 0.5, f"defense unexpectedly eliminated the backdoor: {row}"
