"""Shared configuration and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The paper's
full grid (4 datasets x 4 condensers x 3 ratios x 1000 condensation epochs on
a GPU) is far beyond what a pure-numpy CPU run should attempt, so benchmarks
default to a representative subset with reduced epochs; the *shape* of each
result (who wins, approximate factors, trends) is what matters.

Set ``REPRO_BENCH_FULL=1`` to run the full dataset grid with more epochs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.attack import BGC, BGCConfig, TriggerConfig
from repro.attack.selection import SelectionConfig
from repro.condensation import CondensationConfig, make_condenser
from repro.datasets import load_dataset
from repro.evaluation.pipeline import (
    EvaluationConfig,
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.evaluation.reporting import format_percent, format_table
from repro.utils.seed import spawn_rngs

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Default condensation ratios per dataset (the paper's middle setting each).
DEFAULT_RATIOS: Dict[str, float] = {
    "cora": 0.026,
    "citeseer": 0.018,
    "flickr": 0.005,
    "reddit": 0.002,
}

#: Paper-reported poison budgets (ratio of the training set / absolute count).
POISON_SETTINGS: Dict[str, Dict[str, float]] = {
    "cora": {"poison_ratio": 0.1},
    "citeseer": {"poison_ratio": 0.1},
    "flickr": {"poison_number": 40},
    "reddit": {"poison_number": 60},
}

DATASETS_FAST = ["cora", "citeseer"]
DATASETS_FULL = ["cora", "citeseer", "flickr", "reddit"]


def bench_datasets() -> List[str]:
    """Datasets exercised by the benchmarks in the current mode."""
    return DATASETS_FULL if FULL_MODE else DATASETS_FAST


@dataclass
class BenchSettings:
    """Scaled-down experiment settings used across all benchmarks."""

    condensation_epochs: int = 25 if FULL_MODE else 12
    attack_epochs: int = 25 if FULL_MODE else 12
    evaluation_epochs: int = 120 if FULL_MODE else 60
    surrogate_steps: int = 20
    generator_steps: int = 2
    update_batch_size: int = 10
    trigger_size: int = 4
    hidden: int = 32
    seed: int = 0

    def condensation(self, ratio: float) -> CondensationConfig:
        return CondensationConfig(epochs=self.condensation_epochs, ratio=ratio)

    def attack(self, dataset: str, **overrides) -> BGCConfig:
        poison = dict(POISON_SETTINGS.get(dataset, {"poison_ratio": 0.1}))
        poison.update({k: v for k, v in overrides.items() if k in ("poison_ratio", "poison_number")})
        other = {k: v for k, v in overrides.items() if k not in ("poison_ratio", "poison_number")}
        trigger = other.pop("trigger", TriggerConfig(trigger_size=self.trigger_size))
        return BGCConfig(
            poison_ratio=poison.get("poison_ratio"),
            poison_number=poison.get("poison_number"),
            epochs=self.attack_epochs,
            surrogate_steps=self.surrogate_steps,
            generator_steps=self.generator_steps,
            update_batch_size=self.update_batch_size,
            trigger=trigger,
            selection=SelectionConfig(num_clusters=3, selector_epochs=60),
            **other,
        )

    def evaluation(self, architecture: str = "gcn", num_layers: int = 2) -> EvaluationConfig:
        return EvaluationConfig(
            architecture=architecture,
            epochs=self.evaluation_epochs,
            hidden=self.hidden,
            num_layers=num_layers,
        )


def run_bgc_cell(
    dataset: str,
    condenser_name: str,
    ratio: float,
    settings: Optional[BenchSettings] = None,
    attack_overrides: Optional[dict] = None,
    architecture: str = "gcn",
    include_clean: bool = True,
    num_layers: int = 2,
) -> Dict[str, float]:
    """Run one (dataset, condenser, ratio) cell: clean baseline + BGC attack.

    Returns a dictionary with C-CTA / CTA / C-ASR / ASR (fractions in [0, 1]).
    """
    settings = settings or BenchSettings()
    attack_overrides = attack_overrides or {}
    graph = load_dataset(dataset, seed=settings.seed)
    attack_rng, clean_rng, eval_rng, clean_eval_rng = spawn_rngs(settings.seed + 1, 4)

    condenser = make_condenser(condenser_name, settings.condensation(ratio))
    attack = BGC(settings.attack(dataset, **attack_overrides))
    result = attack.run(graph, condenser, attack_rng)
    evaluation = settings.evaluation(architecture, num_layers)
    backdoored_model = train_model_on_condensed(result.condensed, graph, evaluation, eval_rng)
    row: Dict[str, float] = {
        "CTA": evaluate_clean(backdoored_model, graph),
        "ASR": evaluate_backdoor(backdoored_model, graph, result.generator, result.target_class),
    }
    if include_clean:
        clean_condenser = make_condenser(condenser_name, settings.condensation(ratio))
        clean_condensed = clean_condenser.condense(graph, clean_rng)
        clean_model = train_model_on_condensed(clean_condensed, graph, evaluation, clean_eval_rng)
        row["C-CTA"] = evaluate_clean(clean_model, graph)
        row["C-ASR"] = evaluate_backdoor(
            clean_model, graph, result.generator, result.target_class
        )
    return row


def print_header(title: str) -> None:
    """Print a visually distinct section header for benchmark output."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_rows(rows: List[Dict[str, object]], columns: Optional[List[str]] = None) -> None:
    """Print result rows as an aligned table with percentages."""
    rendered = []
    for row in rows:
        formatted = {}
        for key, value in row.items():
            if isinstance(value, float) and key not in ("ratio",):
                formatted[key] = format_percent(value)
            else:
                formatted[key] = value
        rendered.append(formatted)
    print(format_table(rendered, columns=columns))
