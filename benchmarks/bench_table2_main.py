"""Table II — main results: model utility (CTA) and attack performance (ASR).

For every (dataset, condensation method) pair the benchmark reports the clean
baseline (C-CTA, C-ASR) and the BGC-attacked numbers (CTA, ASR).  The fast
mode covers Cora and Citeseer at their middle condensation ratio with every
condenser; ``REPRO_BENCH_FULL=1`` adds Flickr and Reddit and sweeps all three
paper ratios.
"""

from __future__ import annotations

from bench_common import (
    DEFAULT_RATIOS,
    FULL_MODE,
    BenchSettings,
    bench_datasets,
    print_header,
    print_rows,
    run_bgc_cell,
)

CONDENSERS = ["dc-graph", "gcond", "gcond-x", "gc-sntk"]

RATIO_GRID = {
    "cora": [0.013, 0.026, 0.052],
    "citeseer": [0.009, 0.018, 0.036],
    "flickr": [0.001, 0.005, 0.01],
    "reddit": [0.0005, 0.001, 0.002],
}


def run_table2():
    settings = BenchSettings()
    rows = []
    for dataset in bench_datasets():
        ratios = RATIO_GRID[dataset] if FULL_MODE else [DEFAULT_RATIOS[dataset]]
        for condenser in CONDENSERS:
            for ratio in ratios:
                cell = run_bgc_cell(dataset, condenser, ratio, settings)
                rows.append(
                    {
                        "dataset": dataset,
                        "condenser": condenser,
                        "ratio": ratio,
                        "C-CTA": cell["C-CTA"],
                        "CTA": cell["CTA"],
                        "C-ASR": cell["C-ASR"],
                        "ASR": cell["ASR"],
                    }
                )
    return rows


def test_table2_main_results(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print_header("Table II: model utility (CTA) and attack performance (ASR)")
    print_rows(rows, columns=["dataset", "condenser", "ratio", "C-CTA", "CTA", "C-ASR", "ASR"])
    # Shape checks mirroring the paper's headline claims:
    for row in rows:
        # The attack succeeds everywhere (paper: >95%; GC-SNTK is the hardest
        # condenser to backdoor both in the paper and here, so the floor is
        # set below the gradient-matching condensers' near-100% ASR).
        floor = 0.7 if row["condenser"] == "gc-sntk" else 0.9
        assert row["ASR"] > floor, f"ASR too low for {row}"
        # ...while a clean model stays near chance level on triggered inputs...
        assert row["C-ASR"] < 0.5, f"C-ASR too high for {row}"
        # ...and utility stays in the neighbourhood of the clean baseline.
        assert row["CTA"] > row["C-CTA"] - 0.25, f"CTA collapsed for {row}"
