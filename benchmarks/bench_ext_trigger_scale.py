"""Extension experiment — trigger magnitude: backdoor vs adversarial evasion.

DESIGN.md documents one load-bearing design decision of this reproduction:
generated trigger features are bounded to a small fraction
(``TriggerConfig.feature_scale``) of the host graph's feature range.  This
benchmark sweeps that bound and reports, for each setting,

* ASR of the backdoored model (should stay ≈100%),
* ASR of a *clean* model on the same triggered inputs (C-ASR), and
* CTA of the backdoored model.

Small bounds give the paper's regime — a genuine backdoor that only the
poisoned condensed graph encodes (high ASR, chance-level C-ASR).  Large
bounds turn the trigger into a test-time adversarial perturbation that fools
clean models too (C-ASR → 100%), which is *not* a backdoor.  The sweep makes
that distinction measurable.
"""

from __future__ import annotations

from repro.attack.trigger import TriggerConfig

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows, run_bgc_cell

DATASET = "cora"
SCALES = [0.05, 0.1, 0.5, 1.0]


def run_extension():
    settings = BenchSettings()
    ratio = DEFAULT_RATIOS[DATASET]
    rows = []
    for scale in SCALES:
        trigger = TriggerConfig(trigger_size=settings.trigger_size, feature_scale=scale)
        cell = run_bgc_cell(
            DATASET,
            "gcond",
            ratio,
            settings,
            attack_overrides={"trigger": trigger},
            include_clean=True,
        )
        rows.append(
            {
                "feature_scale": scale,
                "CTA": cell["CTA"],
                "ASR": cell["ASR"],
                "C-ASR": cell["C-ASR"],
            }
        )
    return rows


def test_extension_trigger_scale(benchmark):
    rows = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    print_header(f"Extension: trigger magnitude sweep ({DATASET}, GCond)")
    print_rows(rows, columns=["feature_scale", "CTA", "ASR", "C-ASR"])
    # The backdoor works at every magnitude...
    for row in rows:
        assert row["ASR"] > 0.9, f"ASR collapsed at scale {row['feature_scale']}"
    # ...but only large-magnitude triggers fool a clean model: C-ASR must grow
    # substantially from the smallest to the largest bound.
    assert rows[-1]["C-ASR"] > rows[0]["C-ASR"] + 0.2
