"""Table VIII — effect of the downstream GNN's depth (1 / 2 / 3 layers)."""

from __future__ import annotations

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows, run_bgc_cell

DATASETS = ["cora", "citeseer"]
LAYER_COUNTS = [1, 2, 3]


def run_table8():
    settings = BenchSettings()
    rows = []
    for dataset in DATASETS:
        ratio = DEFAULT_RATIOS[dataset]
        for layers in LAYER_COUNTS:
            cell = run_bgc_cell(
                dataset, "gcond", ratio, settings, include_clean=False, num_layers=layers
            )
            rows.append(
                {"dataset": dataset, "layers": layers, "CTA": cell["CTA"], "ASR": cell["ASR"]}
            )
    return rows


def test_table8_gnn_depth(benchmark):
    rows = benchmark.pedantic(run_table8, rounds=1, iterations=1)
    print_header("Table VIII: downstream GNN depth (GCond)")
    print_rows(rows, columns=["dataset", "layers", "CTA", "ASR"])
    # Shape check: the attack succeeds regardless of model depth.
    for row in rows:
        assert row["ASR"] > 0.7
