"""Table V — ablation on the trigger generator encoder (MLP / GCN / Transformer)."""

from __future__ import annotations

from repro.attack.trigger import TriggerConfig

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows, run_bgc_cell

DATASETS = ["cora", "citeseer"]
ENCODERS = ["mlp", "gcn", "transformer"]


def run_table5():
    settings = BenchSettings()
    rows = []
    for dataset in DATASETS:
        ratio = DEFAULT_RATIOS[dataset]
        for encoder in ENCODERS:
            trigger = TriggerConfig(trigger_size=settings.trigger_size, encoder=encoder)
            cell = run_bgc_cell(
                dataset,
                "gcond",
                ratio,
                settings,
                attack_overrides={"trigger": trigger},
                include_clean=False,
            )
            rows.append(
                {"dataset": dataset, "generator": encoder, "CTA": cell["CTA"], "ASR": cell["ASR"]}
            )
    return rows


def test_table5_trigger_generator_ablation(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    print_header("Table V: trigger-generator encoder ablation (GCond)")
    print_rows(rows, columns=["dataset", "generator", "CTA", "ASR"])
    # Shape check: the paper finds every encoder reaches a high ASR.
    for row in rows:
        assert row["ASR"] > 0.7, f"encoder {row['generator']} failed to attack"
