"""Figure 5 — ablation on poisoned-node selection (BGC vs BGC_Rand).

Replaces the representative-node selector with uniformly random selection and
compares CTA/ASR, reproducing the ablation of Section VI-E (run here on the
transductive stand-ins for speed; pass REPRO_BENCH_FULL=1 elsewhere for the
inductive ones).
"""

from __future__ import annotations

from bench_common import DEFAULT_RATIOS, BenchSettings, bench_datasets, print_header, print_rows, run_bgc_cell


def run_figure5():
    settings = BenchSettings()
    rows = []
    for dataset in bench_datasets():
        ratio = DEFAULT_RATIOS[dataset]
        for variant, overrides in (("BGC", {}), ("BGC_Rand", {"use_random_selection": True})):
            cell = run_bgc_cell(
                dataset, "dc-graph", ratio, settings, attack_overrides=overrides, include_clean=False
            )
            rows.append(
                {"dataset": dataset, "variant": variant, "CTA": cell["CTA"], "ASR": cell["ASR"]}
            )
    return rows


def test_fig5_selection_ablation(benchmark):
    rows = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print_header("Figure 5: representative vs random poisoned-node selection (DC-Graph)")
    print_rows(rows, columns=["dataset", "variant", "CTA", "ASR"])
    # Shape check: representative selection is at least competitive with random.
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], {})[row["variant"]] = row
    for dataset, variants in by_dataset.items():
        assert variants["BGC"]["ASR"] >= variants["BGC_Rand"]["ASR"] - 0.1
