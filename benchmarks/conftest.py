"""Pytest configuration for the benchmark harness.

Benchmarks print the regenerated tables/figures to stdout, so ``-s`` is the
recommended invocation::

    pytest benchmarks/ --benchmark-only -s
"""
