"""Figure 8 — effect of the trigger size on CTA and ASR.

Larger triggers push ASR towards 100% while slightly eroding CTA; the
benchmark sweeps trigger sizes 1-4 under two condensers, as in the paper
(run on the transductive Cora stand-in for speed).
"""

from __future__ import annotations

from repro.attack.trigger import TriggerConfig

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows, run_bgc_cell

DATASET = "cora"
CONDENSERS = ["dc-graph", "gcond"]
TRIGGER_SIZES = [1, 2, 3, 4]


def run_figure8():
    settings = BenchSettings()
    ratio = DEFAULT_RATIOS[DATASET]
    rows = []
    for condenser in CONDENSERS:
        for size in TRIGGER_SIZES:
            trigger = TriggerConfig(trigger_size=size)
            cell = run_bgc_cell(
                DATASET,
                condenser,
                ratio,
                settings,
                attack_overrides={"trigger": trigger},
                include_clean=False,
            )
            rows.append(
                {"condenser": condenser, "trigger size": size, "CTA": cell["CTA"], "ASR": cell["ASR"]}
            )
    return rows


def test_fig8_trigger_size(benchmark):
    rows = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    print_header(f"Figure 8: trigger-size sweep ({DATASET})")
    print_rows(rows, columns=["condenser", "trigger size", "CTA", "ASR"])
    # Shape check: the largest trigger attacks at least as well as the smallest.
    by_condenser = {}
    for row in rows:
        by_condenser.setdefault(row["condenser"], []).append(row)
    for condenser, series in by_condenser.items():
        assert series[-1]["ASR"] >= series[0]["ASR"] - 0.05
