"""Extension benchmark — the attack-loop hot path: seed vs cached vs incremental.

The BGC attack drives one condensation ``epoch_step`` per attack epoch against
a freshly-built poisoned graph.  This benchmark isolates exactly that step at
seed benchmark scale (Cora, GCond-X) and compares four regimes:

* **cold (seed)** — a faithful replica of the *seed repository's* per-epoch
  implementation: ``gcn_normalize`` plus K full sparse matmuls over the whole
  real graph every epoch (the seed's ``id()``-keyed memo never hit in the
  attack loop), autograd-based surrogate training, and C separate per-class
  softmax/gradient passes.  This is the baseline the PR's ≥3× target is
  measured against.
* **no-cache** — the *current* code with the cache cleared every epoch and no
  delta recorded: shows how much of the win comes from the vectorised epoch
  alone (informational).
* **cached** — the same poisoned graph version every epoch: pure memo hits.
* **incremental** — a *fresh* poisoned graph every epoch, built with
  ``GraphData.with_delta`` so only the trigger-attached K-hop neighbourhood
  is recomputed (this is the regime the real attack loop now runs in).

On top of the condensation-epoch regimes, the benchmark times the other two
per-epoch costs of the attack loop and the **full attack epoch** in two
configurations:

* **generator update** — per-node ``local_trigger_loss`` loop (PR 1) vs the
  batched block-diagonal loss (`batched_local_trigger_loss`);
* **trigger attachment** — COO rebuild (PR 1) vs CSR surgery;
* **attack epoch (PR 1)** — per-node update + COO attach + full
  ``gcn_normalize`` of every derived graph + incremental propagation, i.e.
  exactly what PR 1 shipped;
* **attack epoch (new)** — batched update + CSR surgery + incremental
  renormalisation + incremental propagation.

On top of *those*, the PR 4 section times the **complete BGC attack epoch**
(surrogate retrain on the condensed graph + generator update + trigger
attachment + condensation step — ``BGC.run``'s real per-epoch body, driven
through the attack's own internals) in two configurations:

* **materialised (PR 2)** — cold autograd surrogate retrain every epoch,
  poisoned graph materialised via ``attach_trigger_subgraph`` +
  ``with_delta`` (pays the ``(N, F)`` feature vstack);
* **view (PR 4)** — warm-started closed-form surrogate refresh
  (``surrogate_warm_start`` on the attack *and* the condenser), poisoned
  graph as a zero-copy ``GraphView``, propagation read in difference form
  (no per-epoch ``(N, F)`` materialisation anywhere).

The PR 6 sections measure the **blocked out-of-core propagation engine** and
the **scaffold-cached generator update**:

* **blocked propagation** — one full condensation epoch on the Flickr
  stand-in's 50k-node training view (100k-node graph), routed through the
  memory-mapped block store.  The *additional* peak RSS of the epoch (over
  the resident graph) is asserted below a ceiling that the dense hop chain
  alone would necessarily exceed, the blocked product is checked against a
  dense ``sgc_precompute`` at ``atol=1e-10``, and a row/column tile-size
  sweep of the spmm kernel is timed (recorded in ``docs/benchmarks.md``);
* **generator update, scaffold cache** — the batched trigger-generator
  update with the per-node scaffold cache (local neighbourhood index, host
  adjacency block, host feature rows — reused across steps and epochs, as
  ``BGC._update_generator`` now runs) vs the same update rebuilding
  scaffolds every call.  Losses must be bit-identical; the cached path must
  not be slower.

On top of the per-epoch regimes, the PR 5 section measures **sweep
throughput**: an 8-cell tiny grid (2 condensers × 2 attacks × defense
on/off) run serially and through the process-pool execution backend with 4
workers and shard-aware cache handoff.  The two runs must be *bit-identical*
(metrics and condensed-graph hashes compare exactly); the wall-clock floor
is asserted only on hosts that can physically parallelise (≥ 4 usable
cores) — on fewer cores the numbers are reported but a speedup would be
meaningless.

Claims checked:

1. the incremental propagation path is **exact**: its propagated features
   match a full cold recompute to ``atol=1e-10``;
2. the incremental *normalisation* is **exact** to the same tolerance;
3. the cached and incremental attack-loop condensation epochs are **≥ 3×
   faster** than the seed epoch at seed scale;
4. the new full attack epoch is **≥ 1.5× faster** than the PR 1 attack epoch
   at Cora scale;
5. the view-path difference-form propagation is **exact** (``atol=1e-10``
   against a cold recompute of the final poisoned view);
6. the view+warm-start BGC attack epoch is **≥ 1.3× faster** than the PR 2
   materialised BGC attack epoch at Cora scale;
7. the parallel sweep's records are **bit-identical** to the serial run
   (always asserted), and its wall-clock beats serial by **≥ 2×** on hosts
   with at least 4 usable cores;
8. the blocked condensation epoch's additional peak RSS stays **under 0.6×
   the dense hop-chain footprint** (``num_hops × N × F × 8`` bytes — which
   the dense engine pins in full, before transients) while its propagated
   product matches the dense engine at ``atol=1e-10``;
9. the scaffold-cached generator update is bit-identical to the uncached
   one and **at least as fast** (≥ 1× — typically well above);
10. the ``threaded`` kernel backend's chunked spmm and batched matmul are
    **bit-identical** to the ``numpy`` reference (always asserted), at
    least as fast as the reference (≥ 1×, non-smoke — parity is structural
    on 1-core hosts via the serial fallback), and **≥ 1.3× faster** on
    hosts with at least 4 usable cores.

Run standalone (CI smoke uses tiny sizes and skips the speedup assertion,
which is meaningless for graphs that fit in cache lines)::

    PYTHONPATH=src python benchmarks/bench_ext_hotpath.py          # seed scale
    PYTHONPATH=src REPRO_BENCH_SMOKE=1 python benchmarks/bench_ext_hotpath.py

or via pytest: ``pytest benchmarks/bench_ext_hotpath.py -s``.
"""

from __future__ import annotations

import math
import os
import time
from statistics import median
from typing import Dict, List

import numpy as np

from repro.attack.trigger import (
    TriggerConfig,
    TriggerGenerator,
    batched_local_trigger_loss,
    generate_hard_triggers,
    local_trigger_loss,
)
from repro.autograd import Adam, Tensor
from repro.autograd import functional as F
from repro.condensation import CondensationConfig
from repro.condensation.gcond import GCondX
from repro.condensation.gradient_matching import (
    gradient_distance,
    per_class_model_gradient,
)
from repro.datasets import load_dataset
from repro.graph.cache import PropagationCache
from repro.graph.data import GraphData
from repro.graph.generators import class_correlated_features, stochastic_block_model
from repro.graph.normalize import gcn_normalize, self_loop_degrees
from repro.graph.propagation import sgc_precompute
from repro.graph.splits import make_planetoid_split
from repro.graph.subgraph import attach_trigger_subgraph, attach_trigger_subgraph_coo
from repro.utils.seed import new_rng, spawn_rngs

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

TRIGGER_SIZE = 4
NUM_HOPS = 2
#: Enough epochs for the buffer pool to reach steady state (evictions begin
#: once the LRU fills), matching how the real 12-30 epoch attack loop runs.
TIMED_EPOCHS = 10
SPEEDUP_FLOOR = 3.0
#: Floor for the full attack epoch (generator update + attachment +
#: condensation step): new path vs the PR 1 path.
EPOCH_SPEEDUP_FLOOR = 1.5
#: Floor for the complete BGC attack epoch (incl. surrogate retrain):
#: zero-copy view + warm-start path vs the PR 2 materialised path.
VIEW_EPOCH_SPEEDUP_FLOOR = 1.3
#: Worker-process count of the sweep-throughput section.
SWEEP_WORKERS = 4
#: Floor for the 8-cell grid under the process backend vs serial wall-clock.
#: Only asserted when the host exposes at least SWEEP_WORKERS usable cores —
#: with fewer, a parallel speedup is physically impossible and only the
#: bit-identity claim is meaningful.
SWEEP_SPEEDUP_FLOOR = 2.0
#: Pool-vs-fork-per-cell grid: many minuscule cells, where per-cell process
#: launch dominates.  The persistent pool must beat launching one process per
#: cell by this factor; only asserted (non-smoke) when the host exposes at
#: least POOL_WORKERS usable cores.
POOL_WORKERS = 4
POOL_CELLS = 32
POOL_SPEEDUP_FLOOR = 1.5
GENERATOR_STEPS = 2
UPDATE_BATCH = 12
MAX_NEIGHBORS = 10
EQUIVALENCE_ATOL = 1e-10
#: Ceiling on the blocked condensation epoch's *additional* peak RSS, as a
#: fraction of the dense hop-chain footprint (num_hops dense (N, F) float64
#: products).  The dense engine pins the full chain resident for the cache's
#: lifetime (a fraction of exactly 1.0 before counting transients), so a
#: ceiling well below it is the claim that makes the blocked engine worth its
#: indirection.  Measured ~0.47 on the 50k-node Flickr training view; 0.6
#: leaves margin for allocator noise without weakening the claim.
BLOCKED_RSS_FRACTION = 0.6
#: Floor for the scaffold-cached generator update vs rebuilding scaffolds
#: every call.  The win is real but modest at Cora scale, so the assertion
#: only guards against the cache being a pessimisation.
SCAFFOLD_SPEEDUP_FLOOR = 1.0
#: Ceiling on one sampled PRBCD step's additional peak RSS at flickr scale.
#: The dense candidate space is ~5e9 pairs (~37 GiB of scores alone) and a
#: single (N, F) chain materialisation is ~191 MiB on the training view;
#: 320 MiB proves the step touches neither.
SAMPLED_RSS_CEILING_MB = 320.0
#: Parity floor for the threaded kernel backend vs the numpy reference.
#: Like SCAFFOLD_SPEEDUP_FLOOR this guards against the alternative backend
#: being a pessimisation — on hosts without spare cores the backend's serial
#: fallback makes parity structural, with real wins appearing once threads
#: have cores to run on.
KERNEL_PARITY_FLOOR = 1.0
#: Real-speedup floor for the chunked row-parallel spmm, asserted only on
#: hosts with at least KERNEL_MIN_CORES usable cores — below that a parallel
#: win is physically impossible and only bit-identity is meaningful.
KERNEL_SPMM_SPEEDUP_FLOOR = 1.3
KERNEL_MIN_CORES = 4


def _build_graph(smoke: bool) -> GraphData:
    if not smoke:
        return load_dataset("cora", seed=0)
    rng = new_rng(0)
    labels = np.repeat(np.arange(3), 40)
    adjacency = stochastic_block_model([40, 40, 40], p_in=0.2, p_out=0.01, rng=rng)
    features = class_correlated_features(
        labels, num_features=32, signal_words_per_class=4,
        signal_strength=0.5, density=0.05, rng=rng,
    )
    split = make_planetoid_split(labels, train_per_class=8, num_val=20, num_test=40, rng=rng)
    return GraphData(adjacency=adjacency, features=features, labels=labels,
                     split=split, name="smoke-sbm")


def _poisoned_graph(
    graph: GraphData,
    targets: np.ndarray,
    rng: np.random.Generator,
    record_delta: bool,
) -> GraphData:
    """One attack epoch's poisoned graph: fresh trigger blocks on ``targets``."""
    num_targets = targets.size
    trigger_features = rng.normal(
        scale=0.1, size=(num_targets, TRIGGER_SIZE, graph.num_features)
    )
    block = 1.0 - np.eye(TRIGGER_SIZE)
    trigger_adjacency = np.repeat(block[None, :, :], num_targets, axis=0)
    new_adjacency, new_features, _ = attach_trigger_subgraph(
        graph.adjacency, graph.features, targets, trigger_features, trigger_adjacency
    )
    num_new = new_features.shape[0] - graph.num_nodes
    labels = np.concatenate([graph.labels, np.zeros(num_new, dtype=np.int64)])
    poisoned = graph.with_delta(
        targets,
        adjacency=new_adjacency,
        features=new_features,
        labels=labels,
        name=f"{graph.name}-poisoned",
    )
    if not record_delta:
        poisoned = poisoned.with_(derivation=None)
    return poisoned


def _fresh_condenser(cache: PropagationCache, graph: GraphData, seed: int) -> GCondX:
    condenser = GCondX(CondensationConfig(epochs=1, ratio=0.05), cache=cache)
    condenser.initialize(graph, new_rng(seed))
    return condenser


def _seed_equivalent_epoch(condenser: GCondX, poisoned: GraphData) -> float:
    """Replica of the seed repository's ``epoch_step`` cost profile.

    Mirrors the pre-PR implementation line for line: autograd surrogate
    training, a full ``sgc_precompute`` of the poisoned graph (the seed's
    ``id(graph)``-keyed memo always missed in the attack loop because every
    epoch builds a new graph object), and one softmax/logits pass *per class*
    on both the real and the synthetic side.
    """
    state = condenser._state
    config = condenser.config
    condenser.reset_surrogate()

    # Seed train_surrogate: autograd graph + optimiser object per call.
    propagated_syn = condenser._synthetic_propagated(detach=True)
    optimizer = Adam([state.surrogate_weight], lr=config.surrogate_lr)
    for _ in range(config.surrogate_steps):
        optimizer.zero_grad()
        logits = propagated_syn.matmul(state.surrogate_weight)
        loss = F.cross_entropy(logits, state.labels)
        loss.backward()
        optimizer.step()

    # Seed outer_step: full propagation + per-class gradient passes.
    real_propagated = sgc_precompute(
        poisoned.adjacency, poisoned.features, config.num_hops
    )
    weight = state.surrogate_weight.data
    state.feature_optimizer.zero_grad()
    synthetic_propagated = condenser._synthetic_propagated(detach=False)
    weight_tensor = Tensor(weight)
    total_loss = None
    train_labels = poisoned.labels
    train_index = poisoned.split.train
    for cls, synthetic_index in state.class_index.items():
        real_index = train_index[train_labels[train_index] == cls]
        if real_index.size == 0 or synthetic_index.size == 0:
            continue
        real_grad = per_class_model_gradient(
            real_propagated, train_labels, weight, real_index, poisoned.num_classes
        )
        rows = synthetic_propagated.index_rows(synthetic_index)
        probs = F.softmax(rows.matmul(weight_tensor), axis=-1)
        targets = F.one_hot(state.labels[synthetic_index], poisoned.num_classes)
        synthetic_grad = rows.T.matmul(probs - Tensor(targets)) * (
            1.0 / synthetic_index.size
        )
        class_loss = gradient_distance(real_grad, synthetic_grad, config.distance)
        total_loss = class_loss if total_loss is None else total_loss + class_loss
    total_loss.backward()
    state.feature_optimizer.step()
    return float(total_loss.item())


class _PR1NormalizeCache(PropagationCache):
    """PR 1's cache behaviour: every derived graph pays a full gcn_normalize.

    Used to isolate this PR's win — the incremental normalise, batched
    generator update and CSR attachment — from PR 1's incremental
    propagation, which both attack-epoch regimes share.
    """

    def normalized(self, graph: GraphData):
        with self._lock:
            entry = self._lookup(graph)
            if entry is not None and entry.normalized is not None:
                self.hits += 1
                return entry.normalized
            self.misses += 1
            shard = self._shard(self._shard_key(graph))
            entry = self._entry(shard, self._key(graph))
            self._set_normalized(
                entry, gcn_normalize(graph.adjacency), self_loop_degrees(graph.adjacency)
            )
            # PR 1 also paid the |Â'| copy in every incremental propagation.
            entry.nonnegative = False
            return entry.normalized


def _fresh_generator(graph: GraphData):
    generator = TriggerGenerator(
        graph.num_features, new_rng(17), TriggerConfig(trigger_size=TRIGGER_SIZE)
    )
    generator.calibrate(graph.features)
    optimizer = Adam(generator.parameters(), lr=generator.config.learning_rate)
    encoder_inputs = generator.encode_inputs(graph.adjacency, graph.features)
    return generator, optimizer, encoder_inputs


def _generator_update(
    graph: GraphData,
    generator,
    optimizer,
    encoder_inputs,
    weight_tensor: Tensor,
    rng: np.random.Generator,
    batched: bool,
) -> float:
    """One generator update pass: GENERATOR_STEPS batches, per-node or batched."""
    loss_kwargs = dict(target_class=0, max_neighbors=MAX_NEIGHBORS, num_hops=NUM_HOPS)
    pool = np.arange(graph.num_nodes)
    last = float("nan")
    for _ in range(GENERATOR_STEPS):
        batch = rng.choice(pool, size=min(UPDATE_BATCH, pool.size), replace=False)
        optimizer.zero_grad()
        if batched:
            loss = batched_local_trigger_loss(
                batch, graph, encoder_inputs, generator, weight_tensor, **loss_kwargs
            )
        else:
            total = None
            for node in batch:
                node_loss = local_trigger_loss(
                    int(node), graph, encoder_inputs, generator, weight_tensor, **loss_kwargs
                )
                total = node_loss if total is None else total + node_loss
            loss = total * (1.0 / batch.size)
        loss.backward()
        optimizer.step()
        last = float(loss.item())
    return last


def run_attack_epoch_comparison(
    smoke: bool = SMOKE,
    timed_epochs: int = TIMED_EPOCHS,
    graph: GraphData = None,
) -> Dict[str, float]:
    """Time the full attack epoch and its two non-condensation components.

    The PR 1 regime runs the per-node generator update, the COO-rebuild
    attachment and a cache that fully renormalises every derived graph; the
    new regime runs the batched update, CSR surgery and incremental
    renormalisation.  Both share incremental K-hop propagation (PR 1's win),
    so the reported speedup is attributable to this PR alone.
    """
    if graph is None:
        graph = _build_graph(smoke)
    select_rng, trigger_seed_rng = spawn_rngs(2, 2)
    train = graph.split.train
    budget = max(3, train.size // 10)
    targets = np.sort(select_rng.choice(train, size=budget, replace=False))
    trigger_seed = int(trigger_seed_rng.integers(0, 2**31))
    num_classes = graph.num_classes
    weight_tensor = Tensor(new_rng(23).normal(size=(graph.num_features, num_classes)))

    def run_regime(batched: bool, attach, cache: PropagationCache) -> Dict[str, float]:
        condenser = _fresh_condenser(cache, graph, seed=0)
        generator, optimizer, encoder_inputs = _fresh_generator(graph)
        rng = new_rng(trigger_seed)
        epoch_times: List[float] = []
        update_times: List[float] = []
        attach_times: List[float] = []
        last_poisoned = None
        for index in range(timed_epochs + 1):
            epoch_start = time.perf_counter()
            start = time.perf_counter()
            _generator_update(
                graph, generator, optimizer, encoder_inputs, weight_tensor, rng, batched
            )
            update_elapsed = time.perf_counter() - start
            features, adjacency = generate_hard_triggers(
                generator, graph.adjacency, graph.features, targets
            )
            start = time.perf_counter()
            new_adjacency, new_features, _ = attach(
                graph.adjacency, graph.features, targets, features, adjacency
            )
            attach_elapsed = time.perf_counter() - start
            num_new = new_features.shape[0] - graph.num_nodes
            labels = np.concatenate([graph.labels, np.zeros(num_new, dtype=np.int64)])
            poisoned = graph.with_delta(
                targets,
                adjacency=new_adjacency,
                features=new_features,
                labels=labels,
                name=f"{graph.name}-poisoned",
            )
            condenser.epoch_step(poisoned)
            epoch_elapsed = time.perf_counter() - epoch_start
            if index > 0:  # first epoch is warm-up
                epoch_times.append(epoch_elapsed)
                update_times.append(update_elapsed)
                attach_times.append(attach_elapsed)
            last_poisoned = poisoned
        return {
            "epoch_ms": median(epoch_times) * 1e3,
            "update_ms": median(update_times) * 1e3,
            "attach_ms": median(attach_times) * 1e3,
            "poisoned": last_poisoned,
            "cache": cache,
        }

    pr1 = run_regime(
        batched=False, attach=attach_trigger_subgraph_coo, cache=_PR1NormalizeCache()
    )
    new = run_regime(
        batched=True, attach=attach_trigger_subgraph, cache=PropagationCache()
    )

    # Incremental-normalise exactness on the final poisoned graph of the new
    # regime (its cache really did take the incremental path every epoch).
    new_cache: PropagationCache = new["cache"]
    poisoned: GraphData = new["poisoned"]
    assert new_cache.stats()["incremental_normalizations"] >= timed_epochs
    normalize_diff = (new_cache.normalized(poisoned) - gcn_normalize(poisoned.adjacency)).tocsr()
    norm_max_abs_err = float(np.abs(normalize_diff.data).max()) if normalize_diff.nnz else 0.0

    return {
        "pr1_epoch_ms": pr1["epoch_ms"],
        "new_epoch_ms": new["epoch_ms"],
        "epoch_speedup": pr1["epoch_ms"] / new["epoch_ms"],
        "pernode_update_ms": pr1["update_ms"],
        "batched_update_ms": new["update_ms"],
        "update_speedup": pr1["update_ms"] / new["update_ms"],
        "attach_coo_ms": pr1["attach_ms"],
        "attach_csr_ms": new["attach_ms"],
        "attach_speedup": pr1["attach_ms"] / new["attach_ms"],
        "norm_max_abs_err": norm_max_abs_err,
    }


def run_view_epoch_comparison(
    smoke: bool = SMOKE,
    timed_epochs: int = TIMED_EPOCHS,
    graph: GraphData = None,
) -> Dict[str, float]:
    """Time the complete BGC attack epoch: materialised (PR 2) vs view (PR 4).

    Unlike :func:`run_attack_epoch_comparison` (which isolates the three
    non-surrogate components), this drives the attack's *own* per-epoch
    internals — ``BGC._train_surrogate`` → ``BGC._update_generator`` →
    ``BGC._build_poisoned_graph`` → ``condenser.epoch_step`` — so the
    cross-epoch surrogate batching is part of the measured epoch, exactly as
    it is in ``BGC.run``.  The two regimes differ only in the PR 4 flags:

    * materialised: ``use_graph_view=False``, full surrogate retrain per
      epoch (attack and condenser) — the PR 2 shipping configuration;
    * view: ``use_graph_view=True``, ``surrogate_warm_start=True`` on both.
    """
    from repro.attack.bgc import BGC, BGCConfig
    from repro.graph.splits import SplitIndices

    if graph is None:
        graph = _build_graph(smoke)
    select_rng, trigger_seed_rng = spawn_rngs(3, 2)
    train = graph.split.train
    budget = max(3, train.size // 10)
    targets = np.sort(select_rng.choice(train, size=budget, replace=False))
    trigger_seed = int(trigger_seed_rng.integers(0, 2**31))

    # The poisoned-label scaffold BGC.run builds once per run.
    poisoned_labels = graph.labels.copy()
    poisoned_labels[targets] = 0
    base_poisoned = graph.with_(
        labels=poisoned_labels,
        split=SplitIndices(
            train=np.union1d(graph.split.train, targets),
            val=graph.split.val,
            test=graph.split.test,
        ),
    )

    def run_regime(use_view: bool) -> Dict[str, object]:
        cache = PropagationCache()
        condenser = GCondX(
            CondensationConfig(
                epochs=1,
                ratio=0.05,
                surrogate_warm_start=use_view,
                surrogate_refresh_steps=2 if use_view else None,
            ),
            cache=cache,
        )
        condenser.initialize(base_poisoned, new_rng(0))
        attack = BGC(
            BGCConfig(
                poison_number=budget,
                epochs=1,
                use_graph_view=use_view,
                surrogate_warm_start=use_view,
                surrogate_refresh_steps=5,
                trigger=TriggerConfig(trigger_size=TRIGGER_SIZE),
            )
        )
        generator, optimizer, encoder_inputs = _fresh_generator(graph)
        rng = new_rng(trigger_seed)
        times = []
        poisoned = None
        for index in range(timed_epochs + 1):
            start = time.perf_counter()
            condensed = condenser.synthetic()
            surrogate_weight = attack._train_surrogate(condensed, rng)
            attack._update_generator(
                graph, encoder_inputs, generator, optimizer, surrogate_weight, rng
            )
            poisoned = attack._build_poisoned_graph(
                graph, base_poisoned, generator, targets
            )
            condenser.epoch_step(poisoned)
            elapsed = time.perf_counter() - start
            if index > 0:  # first epoch is warm-up
                times.append(elapsed)
        return {"epoch_ms": median(times) * 1e3, "poisoned": poisoned, "cache": cache}

    materialised = run_regime(use_view=False)
    view = run_regime(use_view=True)

    # Exactness of the final view epoch's difference-form propagation.
    view_cache: PropagationCache = view["cache"]
    last_view = view["poisoned"]
    lazy = view_cache.propagated_view(last_view, NUM_HOPS)
    reference = sgc_precompute(
        last_view.adjacency, last_view.features.materialize(), NUM_HOPS
    )
    view_max_abs_err = float(np.abs(lazy.materialize() - reference).max())

    return {
        "materialised_epoch_ms": materialised["epoch_ms"],
        "view_epoch_ms": view["epoch_ms"],
        "view_epoch_speedup": materialised["epoch_ms"] / view["epoch_ms"],
        "view_max_abs_err": view_max_abs_err,
    }


def _usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _sweep_throughput_spec(smoke: bool):
    """The 8-cell tiny grid: 2 condensers × 2 attacks × defense on/off.

    Cells are deliberately heavier than the CI smoke grid (more condensation
    and evaluation epochs) so per-cell compute dominates the process-pool
    overhead (fork + cache handoff + result pickling) the way a real sweep
    does; smoke mode shrinks them back down.
    """
    from repro.api import SweepSpec

    epochs = 2 if smoke else 6
    eval_epochs = 10 if smoke else 80
    return SweepSpec.from_dict(
        {
            "name": "throughput",
            "seed": 11,
            "base": {
                "dataset": "tiny",
                "condenser": {"overrides": {"epochs": epochs, "ratio": 0.2}},
                "trigger": {"overrides": {"trigger_size": 2}},
                "evaluation": {"overrides": {"epochs": eval_epochs}},
            },
            "axes": {
                "condenser": ["gcond", "gcond-x"],
                "attack": [
                    {"name": "bgc", "overrides": {"epochs": epochs, "poison_ratio": 0.2}},
                    {"name": "naive", "overrides": {"poison_fraction": 0.4}},
                ],
                "defense": ["prune", None],
            },
        }
    )


def run_sweep_throughput(smoke: bool = SMOKE) -> Dict[str, float]:
    """Serial vs process-pool execution of the 8-cell sweep grid.

    Both runs expand the identical spec; bit-identity is checked over every
    metric field *and* the condensed-graph sha256 fingerprints, so the
    comparison covers the full condensed artefacts rather than a summary.
    """
    from repro.api import ExecutionSpec, run_sweep
    from repro.api.runner import RunRecord

    sweep = _sweep_throughput_spec(smoke)

    start = time.perf_counter()
    serial = run_sweep(sweep)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(
        sweep, execution=ExecutionSpec(backend="process", workers=SWEEP_WORKERS)
    )
    parallel_s = time.perf_counter() - start

    def identity_key(record: RunRecord):
        payload = record.to_dict()
        payload.pop("timings")
        return payload

    records_match = [identity_key(r) for r in serial] == [
        identity_key(r) for r in parallel
    ]
    return {
        "sweep_cells": sweep.num_cells,
        "sweep_serial_s": serial_s,
        "sweep_parallel_s": parallel_s,
        "sweep_speedup": serial_s / parallel_s,
        "sweep_records_match": records_match,
        "sweep_workers": SWEEP_WORKERS,
        "sweep_cores": _usable_cores(),
        "sweep_cache_contributors": parallel.cache_stats.get("contributors", 0),
    }


def _pool_throughput_spec(smoke: bool):
    """A grid of many *minuscule* cells: one condensation epoch, one eval epoch.

    The sweep-throughput grid above makes per-cell compute dominate so the
    parallel speedup is visible; this grid inverts the regime — cells are as
    small as the spec schema allows (a 32-cell seed axis on ``tiny``), so
    per-cell *process launch* (fork + pipe + result pickling) dominates and
    the persistent pool's worker reuse is what's being measured.
    """
    cells = 8 if smoke else POOL_CELLS
    from repro.api import SweepSpec

    return SweepSpec.from_dict(
        {
            "name": "pool-throughput",
            "seed": 13,
            "base": {
                "dataset": "tiny",
                "condenser": {"name": "gcond-x", "overrides": {"epochs": 1, "ratio": 0.2}},
                "evaluation": {"overrides": {"epochs": 1}},
            },
            "axes": {"seed": list(range(cells))},
        }
    )


def run_pool_throughput(smoke: bool = SMOKE) -> Dict[str, object]:
    """Persistent pool vs fork-per-cell on the many-tiny-cell grid.

    Both legs run ``POOL_WORKERS`` workers over the identical expanded grid
    (all cells share the seed-0 ``tiny`` dataset, so the handoff is one
    shard either way); the only difference is process lifetime — the
    ``process`` backend launches one worker per cell, the ``pool`` backend
    reuses ``POOL_WORKERS`` long-lived workers.  Records must be
    bit-identical across both legs (and therefore to serial execution,
    whose identity the process backend already pins).
    """
    from repro.api import ExecutionSpec, run_sweep
    from repro.api.runner import RunRecord

    sweep = _pool_throughput_spec(smoke)
    load_dataset("tiny", seed=0)  # neither leg pays dataset generation

    start = time.perf_counter()
    per_cell = run_sweep(
        sweep, execution=ExecutionSpec(backend="process", workers=POOL_WORKERS)
    )
    per_cell_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_sweep(
        sweep, execution=ExecutionSpec(backend="pool", workers=POOL_WORKERS)
    )
    pooled_s = time.perf_counter() - start

    def identity_key(record: RunRecord):
        payload = record.to_dict()
        payload.pop("timings")
        return payload

    records_match = [identity_key(r) for r in per_cell] == [
        identity_key(r) for r in pooled
    ]
    return {
        "pool_cells": sweep.num_cells,
        "pool_per_cell_s": per_cell_s,
        "pool_pooled_s": pooled_s,
        "pool_speedup": per_cell_s / pooled_s,
        "pool_records_match": records_match,
        "pool_workers": POOL_WORKERS,
    }


def run_blocked_propagation(smoke: bool = SMOKE) -> Dict[str, object]:
    """One condensation epoch through the blocked out-of-core engine.

    Full mode condenses the Flickr stand-in's training view (~50k of 100k
    nodes, 500 features — 25M-element hop products, above the default
    blocked threshold); smoke mode shrinks to the SBM smoke graph with the
    threshold forced to 0 so the blocked machinery still runs end to end.
    Measured and asserted:

    * the *additional* peak RSS of the epoch (over the already-resident
      graph) stays below ``BLOCKED_RSS_FRACTION`` of the dense hop-chain
      footprint — the dense engine cannot go below 1.0 of it by definition;
    * the blocked hop product equals a dense ``sgc_precompute`` of the same
      graph at ``atol=1e-10``;
    * a tile-size sweep of the spmm kernel, reported for ``docs/benchmarks.md``.
    """
    from repro.graph.blocked import BlockedArray, blocked_spmm, set_blocked_threshold
    from repro.utils.memory import current_rss_bytes, peak_rss_bytes, reset_peak_rss

    if smoke:
        working = _build_graph(True)
        threshold = 0
        tile_rows = [32, 120]
        tile_cols = [16, 32]
        ratio = 0.1
    else:
        working = load_dataset("flickr", seed=0).training_view()
        threshold = None  # the default threshold already routes 50k x 500
        tile_rows = [2048, 8192, 32768]
        tile_cols = [64, 256, working.num_features]
        ratio = 0.005

    previous = set_blocked_threshold(threshold)
    try:
        cache = PropagationCache()
        condenser = GCondX(CondensationConfig(epochs=1, ratio=ratio), cache=cache)
        condenser.initialize(working, new_rng(0))

        reset_peak_rss()
        baseline = current_rss_bytes()
        start = time.perf_counter()
        condenser.epoch_step(working)
        epoch_s = time.perf_counter() - start
        peak_delta = peak_rss_bytes() - baseline

        product = cache.propagated(working, NUM_HOPS)
        assert isinstance(product, BlockedArray), (
            "condensation did not route through the blocked engine"
        )
        dense_chain_bytes = NUM_HOPS * working.num_nodes * working.num_features * 8
        rss_ceiling = BLOCKED_RSS_FRACTION * dense_chain_bytes

        # Exactness (outside the RSS window: the dense reference deliberately
        # allocates the very (N, F) arrays the blocked epoch avoided).
        reference = sgc_precompute(working.adjacency, working.features, NUM_HOPS)
        blocked_max_abs_err = float(np.abs(product.materialize() - reference).max())
        del reference

        # Tile sweep: one hop of the spmm kernel per (row, col) tile shape.
        normalized = cache.normalized(working)
        tile_sweep: List[Dict[str, float]] = []
        for row_block in tile_rows:
            for col_block in tile_cols:
                start = time.perf_counter()
                blocked_spmm(
                    normalized, working.features,
                    row_block=row_block, col_block=col_block,
                )
                tile_sweep.append({
                    "row_block": row_block,
                    "col_block": col_block,
                    "seconds": time.perf_counter() - start,
                })
    finally:
        set_blocked_threshold(previous)

    return {
        "blocked_graph": working.name,
        "blocked_nodes": working.num_nodes,
        "blocked_features": working.num_features,
        "blocked_epoch_s": epoch_s,
        "blocked_peak_delta_mb": peak_delta / 2**20,
        "blocked_rss_ceiling_mb": rss_ceiling / 2**20,
        "blocked_dense_chain_mb": dense_chain_bytes / 2**20,
        "blocked_max_abs_err": blocked_max_abs_err,
        "blocked_tile_sweep": tile_sweep,
    }


def run_generator_cache_comparison(
    smoke: bool = SMOKE,
    timed_epochs: int = TIMED_EPOCHS,
    graph: GraphData = None,
) -> Dict[str, float]:
    """Batched generator update with vs without the per-node scaffold cache.

    The pool is the (small) poison-target set, exactly the pool
    ``BGC._update_generator`` samples from — so after the warm-up epoch the
    cached regime serves every scaffold (local neighbourhood index, host
    adjacency block, host feature rows) from the dict instead of re-running
    ``_local_node_set`` + CSR slicing + feature gathers per node per step.
    Both regimes consume identical RNG streams, so their losses must be
    bit-identical — the cache only skips recomputing constants.
    """
    if graph is None:
        graph = _build_graph(smoke)
    select_rng, trigger_seed_rng = spawn_rngs(4, 2)
    train = graph.split.train
    budget = max(3, train.size // 10)
    pool = np.sort(select_rng.choice(train, size=budget, replace=False))
    trigger_seed = int(trigger_seed_rng.integers(0, 2**31))
    weight_tensor = Tensor(
        new_rng(29).normal(size=(graph.num_features, graph.num_classes))
    )
    loss_kwargs = dict(target_class=0, max_neighbors=MAX_NEIGHBORS, num_hops=NUM_HOPS)

    def run_regime(use_cache: bool):
        generator, optimizer, encoder_inputs = _fresh_generator(graph)
        rng = new_rng(trigger_seed)
        scaffold_cache = {} if use_cache else None
        times: List[float] = []
        last = float("nan")
        for index in range(timed_epochs + 1):
            start = time.perf_counter()
            for _ in range(GENERATOR_STEPS):
                batch = rng.choice(pool, size=min(UPDATE_BATCH, pool.size), replace=False)
                optimizer.zero_grad()
                loss = batched_local_trigger_loss(
                    batch, graph, encoder_inputs, generator, weight_tensor,
                    scaffold_cache=scaffold_cache, **loss_kwargs
                )
                loss.backward()
                optimizer.step()
                last = float(loss.item())
            elapsed = time.perf_counter() - start
            if index > 0:  # first epoch is warm-up (and fills the cache)
                times.append(elapsed)
        return median(times), last

    uncached_s, uncached_loss = run_regime(use_cache=False)
    cached_s, cached_loss = run_regime(use_cache=True)
    return {
        "scaffold_uncached_ms": uncached_s * 1e3,
        "scaffold_cached_ms": cached_s * 1e3,
        "scaffold_speedup": uncached_s / cached_s,
        "scaffold_losses_identical": uncached_loss == cached_loss,
    }


def run_hotpath(smoke: bool = SMOKE, timed_epochs: int = TIMED_EPOCHS) -> Dict[str, float]:
    graph = _build_graph(smoke)
    select_rng, trigger_seed_rng = spawn_rngs(1, 2)
    train = graph.split.train
    budget = max(3, train.size // 10)
    targets = np.sort(select_rng.choice(train, size=budget, replace=False))
    trigger_seed = int(trigger_seed_rng.integers(0, 2**31))

    timings: Dict[str, List[float]] = {}

    def run_mode(mode: str, cache: PropagationCache, record_delta: bool, fixed_graph: bool):
        """One mode: timed_epochs attack-loop condensation epochs (+1 warm-up).

        Poisoned graphs are built lazily (one alive at a time) so every mode
        sees the same allocator state — retaining a pile of ``(N, F)``
        matrices would slow all modes down via page-fault pressure.
        """
        condenser = _fresh_condenser(cache, graph, seed=0)
        rng = new_rng(trigger_seed)
        poisoned = None
        times = []
        for index in range(timed_epochs + 1):
            if poisoned is None or not fixed_graph:
                poisoned = _poisoned_graph(graph, targets, rng, record_delta)
            if mode == "no-cache":
                cache.invalidate()
            start = time.perf_counter()
            if mode == "cold (seed)":
                _seed_equivalent_epoch(condenser, poisoned)
            else:
                condenser.epoch_step(poisoned)
            elapsed = time.perf_counter() - start
            if index > 0:  # first epoch is warm-up (BLAS, allocator, base chain)
                times.append(elapsed)
        timings[mode] = times
        return poisoned

    # cold (seed): replica of the seed's per-epoch code — the ≥3× baseline.
    run_mode("cold (seed)", PropagationCache(), record_delta=False, fixed_graph=False)
    # no-cache: current code, memo cleared per epoch, no delta (informational).
    run_mode("no-cache", PropagationCache(), record_delta=False, fixed_graph=False)
    # cached: the same poisoned graph version every epoch — pure memo hits.
    run_mode("cached", PropagationCache(), record_delta=True, fixed_graph=True)
    # incremental: a fresh delta-recorded poisoned graph every epoch.
    shared = PropagationCache()
    last_poisoned = run_mode("incremental", shared, record_delta=True, fixed_graph=False)

    # --- exactness: incremental product vs a full cold recompute ----------- #
    incremental_product = shared.propagated(last_poisoned, NUM_HOPS)
    full_product = sgc_precompute(
        last_poisoned.adjacency, last_poisoned.features, NUM_HOPS
    )
    max_abs_err = float(np.abs(incremental_product - full_product).max())

    medians = {mode: median(times) for mode, times in timings.items()}
    cold = medians["cold (seed)"]
    results = {
        "graph": graph.name,
        "nodes": graph.num_nodes,
        "features": graph.num_features,
        "poisoned_nodes": int(budget),
        "cold_ms": cold * 1e3,
        "nocache_ms": medians["no-cache"] * 1e3,
        "cached_ms": medians["cached"] * 1e3,
        "incremental_ms": medians["incremental"] * 1e3,
        "speedup_nocache": cold / medians["no-cache"],
        "speedup_cached": cold / medians["cached"],
        "speedup_incremental": cold / medians["incremental"],
        "incremental_updates": shared.stats()["incremental_updates"],
        "buffer_reuses": shared.stats()["buffer_reuses"],
        "max_abs_err": max_abs_err,
    }
    results.update(
        run_attack_epoch_comparison(smoke=smoke, timed_epochs=timed_epochs, graph=graph)
    )
    results.update(
        run_view_epoch_comparison(smoke=smoke, timed_epochs=timed_epochs, graph=graph)
    )
    results.update(
        run_generator_cache_comparison(smoke=smoke, timed_epochs=timed_epochs, graph=graph)
    )
    results.update(run_sweep_throughput(smoke=smoke))
    results.update(run_pool_throughput(smoke=smoke))
    results.update(run_blocked_propagation(smoke=smoke))
    results.update(run_sampled_attack_step(smoke=smoke))
    results.update(run_kernel_backends(smoke=smoke))
    return results


def run_sampled_attack_step(smoke: bool = SMOKE) -> Dict[str, object]:
    """One PRBCD-style sampled edge-attack step: latency, peak RSS, reference.

    Smoke mode runs on the SBM smoke graph (where the full pair space is
    enumerable) and additionally checks the covering-block == exhaustive
    contract; full mode times the step on the flickr training view — ~1.2e9
    candidate pairs — and measures the step's *additional* peak RSS, which
    must be bounded by the sampled block, never the candidate space or an
    ``(N, F)`` chain materialisation.
    """
    from repro.attack.sampled import (
        SampledEdgeAttack,
        SampledEdgeConfig,
        num_candidate_pairs,
    )
    from repro.utils.memory import current_rss_bytes, peak_rss_bytes, reset_peak_rss

    if smoke:
        working = _build_graph(True)
        block_size = 256
    else:
        working = load_dataset("flickr", seed=0).training_view()
        block_size = 2048
    config = SampledEdgeConfig(block_size=block_size, surrogate_steps=1)
    attack = SampledEdgeAttack(config)
    cache = PropagationCache()
    cache.propagated(working, config.surrogate_hops)
    cache.propagated(working, config.surrogate_hops - 1)
    weight = new_rng(2).normal(
        scale=0.1, size=(working.num_features, working.num_classes)
    )
    labels = working.labels
    train = working.split.train

    def one_step(seed: int, attacker=attack):
        return attacker.propose_flips(
            working, labels, train, weight, new_rng(seed), quota=8, cache=cache
        )

    one_step(0)  # warm allocator + chain handles before measuring
    reset_ok = reset_peak_rss()
    baseline = current_rss_bytes()
    start = time.perf_counter()
    chosen = one_step(9)
    step_s = time.perf_counter() - start
    peak = peak_rss_bytes()
    delta_mb = (
        (peak - baseline) / 2**20
        if reset_ok and peak is not None and baseline is not None
        else float("nan")
    )

    total = num_candidate_pairs(working.num_nodes)
    reference_match = True
    if total <= 2**20:  # the dense reference is only enumerable at smoke scale
        covering = SampledEdgeAttack(
            SampledEdgeConfig(block_size=total, surrogate_steps=1)
        )
        exhaustive = SampledEdgeAttack(
            SampledEdgeConfig(exhaustive=True, surrogate_steps=1)
        )
        reference_match = one_step(3, covering) == one_step(3, exhaustive)
    return {
        "sampled_graph": working.name,
        "sampled_nodes": working.num_nodes,
        "sampled_candidate_pairs": total,
        "sampled_block": block_size,
        "sampled_step_ms": step_s * 1e3,
        "sampled_flips": len(chosen),
        "sampled_peak_delta_mb": delta_mb,
        "sampled_reference_match": reference_match,
    }


def run_kernel_backends(smoke: bool = SMOKE) -> Dict[str, object]:
    """Threaded kernel backend vs the numpy reference on hot-path-shaped ops.

    One propagation-shaped spmm (sparse adjacency × dense feature block, the
    shape every SGC/APPNP hop takes) and one gradient-matching-shaped batched
    matmul, timed under both backends.  Outputs must be **bit-identical** —
    the threaded backend chunks rows/batches, which moves work across
    threads without reordering any per-row accumulation.
    """
    import scipy.sparse as sparse

    from repro.kernels import NumpyBackend, ThreadedBackend

    rows, features = (3_000, 32) if smoke else (60_000, 256)
    matrix = sparse.random(
        rows, rows, density=8.0 / rows, random_state=7, format="csr"
    )
    dense = new_rng(8).normal(size=(rows, features))
    batch, dim = (48, 24) if smoke else (256, 64)
    bmm_a = new_rng(9).normal(size=(batch, dim, dim))
    bmm_b = new_rng(10).normal(size=(batch, dim, dim))

    reference = NumpyBackend()
    threaded = ThreadedBackend()  # REPRO_KERNEL_THREADS or cpu_count workers
    reps = 3 if smoke else 7

    def timed(operation) -> float:
        operation()  # warm-up: BLAS dispatch, pool spin-up, page faults
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            operation()
            times.append(time.perf_counter() - start)
        return median(times)

    spmm_identical = bool(
        np.array_equal(threaded.spmm(matrix, dense), reference.spmm(matrix, dense))
    )
    bmm_identical = bool(
        np.array_equal(
            threaded.batched_matmul(bmm_a, bmm_b),
            reference.batched_matmul(bmm_a, bmm_b),
        )
    )
    spmm_serial = timed(lambda: reference.spmm(matrix, dense))
    spmm_threaded = timed(lambda: threaded.spmm(matrix, dense))
    bmm_serial = timed(lambda: reference.batched_matmul(bmm_a, bmm_b))
    bmm_threaded = timed(lambda: threaded.batched_matmul(bmm_a, bmm_b))

    return {
        "kernel_rows": rows,
        "kernel_nnz": int(matrix.nnz),
        "kernel_features": features,
        "kernel_workers": threaded.workers,
        "kernel_cores": _usable_cores(),
        "kernel_spmm_serial_ms": spmm_serial * 1e3,
        "kernel_spmm_threaded_ms": spmm_threaded * 1e3,
        "kernel_spmm_speedup": spmm_serial / spmm_threaded,
        "kernel_spmm_identical": spmm_identical,
        "kernel_bmm_serial_ms": bmm_serial * 1e3,
        "kernel_bmm_threaded_ms": bmm_threaded * 1e3,
        "kernel_bmm_speedup": bmm_serial / bmm_threaded,
        "kernel_bmm_identical": bmm_identical,
    }


def _report(results: Dict[str, float]) -> None:
    from bench_common import print_header

    print_header(
        "Hot path: attack-loop condensation epoch "
        f"({results['graph']}, N={results['nodes']}, F={results['features']}, "
        f"{results['poisoned_nodes']} poisoned nodes)"
    )
    print(f"{'path':<14}{'epoch (ms)':>12}{'speedup':>10}")
    for label, key in (
        ("cold (seed)", "cold_ms"),
        ("no-cache", "nocache_ms"),
        ("cached", "cached_ms"),
        ("incremental", "incremental_ms"),
    ):
        speedup = results["cold_ms"] / results[key]
        print(f"{label:<14}{results[key]:>12.2f}{speedup:>10.2f}")
    print(
        f"incremental updates: {results['incremental_updates']}"
        f"  buffer reuses: {results['buffer_reuses']}"
    )
    print(f"max |incremental - full recompute|: {results['max_abs_err']:.3e}")

    print_header("Attack epoch: PR 1 path vs loop-free path")
    print(f"{'component':<22}{'PR 1 (ms)':>12}{'new (ms)':>12}{'speedup':>10}")
    for label, old_key, new_key, ratio_key in (
        ("generator update", "pernode_update_ms", "batched_update_ms", "update_speedup"),
        ("trigger attachment", "attach_coo_ms", "attach_csr_ms", "attach_speedup"),
        ("full attack epoch", "pr1_epoch_ms", "new_epoch_ms", "epoch_speedup"),
    ):
        print(
            f"{label:<22}{results[old_key]:>12.2f}{results[new_key]:>12.2f}"
            f"{results[ratio_key]:>10.2f}"
        )
    print(f"max |incremental - full gcn_normalize|: {results['norm_max_abs_err']:.3e}")

    print_header("Complete BGC attack epoch: materialised (PR 2) vs view (PR 4)")
    print(f"{'path':<22}{'epoch (ms)':>12}{'speedup':>10}")
    print(f"{'materialised (PR 2)':<22}{results['materialised_epoch_ms']:>12.2f}{1.0:>10.2f}")
    print(
        f"{'view + warm start':<22}{results['view_epoch_ms']:>12.2f}"
        f"{results['view_epoch_speedup']:>10.2f}"
    )
    print(f"max |view propagation - full recompute|: {results['view_max_abs_err']:.3e}")

    print_header("Generator update: cold scaffolds vs scaffold cache")
    print(f"{'path':<22}{'update (ms)':>12}{'speedup':>10}")
    print(f"{'cold scaffolds':<22}{results['scaffold_uncached_ms']:>12.2f}{1.0:>10.2f}")
    print(
        f"{'scaffold cache':<22}{results['scaffold_cached_ms']:>12.2f}"
        f"{results['scaffold_speedup']:>10.2f}"
    )
    print(
        "losses bit-identical: "
        f"{'yes' if results['scaffold_losses_identical'] else 'NO'}"
    )

    print_header(
        f"Blocked propagation: {results['blocked_graph']} "
        f"(N={results['blocked_nodes']}, F={results['blocked_features']})"
    )
    print(f"condensation epoch through the blocked engine: {results['blocked_epoch_s']:.2f} s")
    print(
        f"additional peak RSS: {results['blocked_peak_delta_mb']:.1f} MiB "
        f"(ceiling {results['blocked_rss_ceiling_mb']:.1f} MiB = "
        f"{BLOCKED_RSS_FRACTION:.0%} of the "
        f"{results['blocked_dense_chain_mb']:.1f} MiB dense hop chain)"
    )
    print(f"max |blocked - dense sgc_precompute|: {results['blocked_max_abs_err']:.3e}")
    print(f"{'row tile':>10}{'col tile':>10}{'spmm (s)':>12}")
    for entry in results["blocked_tile_sweep"]:
        print(
            f"{entry['row_block']:>10}{entry['col_block']:>10}"
            f"{entry['seconds']:>12.3f}"
        )

    print_header(
        f"Sweep throughput: {results['sweep_cells']}-cell tiny grid, serial vs "
        f"process pool ({results['sweep_workers']} workers, "
        f"{results['sweep_cores']} usable cores)"
    )
    print(f"{'backend':<14}{'wall-clock (s)':>16}{'speedup':>10}")
    print(f"{'serial':<14}{results['sweep_serial_s']:>16.2f}{1.0:>10.2f}")
    print(
        f"{'process':<14}{results['sweep_parallel_s']:>16.2f}"
        f"{results['sweep_speedup']:>10.2f}"
    )
    print(
        "records bit-identical: "
        f"{'yes' if results['sweep_records_match'] else 'NO'}"
        f"  (cache stats merged from {results['sweep_cache_contributors']} "
        "contributors: parent handoff + one per cell)"
    )
    if results["sweep_cores"] < results["sweep_workers"]:
        print(
            f"note: only {results['sweep_cores']} usable core(s) — the "
            f"{SWEEP_SPEEDUP_FLOOR}x floor needs >= {results['sweep_workers']} "
            "and is not asserted on this host"
        )

    print_header(
        f"Pool throughput: {results['pool_cells']} minuscule cells, "
        f"fork-per-cell vs persistent pool ({results['pool_workers']} workers)"
    )
    print(f"{'backend':<14}{'wall-clock (s)':>16}{'speedup':>10}")
    print(f"{'process':<14}{results['pool_per_cell_s']:>16.2f}{1.0:>10.2f}")
    print(
        f"{'pool':<14}{results['pool_pooled_s']:>16.2f}"
        f"{results['pool_speedup']:>10.2f}"
    )
    print(
        "records bit-identical: "
        f"{'yes' if results['pool_records_match'] else 'NO'}"
    )
    if results["sweep_cores"] < results["pool_workers"]:
        print(
            f"note: only {results['sweep_cores']} usable core(s) — the "
            f"{POOL_SPEEDUP_FLOOR}x pool floor needs >= "
            f"{results['pool_workers']} and is not asserted on this host"
        )

    print_header(
        f"Sampled attack step: {results['sampled_graph']} "
        f"(N={results['sampled_nodes']}, "
        f"{results['sampled_candidate_pairs']:,} candidate pairs, "
        f"block {results['sampled_block']})"
    )
    print(
        f"one propose_flips step: {results['sampled_step_ms']:.1f} ms, "
        f"{results['sampled_flips']} positive-gain flips"
    )
    print(
        f"additional peak RSS: {results['sampled_peak_delta_mb']:.1f} MiB "
        f"(ceiling {SAMPLED_RSS_CEILING_MB:.0f} MiB at full scale; the dense "
        "candidate space would need "
        f"{results['sampled_candidate_pairs'] * 8 / 2**30:.1f} GiB of scores)"
    )
    print(
        "covering block == exhaustive reference: "
        f"{'yes' if results['sampled_reference_match'] else 'NO'}"
    )

    print_header(
        f"Kernel backends: threaded vs numpy reference "
        f"(spmm {results['kernel_rows']}x{results['kernel_rows']}, "
        f"nnz={results['kernel_nnz']:,}, F={results['kernel_features']}; "
        f"{results['kernel_workers']} worker(s), "
        f"{results['kernel_cores']} usable core(s))"
    )
    print(f"{'primitive':<16}{'numpy (ms)':>12}{'threaded (ms)':>14}{'speedup':>10}")
    for label, serial_key, threaded_key, ratio_key in (
        ("spmm", "kernel_spmm_serial_ms", "kernel_spmm_threaded_ms", "kernel_spmm_speedup"),
        ("batched matmul", "kernel_bmm_serial_ms", "kernel_bmm_threaded_ms", "kernel_bmm_speedup"),
    ):
        print(
            f"{label:<16}{results[serial_key]:>12.2f}"
            f"{results[threaded_key]:>14.2f}{results[ratio_key]:>10.2f}"
        )
    print(
        "outputs bit-identical: "
        f"spmm {'yes' if results['kernel_spmm_identical'] else 'NO'}, "
        f"batched matmul {'yes' if results['kernel_bmm_identical'] else 'NO'}"
    )
    if results["kernel_cores"] < KERNEL_MIN_CORES:
        print(
            f"note: only {results['kernel_cores']} usable core(s) — the "
            f"{KERNEL_SPMM_SPEEDUP_FLOOR}x spmm floor needs >= "
            f"{KERNEL_MIN_CORES} and is not asserted on this host"
        )


def _sweep_floor_applies(results: Dict[str, float], smoke: bool) -> bool:
    """Whether the parallel wall-clock floor is meaningful on this host."""
    return not smoke and results["sweep_cores"] >= results["sweep_workers"]


def _pool_floor_applies(results: Dict[str, float], smoke: bool) -> bool:
    """Whether the pool-vs-fork-per-cell floor is meaningful on this host."""
    return not smoke and results["sweep_cores"] >= results["pool_workers"]


def _kernel_floor_applies(results: Dict[str, float], smoke: bool) -> bool:
    """Whether the threaded-spmm real-speedup floor is meaningful here."""
    return (
        not smoke
        and results["kernel_cores"] >= KERNEL_MIN_CORES
        and results["kernel_workers"] > 1
    )


def test_hotpath_cached_and_incremental_speedup():
    results = run_hotpath()
    _report(results)
    assert results["max_abs_err"] <= EQUIVALENCE_ATOL, (
        "incremental propagation diverged from the full recompute: "
        f"{results['max_abs_err']:.3e}"
    )
    assert results["norm_max_abs_err"] <= EQUIVALENCE_ATOL, (
        "incremental normalisation diverged from the full recompute: "
        f"{results['norm_max_abs_err']:.3e}"
    )
    assert results["view_max_abs_err"] <= EQUIVALENCE_ATOL, (
        "view-path difference-form propagation diverged from the full "
        f"recompute: {results['view_max_abs_err']:.3e}"
    )
    assert results["sweep_records_match"], (
        "parallel sweep records diverged from the serial run"
    )
    assert results["pool_records_match"], (
        "persistent-pool records diverged from the fork-per-cell run"
    )
    assert results["blocked_max_abs_err"] <= EQUIVALENCE_ATOL, (
        "blocked propagation diverged from the dense engine: "
        f"{results['blocked_max_abs_err']:.3e}"
    )
    assert results["scaffold_losses_identical"], (
        "scaffold cache changed the generator-update losses"
    )
    assert results["sampled_reference_match"], (
        "sampled attacker's covering block diverged from the exhaustive reference"
    )
    assert results["kernel_spmm_identical"], (
        "threaded kernel backend's spmm diverged from the numpy reference"
    )
    assert results["kernel_bmm_identical"], (
        "threaded kernel backend's batched matmul diverged from the numpy reference"
    )
    if not SMOKE:
        assert results["speedup_cached"] >= SPEEDUP_FLOOR, results
        assert results["speedup_incremental"] >= SPEEDUP_FLOOR, results
        assert results["epoch_speedup"] >= EPOCH_SPEEDUP_FLOOR, results
        assert results["view_epoch_speedup"] >= VIEW_EPOCH_SPEEDUP_FLOOR, results
        assert results["scaffold_speedup"] >= SCAFFOLD_SPEEDUP_FLOOR, results
        assert results["kernel_spmm_speedup"] >= KERNEL_PARITY_FLOOR, results
        assert results["blocked_peak_delta_mb"] <= results["blocked_rss_ceiling_mb"], (
            "blocked condensation epoch exceeded its peak-RSS ceiling: "
            f"{results['blocked_peak_delta_mb']:.1f} MiB > "
            f"{results['blocked_rss_ceiling_mb']:.1f} MiB"
        )
        if not math.isnan(results["sampled_peak_delta_mb"]):
            assert results["sampled_peak_delta_mb"] <= SAMPLED_RSS_CEILING_MB, (
                "sampled attack step exceeded its peak-RSS ceiling: "
                f"{results['sampled_peak_delta_mb']:.1f} MiB > "
                f"{SAMPLED_RSS_CEILING_MB:.1f} MiB"
            )
    if _sweep_floor_applies(results, SMOKE):
        assert results["sweep_speedup"] >= SWEEP_SPEEDUP_FLOOR, results
    if _pool_floor_applies(results, SMOKE):
        assert results["pool_speedup"] >= POOL_SPEEDUP_FLOOR, results
    if _kernel_floor_applies(results, SMOKE):
        assert results["kernel_spmm_speedup"] >= KERNEL_SPMM_SPEEDUP_FLOOR, results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny graph, equivalence check only (no speedup assertion)",
    )
    args = parser.parse_args()
    outcome = run_hotpath(smoke=args.smoke or SMOKE)
    _report(outcome)
    if outcome["max_abs_err"] > EQUIVALENCE_ATOL:
        raise SystemExit("propagation equivalence check FAILED")
    if outcome["norm_max_abs_err"] > EQUIVALENCE_ATOL:
        raise SystemExit("normalisation equivalence check FAILED")
    if outcome["view_max_abs_err"] > EQUIVALENCE_ATOL:
        raise SystemExit("view-path propagation equivalence check FAILED")
    if not outcome["sweep_records_match"]:
        raise SystemExit("parallel sweep bit-identity check FAILED")
    if not outcome["pool_records_match"]:
        raise SystemExit("persistent-pool bit-identity check FAILED")
    if outcome["blocked_max_abs_err"] > EQUIVALENCE_ATOL:
        raise SystemExit("blocked-vs-dense propagation equivalence check FAILED")
    if not outcome["scaffold_losses_identical"]:
        raise SystemExit("scaffold-cache loss bit-identity check FAILED")
    if not outcome["sampled_reference_match"]:
        raise SystemExit("sampled-vs-exhaustive attack equivalence check FAILED")
    if not (outcome["kernel_spmm_identical"] and outcome["kernel_bmm_identical"]):
        raise SystemExit("threaded kernel backend bit-identity check FAILED")
    if not (args.smoke or SMOKE):
        if min(outcome["speedup_cached"], outcome["speedup_incremental"]) < SPEEDUP_FLOOR:
            raise SystemExit(f"speedup below {SPEEDUP_FLOOR}x")
        if outcome["epoch_speedup"] < EPOCH_SPEEDUP_FLOOR:
            raise SystemExit(f"attack-epoch speedup below {EPOCH_SPEEDUP_FLOOR}x")
        if outcome["view_epoch_speedup"] < VIEW_EPOCH_SPEEDUP_FLOOR:
            raise SystemExit(
                f"view attack-epoch speedup below {VIEW_EPOCH_SPEEDUP_FLOOR}x"
            )
        if outcome["scaffold_speedup"] < SCAFFOLD_SPEEDUP_FLOOR:
            raise SystemExit(
                f"scaffold-cache update speedup below {SCAFFOLD_SPEEDUP_FLOOR}x"
            )
        if outcome["kernel_spmm_speedup"] < KERNEL_PARITY_FLOOR:
            raise SystemExit(
                f"threaded kernel spmm below the {KERNEL_PARITY_FLOOR}x parity floor"
            )
        if outcome["blocked_peak_delta_mb"] > outcome["blocked_rss_ceiling_mb"]:
            raise SystemExit("blocked propagation exceeded its peak-RSS ceiling")
        if (
            not math.isnan(outcome["sampled_peak_delta_mb"])
            and outcome["sampled_peak_delta_mb"] > SAMPLED_RSS_CEILING_MB
        ):
            raise SystemExit("sampled attack step exceeded its peak-RSS ceiling")
    if _sweep_floor_applies(outcome, args.smoke or SMOKE):
        if outcome["sweep_speedup"] < SWEEP_SPEEDUP_FLOOR:
            raise SystemExit(f"sweep-throughput speedup below {SWEEP_SPEEDUP_FLOOR}x")
    if _pool_floor_applies(outcome, args.smoke or SMOKE):
        if outcome["pool_speedup"] < POOL_SPEEDUP_FLOOR:
            raise SystemExit(f"pool-throughput speedup below {POOL_SPEEDUP_FLOOR}x")
    if _kernel_floor_applies(outcome, args.smoke or SMOKE):
        if outcome["kernel_spmm_speedup"] < KERNEL_SPMM_SPEEDUP_FLOOR:
            raise SystemExit(
                f"threaded kernel spmm speedup below {KERNEL_SPMM_SPEEDUP_FLOOR}x"
            )
    print("\nhot-path benchmark OK")
