"""Extension experiment — can anomaly detection spot a BGC-poisoned condensed graph?

The paper's discussion section argues that detection-based defenses fail
against BGC because no explicit trigger is present in the condensed graph.
This extension experiment quantifies that claim: two detectors (feature
outlier z-score and spectral signatures) score the condensed nodes of a clean
and a BGC-poisoned condensation, and the benchmark reports (a) how different
the two score distributions are and (b) what removing the flagged nodes does
to CTA and ASR.
"""

from __future__ import annotations

import numpy as np

from repro.attack import BGC
from repro.attack.analysis import condensed_graph_divergence
from repro.condensation import make_condenser
from repro.datasets import load_dataset
from repro.defenses.detection import (
    FeatureOutlierDetector,
    SpectralSignatureDetector,
    remove_flagged_nodes,
)
from repro.evaluation.pipeline import evaluate_backdoor, evaluate_clean, train_model_on_condensed
from repro.utils.seed import spawn_rngs

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows

DATASET = "cora"
CONTAMINATION = 0.15


def run_extension():
    settings = BenchSettings()
    ratio = DEFAULT_RATIOS[DATASET]
    graph = load_dataset(DATASET, seed=settings.seed)
    evaluation = settings.evaluation()
    attack_rng, clean_rng, eval_rng = spawn_rngs(settings.seed + 23, 3)

    clean_condensed = make_condenser("gcond-x", settings.condensation(ratio)).condense(
        graph, clean_rng
    )
    attack = BGC(settings.attack(DATASET))
    result = attack.run(graph, make_condenser("gcond-x", settings.condensation(ratio)), attack_rng)

    divergence = condensed_graph_divergence(clean_condensed, result.condensed)

    rows = []
    victim = train_model_on_condensed(result.condensed, graph, evaluation, eval_rng)
    rows.append(
        {
            "variant": "no defense",
            "flagged": 0,
            "CTA": evaluate_clean(victim, graph),
            "ASR": evaluate_backdoor(victim, graph, result.generator, result.target_class),
        }
    )

    detectors = {
        "feature outlier": FeatureOutlierDetector(contamination=CONTAMINATION),
        "spectral signature": SpectralSignatureDetector(contamination=CONTAMINATION),
    }
    for name, detector in detectors.items():
        report = detector.detect(result.condensed)
        cleaned = remove_flagged_nodes(result.condensed, report)
        model = train_model_on_condensed(cleaned, graph, evaluation, eval_rng)
        rows.append(
            {
                "variant": f"remove {name} flags",
                "flagged": report.num_flagged,
                "CTA": evaluate_clean(model, graph),
                "ASR": evaluate_backdoor(model, graph, result.generator, result.target_class),
            }
        )
    return rows, divergence


def test_extension_detection_defenses(benchmark):
    rows, divergence = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    print_header("Extension: anomaly detection on the poisoned condensed graph")
    print(
        "clean-vs-poisoned condensed divergence: "
        f"feature mean gap {divergence['feature_mean_gap']:.5f}, "
        f"class-prototype cosine {divergence['mean_class_prototype_cosine']:.3f}"
    )
    print_rows(rows, columns=["variant", "flagged", "CTA", "ASR"])
    # The paper's claim: detection-based cleaning does not remove the backdoor.
    undefended = rows[0]["ASR"]
    for row in rows[1:]:
        assert row["ASR"] > 0.5, f"detector unexpectedly removed the backdoor: {row}"
    assert undefended > 0.9
