"""Extension experiment — the model × defense transferability matrix.

The paper's transfer study asks whether a backdoor condensed under one
surrogate survives every downstream architecture, and which defense kills
it.  This benchmark runs the declarative :class:`TransferSweepSpec` path on
a reduced grid (three architectures × undefended/prune/dropedge) and prints
the CTA/ASR matrix the ``repro transfer`` CLI verb emits, so the benchmark
exercises exactly the code path users run.
"""

from __future__ import annotations

from repro.api import ExperimentSpec, TransferSweepSpec, run_sweep
from repro.evaluation.reporting import format_transfer_matrix, transfer_matrix

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header

DATASET = "cora"
MODELS = ["gcn", "gat", "mlp"]
DEFENSES = [None, "prune", "dropedge"]


def run_transfer_matrix():
    settings = BenchSettings()
    base = ExperimentSpec.from_dict(
        {
            "dataset": DATASET,
            "condenser": {
                "name": "gcond",
                "overrides": {
                    "epochs": settings.condensation_epochs,
                    "ratio": DEFAULT_RATIOS[DATASET],
                },
            },
            "attack": "naive",
            "evaluation": {
                "overrides": {
                    "epochs": settings.evaluation_epochs,
                    "hidden": settings.hidden,
                }
            },
        }
    )
    spec = TransferSweepSpec(
        base=base, models=MODELS, defenses=DEFENSES, seed=settings.seed, name="bench-transfer"
    )
    records = run_sweep(spec.to_sweep())
    return transfer_matrix(records)


def test_transfer_matrix(benchmark):
    matrix = benchmark.pedantic(run_transfer_matrix, rounds=1, iterations=1)
    print_header(f"Transfer matrix: {DATASET}, naive poison, gcond surrogate")
    print(format_transfer_matrix(matrix))
    assert matrix["models"] == MODELS
    assert matrix["defenses"] == ["none", "prune", "dropedge"]
    # Every cell of the grid must complete — a failed cell means a defense or
    # architecture broke under the declarative path.
    assert all(cell["status"] == "ok" for cell in matrix["cells"])
