"""Figure 6 — ASR as a function of condensation epochs.

The paper shows the ASR rising with the number of condensation epochs and
then converging; the benchmark sweeps a reduced epoch grid and reports the
same series.
"""

from __future__ import annotations

from bench_common import DEFAULT_RATIOS, FULL_MODE, BenchSettings, print_header, print_rows, run_bgc_cell

DATASET = "cora"
EPOCH_GRID = [2, 6, 12, 25] if not FULL_MODE else [5, 15, 30, 60]


def run_figure6():
    rows = []
    ratio = DEFAULT_RATIOS[DATASET]
    for epochs in EPOCH_GRID:
        settings = BenchSettings()
        settings.condensation_epochs = epochs
        settings.attack_epochs = epochs
        cell = run_bgc_cell(DATASET, "gcond", ratio, settings, include_clean=False)
        rows.append({"epochs": epochs, "CTA": cell["CTA"], "ASR": cell["ASR"]})
    return rows


def test_fig6_condensation_epochs(benchmark):
    rows = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    print_header(f"Figure 6: ASR vs condensation epochs ({DATASET}, GCond)")
    print_rows(rows, columns=["epochs", "CTA", "ASR"])
    # Shape check: ASR at the largest budget is at least as high as the smallest.
    assert rows[-1]["ASR"] >= rows[0]["ASR"] - 0.05
