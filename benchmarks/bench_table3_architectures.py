"""Table III — transfer of the backdoor to different GNN architectures.

A single BGC+GCond condensed graph is used to train GCN, GraphSAGE, SGC, MLP,
APPNP and ChebyNet downstream models; each is evaluated for CTA and ASR.
"""

from __future__ import annotations

from repro.attack import BGC
from repro.condensation import make_condenser
from repro.datasets import load_dataset
from repro.evaluation.pipeline import evaluate_backdoor, evaluate_clean, train_model_on_condensed
from repro.utils.seed import spawn_rngs

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows

ARCHITECTURES = ["gcn", "sage", "sgc", "mlp", "appnp", "cheby"]
DATASET = "cora"


def run_table3():
    settings = BenchSettings()
    ratio = DEFAULT_RATIOS[DATASET]
    graph = load_dataset(DATASET, seed=settings.seed)
    attack_rng, clean_rng, eval_rng = spawn_rngs(settings.seed + 11, 3)

    attack = BGC(settings.attack(DATASET))
    result = attack.run(graph, make_condenser("gcond", settings.condensation(ratio)), attack_rng)
    clean_condensed = make_condenser("gcond", settings.condensation(ratio)).condense(
        graph, clean_rng
    )

    rows = []
    for architecture in ARCHITECTURES:
        evaluation = settings.evaluation(architecture)
        backdoored = train_model_on_condensed(result.condensed, graph, evaluation, eval_rng)
        clean = train_model_on_condensed(clean_condensed, graph, evaluation, eval_rng)
        rows.append(
            {
                "architecture": architecture,
                "C-CTA": evaluate_clean(clean, graph),
                "CTA": evaluate_clean(backdoored, graph),
                "ASR": evaluate_backdoor(backdoored, graph, result.generator, result.target_class),
            }
        )
    return rows


def test_table3_architecture_transfer(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    print_header(f"Table III: backdoor transfer across GNN architectures ({DATASET}, GCond)")
    print_rows(rows, columns=["architecture", "C-CTA", "CTA", "ASR"])
    # Shape check: the attack transfers to a majority of architectures.
    successful = sum(1 for row in rows if row["ASR"] > 0.8)
    assert successful >= len(rows) // 2
