"""Figure 4 — attack comparison: BGC vs adapted GTA and DOORPING.

The paper shows that the two adapted baselines sometimes attack successfully
but are less reliable than BGC and hurt utility more.  The benchmark reports
CTA and ASR for all three attacks under the GCond condenser.
"""

from __future__ import annotations

from repro.attack import DoorpingAttack, GTAAttack
from repro.attack.baselines.doorping import DoorpingConfig
from repro.attack.baselines.gta import GTAConfig
from repro.attack.trigger import TriggerConfig
from repro.attack.selection import SelectionConfig
from repro.condensation import make_condenser
from repro.datasets import load_dataset
from repro.evaluation.pipeline import evaluate_backdoor, evaluate_clean, train_model_on_condensed
from repro.utils.seed import spawn_rngs

from bench_common import (
    DEFAULT_RATIOS,
    POISON_SETTINGS,
    BenchSettings,
    print_header,
    print_rows,
    run_bgc_cell,
)

DATASETS = ["cora", "citeseer"]


def _poison_kwargs(dataset: str) -> dict:
    poison = POISON_SETTINGS[dataset]
    return {
        "poison_ratio": poison.get("poison_ratio"),
        "poison_number": poison.get("poison_number"),
    }


def run_figure4():
    settings = BenchSettings()
    rows = []
    for dataset in DATASETS:
        ratio = DEFAULT_RATIOS[dataset]
        graph = load_dataset(dataset, seed=settings.seed)
        evaluation = settings.evaluation()
        attack_rng, eval_rng = spawn_rngs(settings.seed + 3, 2)

        # GTA: poison once before condensation.
        gta = GTAAttack(
            GTAConfig(
                generator_epochs=settings.attack_epochs,
                update_batch_size=settings.update_batch_size,
                trigger=TriggerConfig(trigger_size=settings.trigger_size),
                selection=SelectionConfig(num_clusters=3, selector_epochs=60),
                **_poison_kwargs(dataset),
            )
        )
        gta_result = gta.run(graph, make_condenser("gcond", settings.condensation(ratio)), attack_rng)
        gta_model = train_model_on_condensed(gta_result.condensed, graph, evaluation, eval_rng)
        rows.append(
            {
                "dataset": dataset,
                "attack": "GTA",
                "CTA": evaluate_clean(gta_model, graph),
                "ASR": evaluate_backdoor(gta_model, graph, gta_result.generator, gta_result.target_class),
            }
        )

        # DOORPING: universal trigger refreshed during condensation.
        doorping = DoorpingAttack(
            DoorpingConfig(
                epochs=settings.attack_epochs,
                trigger_steps=settings.generator_steps,
                update_batch_size=settings.update_batch_size,
                surrogate_steps=settings.surrogate_steps,
                trigger=TriggerConfig(trigger_size=settings.trigger_size),
                selection=SelectionConfig(num_clusters=3, selector_epochs=60),
                **_poison_kwargs(dataset),
            )
        )
        doorping_result = doorping.run(
            graph, make_condenser("gcond", settings.condensation(ratio)), attack_rng
        )
        doorping_model = train_model_on_condensed(
            doorping_result.condensed, graph, evaluation, eval_rng
        )
        rows.append(
            {
                "dataset": dataset,
                "attack": "DOORPING",
                "CTA": evaluate_clean(doorping_model, graph),
                "ASR": evaluate_backdoor(
                    doorping_model, graph, doorping_result.generator, doorping_result.target_class
                ),
            }
        )

        # BGC.
        bgc_cell = run_bgc_cell(dataset, "gcond", ratio, settings, include_clean=False)
        rows.append({"dataset": dataset, "attack": "BGC", "CTA": bgc_cell["CTA"], "ASR": bgc_cell["ASR"]})
    return rows


def test_fig4_attack_comparison(benchmark):
    rows = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    print_header("Figure 4: BGC vs adapted graph backdoor baselines (GCond)")
    print_rows(rows, columns=["dataset", "attack", "CTA", "ASR"])
    # Shape check: BGC's ASR is at least as good as both baselines per dataset.
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], {})[row["attack"]] = row
    for dataset, attacks in by_dataset.items():
        assert attacks["BGC"]["ASR"] >= attacks["GTA"]["ASR"] - 0.05
        assert attacks["BGC"]["ASR"] >= attacks["DOORPING"]["ASR"] - 0.05
