"""Figure 1 — Clean Model vs Naive Poison vs BGC (clean test accuracy).

Reproduces the motivating comparison: naively injecting triggers into the
condensed graph destroys the downstream GNN's clean accuracy, while BGC keeps
it close to the clean model.
"""

from __future__ import annotations

from repro.attack.naive import NaivePoison, NaivePoisonConfig
from repro.condensation import make_condenser
from repro.datasets import load_dataset
from repro.evaluation.pipeline import evaluate_clean, train_model_on_condensed
from repro.utils.seed import spawn_rngs

from bench_common import (
    DEFAULT_RATIOS,
    BenchSettings,
    print_header,
    print_rows,
    run_bgc_cell,
)

DATASETS = ["cora", "citeseer"]


def run_figure1():
    settings = BenchSettings()
    rows = []
    for dataset in DATASETS:
        ratio = DEFAULT_RATIOS[dataset]
        graph = load_dataset(dataset, seed=settings.seed)
        clean_rng, naive_rng, eval_rng = spawn_rngs(settings.seed + 7, 3)
        evaluation = settings.evaluation()

        clean_condensed = make_condenser("gcond", settings.condensation(ratio)).condense(
            graph, clean_rng
        )
        clean_model = train_model_on_condensed(clean_condensed, graph, evaluation, eval_rng)
        clean_cta = evaluate_clean(clean_model, graph)

        naive = NaivePoison(NaivePoisonConfig(target_class=0, poison_fraction=0.6))
        naive_condensed, _ = naive.run(
            graph, make_condenser("gcond", settings.condensation(ratio)), naive_rng
        )
        naive_model = train_model_on_condensed(naive_condensed, graph, evaluation, eval_rng)
        naive_cta = evaluate_clean(naive_model, graph)

        bgc_row = run_bgc_cell(dataset, "gcond", ratio, settings, include_clean=False)
        rows.append(
            {
                "dataset": dataset,
                "Clean Model CTA": clean_cta,
                "Naive Poison CTA": naive_cta,
                "BGC CTA": bgc_row["CTA"],
            }
        )
    return rows


def test_fig1_naive_poison_vs_bgc(benchmark):
    rows = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    print_header("Figure 1: Clean Model vs Naive Poison vs BGC (CTA)")
    print_rows(rows)
    # Shape check: naive poisoning must hurt utility more than BGC does.
    for row in rows:
        assert row["Naive Poison CTA"] <= row["Clean Model CTA"]
        assert row["BGC CTA"] >= row["Naive Poison CTA"] - 0.05
    mean_naive = sum(row["Naive Poison CTA"] for row in rows) / len(rows)
    mean_bgc = sum(row["BGC CTA"] for row in rows) / len(rows)
    assert mean_bgc >= mean_naive
