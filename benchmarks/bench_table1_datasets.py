"""Table I — dataset statistics.

Regenerates the dataset-statistics table for the four synthetic stand-ins.
The numbers differ from the paper where the stand-ins are scaled down (the
``reference_nodes`` column records the original graph size).
"""

from __future__ import annotations

from repro.datasets import statistics_table
from repro.datasets.base import get_spec

from bench_common import print_header, print_rows


def build_table():
    rows = []
    for row in statistics_table(["cora", "citeseer", "flickr", "reddit"], seed=0):
        spec = get_spec(str(row["name"]))
        rows.append(
            {
                "dataset": row["name"],
                "nodes": int(row["nodes"]),
                "edges": int(row["edges"]),
                "classes": int(row["classes"]),
                "features": int(row["features"]),
                "train": int(row["train"]),
                "val": int(row["val"]),
                "test": int(row["test"]),
                "reference_nodes": spec.reference_nodes,
            }
        )
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_header("Table I: dataset statistics (synthetic stand-ins)")
    print_rows(rows)
    assert len(rows) == 4
