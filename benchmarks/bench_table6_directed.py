"""Table VI — ablation on the directed attack variant.

The directed variant poisons only nodes of one source class and targets only
that class at test time; the paper finds it matches the undirected attack's
ASR with a marginal CTA cost.
"""

from __future__ import annotations

import numpy as np

from repro.attack import BGC
from repro.condensation import make_condenser
from repro.datasets import load_dataset
from repro.evaluation.pipeline import evaluate_backdoor, evaluate_clean, train_model_on_condensed
from repro.utils.seed import spawn_rngs

from bench_common import DEFAULT_RATIOS, BenchSettings, print_header, print_rows, run_bgc_cell

DATASETS = ["cora", "citeseer"]
SOURCE_CLASS = 1


def run_table6():
    settings = BenchSettings()
    rows = []
    for dataset in DATASETS:
        ratio = DEFAULT_RATIOS[dataset]
        undirected = run_bgc_cell(dataset, "gcond", ratio, settings, include_clean=False)
        rows.append(
            {
                "dataset": dataset,
                "variant": "BGC",
                "CTA": undirected["CTA"],
                "ASR": undirected["ASR"],
            }
        )

        graph = load_dataset(dataset, seed=settings.seed)
        attack_rng, eval_rng = spawn_rngs(settings.seed + 17, 2)
        attack = BGC(settings.attack(dataset, directed=True, source_class=SOURCE_CLASS))
        result = attack.run(
            graph, make_condenser("gcond", settings.condensation(ratio)), attack_rng
        )
        model = train_model_on_condensed(
            result.condensed, graph, settings.evaluation(), eval_rng
        )
        source_test = graph.split.test[graph.labels[graph.split.test] == SOURCE_CLASS]
        directed_asr = evaluate_backdoor(
            model, graph, result.generator, result.target_class, test_index=source_test
        )
        rows.append(
            {
                "dataset": dataset,
                "variant": "Directed",
                "CTA": evaluate_clean(model, graph),
                "ASR": directed_asr,
            }
        )
    return rows


def test_table6_directed_attack(benchmark):
    rows = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    print_header("Table VI: directed attack ablation (GCond)")
    print_rows(rows, columns=["dataset", "variant", "CTA", "ASR"])
    for row in rows:
        assert np.isfinite(row["CTA"]) and np.isfinite(row["ASR"])
        assert row["ASR"] > 0.5
