"""Table VII — effect of the poisoning ratio / poison number on CTA and ASR."""

from __future__ import annotations

from bench_common import (
    DEFAULT_RATIOS,
    FULL_MODE,
    BenchSettings,
    print_header,
    print_rows,
    run_bgc_cell,
)

SWEEP = {
    "cora": [("poison_ratio", 0.10), ("poison_ratio", 0.15), ("poison_ratio", 0.20)],
    "citeseer": [("poison_ratio", 0.10), ("poison_ratio", 0.15), ("poison_ratio", 0.20)],
    "flickr": [("poison_number", 20), ("poison_number", 40), ("poison_number", 60)],
    "reddit": [("poison_number", 40), ("poison_number", 60), ("poison_number", 80)],
}

CONDENSERS = ["dc-graph", "gcond"]


def run_table7():
    settings = BenchSettings()
    datasets = list(SWEEP) if FULL_MODE else ["cora", "citeseer"]
    rows = []
    for dataset in datasets:
        ratio = DEFAULT_RATIOS[dataset]
        for key, value in SWEEP[dataset]:
            for condenser in CONDENSERS:
                cell = run_bgc_cell(
                    dataset,
                    condenser,
                    ratio,
                    settings,
                    attack_overrides={key: value},
                    include_clean=False,
                )
                rows.append(
                    {
                        "dataset": dataset,
                        "poison": f"{key}={value}",
                        "condenser": condenser,
                        "CTA": cell["CTA"],
                        "ASR": cell["ASR"],
                    }
                )
    return rows


def test_table7_poison_ratio_sweep(benchmark):
    rows = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    print_header("Table VII: poisoning budget sweep")
    print_rows(rows, columns=["dataset", "poison", "condenser", "CTA", "ASR"])
    # Shape check: the attack succeeds across the whole budget range.
    for row in rows:
        assert row["ASR"] > 0.7, f"ASR collapsed at {row['poison']} on {row['dataset']}"
