"""End-to-end tests for run_experiment / run_sweep on the tiny dataset."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import ExperimentSpec, RunRecord, SweepSpec, run_experiment, run_sweep
from repro.exceptions import ConfigurationError

#: Numeric RunRecord fields compared for bit-identity.
METRIC_FIELDS = (
    "clean_cta",
    "clean_asr",
    "attack_cta",
    "attack_asr",
    "defense_cta",
    "defense_asr",
    "defense_cta_delta",
    "defense_asr_delta",
)


def tiny_attack_spec(**extra) -> ExperimentSpec:
    payload = {
        "dataset": "tiny",
        "condenser": {"name": "gcond", "overrides": {"epochs": 2, "ratio": 0.2}},
        "attack": {"name": "bgc", "overrides": {"epochs": 2, "poison_ratio": 0.2}},
        "trigger": {"overrides": {"trigger_size": 2}},
        "evaluation": {"overrides": {"epochs": 10}},
        "seed": 3,
    }
    payload.update(extra)
    return ExperimentSpec.from_dict(payload)


def smoke_sweep(seed: int = 7) -> SweepSpec:
    """The acceptance grid: gcond/gc-sntk × bgc/naive × prune on tiny."""
    return SweepSpec.from_dict(
        {
            "name": "smoke",
            "seed": seed,
            "base": {
                "dataset": "tiny",
                "condenser": {"overrides": {"epochs": 2, "ratio": 0.2}},
                "trigger": {"overrides": {"trigger_size": 2}},
                "evaluation": {"overrides": {"epochs": 10}},
            },
            "axes": {
                "condenser": ["gcond", "gc-sntk"],
                "attack": [
                    {"name": "bgc", "overrides": {"epochs": 2, "poison_ratio": 0.2}},
                    {"name": "naive", "overrides": {"poison_fraction": 0.4}},
                ],
                "defense": ["prune"],
            },
        }
    )


def records_equal(a: RunRecord, b: RunRecord) -> bool:
    for name in METRIC_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if math.isnan(va) and math.isnan(vb):
            continue
        if va != vb:  # exact — bit identity, not approx
            return False
    return a.poisoned_nodes == b.poisoned_nodes and a.condensed_nodes == b.condensed_nodes


class TestRunExperiment:
    def test_clean_only_record(self):
        spec = tiny_attack_spec(attack=None, trigger=None)
        record = run_experiment(spec)
        assert 0.0 <= record.clean_cta <= 1.0
        assert math.isnan(record.clean_asr)
        assert math.isnan(record.attack_cta)
        assert record.condensed_nodes > 0
        assert record.spec == spec
        assert "condense" in record.timings

    def test_attack_record_has_all_metrics(self):
        record = run_experiment(tiny_attack_spec())
        for name in ("clean_cta", "clean_asr", "attack_cta", "attack_asr"):
            assert 0.0 <= getattr(record, name) <= 1.0
        assert record.poisoned_nodes > 0
        assert "attack" in record.timings

    def test_defense_deltas_reference_attacked_numbers(self):
        record = run_experiment(tiny_attack_spec(defense="prune"))
        assert record.defense_cta_delta == pytest.approx(
            record.defense_cta - record.attack_cta
        )
        assert record.defense_asr_delta == pytest.approx(
            record.defense_asr - record.attack_asr
        )

    def test_model_level_defense_wraps_victim(self):
        record = run_experiment(
            tiny_attack_spec(defense={"name": "randsmooth", "overrides": {"num_samples": 3}})
        )
        assert 0.0 <= record.defense_cta <= 1.0
        assert 0.0 <= record.defense_asr <= 1.0

    def test_detection_defense_retrains_on_sanitised_graph(self):
        record = run_experiment(tiny_attack_spec(defense="feature-outlier"))
        assert 0.0 <= record.defense_cta <= 1.0

    def test_same_seed_is_bit_identical(self):
        first = run_experiment(tiny_attack_spec())
        second = run_experiment(tiny_attack_spec())
        assert records_equal(first, second)

    def test_different_seed_changes_results(self):
        first = run_experiment(tiny_attack_spec())
        second = run_experiment(tiny_attack_spec(seed=4))
        assert not records_equal(first, second)

    def test_record_round_trips_through_dict(self):
        record = run_experiment(tiny_attack_spec())
        recovered = RunRecord.from_dict(record.to_dict())
        assert recovered.spec == record.spec
        assert records_equal(recovered, record)

    def test_unset_metrics_serialise_as_strict_json(self):
        """NaN metrics become null so results.jsonl parses under strict JSON."""
        import json

        record = run_experiment(tiny_attack_spec(attack=None, trigger=None))
        payload = record.to_dict()
        assert payload["attack_cta"] is None
        text = json.dumps(payload)
        assert "NaN" not in text
        recovered = RunRecord.from_dict(json.loads(text))
        assert math.isnan(recovered.attack_cta)
        assert records_equal(recovered, record)

    def test_naive_attacked_gc_sntk_keeps_krr_model_family(self):
        """'gc-sntk+naive-poison' graphs must evaluate with the KRR predictor,
        so attacked and clean metrics of one cell compare the same family."""
        from repro.condensation.gc_sntk import SNTKPredictor
        from repro.datasets import load_dataset
        from repro.evaluation.pipeline import EvaluationConfig, train_model_on_condensed
        from repro.registry import CONDENSERS
        from repro.utils.seed import new_rng

        graph = load_dataset("tiny", seed=0)
        condensed = CONDENSERS.build("gc-sntk", epochs=1, ratio=0.2).condense(
            graph, new_rng(0)
        )
        condensed.method = "gc-sntk+naive-poison"
        model = train_model_on_condensed(condensed, graph, EvaluationConfig(), new_rng(1))
        assert isinstance(model, SNTKPredictor)

    def test_dataset_overrides_validated_even_with_shared_graph(self):
        from repro.datasets import load_dataset

        graph = load_dataset("tiny", seed=0)
        spec = tiny_attack_spec(dataset={"name": "tiny", "overrides": {"nodes": 10}})
        with pytest.raises(ConfigurationError, match="only 'seed'"):
            run_experiment(spec, graph=graph)

    def test_mismatched_shared_graph_rejected(self):
        from repro.datasets import load_dataset

        graph = load_dataset("cora", seed=0)
        with pytest.raises(ConfigurationError, match="does not match"):
            run_experiment(tiny_attack_spec(), graph=graph)

    def test_unknown_model_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            run_experiment(tiny_attack_spec(model="resnet"))

    def test_override_typos_rejected_before_any_work(self):
        for broken in (
            {"defense": {"name": "prune", "overrides": {"prune_frac": 0.5}}},
            {"condenser": {"name": "gcond", "overrides": {"epoch": 2}}},
            {"attack": {"name": "bgc", "overrides": {"poison_rate": 0.1}}},
        ):
            with pytest.raises(ConfigurationError):
                run_experiment(tiny_attack_spec(**broken))

    def test_dataset_overrides_other_than_seed_rejected(self):
        spec = tiny_attack_spec(dataset={"name": "tiny", "overrides": {"nodes": 10}})
        with pytest.raises(ConfigurationError, match="only 'seed'"):
            run_experiment(spec)


class TestRunSweep:
    def test_grid_produces_one_record_per_cell(self):
        records = run_sweep(smoke_sweep())
        assert len(records) == 4
        assert [record.cell_index for record in records] == [0, 1, 2, 3]
        seen = {
            (record.spec.condenser.name, record.spec.attack.name) for record in records
        }
        assert seen == {
            ("gcond", "bgc"),
            ("gcond", "naive"),
            ("gc-sntk", "bgc"),
            ("gc-sntk", "naive"),
        }
        for record in records:
            assert record.spec.defense.name == "prune"
            assert 0.0 <= record.attack_asr <= 1.0
            assert 0.0 <= record.defense_asr <= 1.0

    def test_shuffled_execution_is_bit_identical(self):
        """Per-cell seeds are canonical-grid-indexed, so order cannot matter."""
        grid = run_sweep(smoke_sweep())
        rng = np.random.default_rng(0)
        order = list(rng.permutation(4))
        shuffled = run_sweep(smoke_sweep(), order=[int(i) for i in order])
        for a, b in zip(grid, shuffled):
            assert records_equal(a, b), f"cell {a.cell_index} differs under shuffling"

    def test_on_record_streams_in_execution_order(self):
        seen = []
        run_sweep(smoke_sweep(), order=[3, 1, 0, 2], on_record=lambda r: seen.append(r.cell_index))
        assert seen == [3, 1, 0, 2]

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError, match="permutation"):
            run_sweep(smoke_sweep(), order=[0, 0, 1, 2])

    def test_sweep_accepts_raw_payload(self):
        records = run_sweep(
            {
                "base": {
                    "dataset": "tiny",
                    "condenser": {"name": "gcond-x", "overrides": {"epochs": 2, "ratio": 0.2}},
                    "evaluation": {"overrides": {"epochs": 5}},
                },
                "axes": {},
            }
        )
        assert len(records) == 1
        assert math.isnan(records[0].attack_cta)


class TestFailureRecords:
    """Round-trips and aggregates for cells that *failed* (satellite of PR 8)."""

    def failed_record(self) -> RunRecord:
        return RunRecord.from_failure(
            tiny_attack_spec(),
            2,
            {
                "type": "RuntimeError",
                "message": "deliberate failure",
                "traceback": 'Traceback (most recent call last):\n  File "cell.py", '
                "line 1, in <module>\nRuntimeError: deliberate failure\n",
            },
            elapsed=1.25,
        )

    def test_failed_record_round_trips_through_dict(self):
        record = self.failed_record()
        recovered = RunRecord.from_dict(record.to_dict())
        assert not recovered.ok
        assert recovered.status == "failed"
        assert recovered.cell_index == 2
        assert recovered.spec == record.spec
        assert recovered.error["type"] == "RuntimeError"
        assert recovered.error["message"] == "deliberate failure"
        assert "RuntimeError: deliberate failure" in recovered.error["traceback"]
        assert recovered.timings == {"cell": 1.25}
        for name in METRIC_FIELDS:
            assert math.isnan(getattr(recovered, name))

    def test_failed_record_survives_strict_json(self):
        """A failed record's jsonl line parses and restores exactly."""
        import json

        record = self.failed_record()
        line = json.dumps(record.to_dict())
        assert "NaN" not in line
        recovered = RunRecord.from_dict(json.loads(line))
        assert recovered.error == record.error
        assert recovered.condensed_hash is None

    def test_merge_cache_stats_of_nothing_is_zeroed(self):
        """The empty merge: every counter 0, contributors 0 — not a KeyError."""
        from repro.api.runner import CACHE_COUNTER_KEYS, merge_cache_stats

        merged = merge_cache_stats([])
        assert merged["contributors"] == 0
        for key in CACHE_COUNTER_KEYS:
            assert merged[key] == 0

    def test_all_cells_failing_still_merges_cache_stats(self):
        """A sweep whose every cell fails (unknown condensers) still returns a
        SweepRecord with well-formed cache_stats — the empty-merge edge case
        exercised end to end through the process backend."""
        from repro.api.runner import CACHE_COUNTER_KEYS

        records = run_sweep(
            {
                "base": {"dataset": "tiny", "evaluation": {"overrides": {"epochs": 5}}},
                "axes": {"condenser": ["no-such-condenser", "also-missing"]},
                "execution": {"backend": "process", "workers": 2, "on_error": "record"},
            }
        )
        assert len(records) == 2
        assert len(records.failed) == 2
        for record in records:
            assert record.error["type"] == "ConfigurationError"
            assert "unknown condenser" in record.error["message"]
        for key in CACHE_COUNTER_KEYS:
            assert records.cache_stats[key] >= 0
        assert records.cache_stats["contributors"] >= 1
