"""Unit tests for the differentiable functional building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.exceptions import AutogradError
from repro.utils.seed import new_rng

from helpers import numerical_gradient


class TestSoftmaxFamily:
    def test_log_softmax_rows_sum_to_one_in_prob_space(self, rng):
        logits = Tensor(rng.normal(size=(5, 4)))
        probs = np.exp(F.log_softmax(logits).data)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-12)

    def test_log_softmax_is_shift_invariant(self, rng):
        x = rng.normal(size=(3, 4))
        a = F.log_softmax(Tensor(x)).data
        b = F.log_softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_log_softmax_handles_large_values(self):
        x = Tensor(np.array([[1e4, 0.0, -1e4]]))
        out = F.log_softmax(x).data
        assert np.all(np.isfinite(out))

    def test_log_softmax_gradient(self, rng):
        array = rng.normal(size=(4, 3))
        weights = rng.normal(size=(4, 3))

        def loss_fn(a):
            return (F.log_softmax(Tensor(a)) * weights).sum().item() if not isinstance(a, Tensor) else (F.log_softmax(a) * weights).sum()

        t = Tensor(array.copy(), requires_grad=True)
        loss_fn(t).backward()
        numeric = numerical_gradient(lambda a: loss_fn(a), array.copy())
        np.testing.assert_allclose(t.grad, numeric, rtol=1e-5, atol=1e-7)

    def test_softmax_matches_numpy(self, rng):
        x = rng.normal(size=(3, 5))
        expected = np.exp(x) / np.exp(x).sum(axis=1, keepdims=True)
        np.testing.assert_allclose(F.softmax(Tensor(x)).data, expected, rtol=1e-10)


class TestOneHot:
    def test_one_hot_values(self):
        encoding = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoding, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float))

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(AutogradError):
            F.one_hot(np.array([0, 3]), 3)

    def test_one_hot_rejects_2d(self):
        with pytest.raises(AutogradError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_one_hot_empty(self):
        assert F.one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_is_log_num_classes(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(5), rel=1e-9)

    def test_gradient_matches_probs_minus_targets(self, rng):
        array = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        t = Tensor(array.copy(), requires_grad=True)
        F.cross_entropy(t, labels).backward()
        probs = np.exp(array) / np.exp(array).sum(axis=1, keepdims=True)
        targets = F.one_hot(labels, 4)
        np.testing.assert_allclose(t.grad, (probs - targets) / 6.0, rtol=1e-8)

    def test_mismatched_labels_raise(self):
        with pytest.raises(AutogradError):
            F.cross_entropy(Tensor(np.zeros((3, 2))), np.array([0, 1]))

    def test_weighted_cross_entropy_prefers_weighted_examples(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        labels = np.array([1, 1])  # first example is wrong, second is right
        loss_uniform = F.cross_entropy(logits, labels)
        loss_weighted = F.cross_entropy(logits, labels, weights=np.array([0.0, 1.0]))
        assert loss_weighted.item() < loss_uniform.item()

    def test_negative_weight_sum_raises(self):
        with pytest.raises(AutogradError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 1]), weights=np.array([0.0, 0.0]))


class TestMSEAndNorm:
    def test_mse_zero_for_equal(self):
        pred = Tensor(np.ones((3, 2)))
        assert F.mse_loss(pred, np.ones((3, 2))).item() == 0.0

    def test_mse_value(self):
        pred = Tensor(np.zeros((2, 2)))
        assert F.mse_loss(pred, np.ones((2, 2))).item() == pytest.approx(1.0)

    def test_l2_norm_squared(self):
        x = Tensor(np.array([[3.0, 4.0]]))
        assert F.l2_norm_squared(x).item() == pytest.approx(25.0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_rate_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.0, rng, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_mode_zeroes_roughly_rate_fraction(self):
        generator = new_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, generator, training=True)
        zero_fraction = float(np.mean(out.data == 0.0))
        assert 0.45 < zero_fraction < 0.55

    def test_scaling_preserves_expectation(self):
        generator = new_rng(1)
        x = Tensor(np.ones((300, 300)))
        out = F.dropout(x, 0.3, generator, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(AutogradError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)


class TestStraightThrough:
    def test_forward_binarizes(self):
        x = Tensor(np.array([[0.2, 0.8], [0.51, 0.49]]), requires_grad=True)
        out = F.straight_through_binarize(x)
        np.testing.assert_allclose(out.data, [[0.0, 1.0], [1.0, 0.0]])

    def test_backward_is_identity(self):
        x = Tensor(np.array([[0.2, 0.8]]), requires_grad=True)
        F.straight_through_binarize(x).sum().backward()
        np.testing.assert_allclose(x.grad, [[1.0, 1.0]])

    def test_custom_threshold(self):
        x = Tensor(np.array([0.3, 0.6]))
        out = F.straight_through_binarize(x, threshold=0.25)
        np.testing.assert_allclose(out.data, [1.0, 1.0])


class TestSpmm:
    def test_spmm_alias(self, rng):
        import scipy.sparse as sp

        matrix = sp.eye(4, format="csr")
        x = Tensor(rng.normal(size=(4, 2)))
        np.testing.assert_allclose(F.spmm(matrix, x).data, x.data)
