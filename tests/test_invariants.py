"""Cross-module invariants: things that must hold regardless of configuration.

These tests guard the contracts the attack and condensation code rely on:
inputs are never mutated, budgets are respected, and provenance metadata is
carried through the pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import BGC, BGCConfig, TriggerConfig
from repro.attack.selection import SelectionConfig
from repro.condensation import CondensationConfig, make_condenser
from repro.utils.seed import new_rng


def tiny_attack_config(**overrides) -> BGCConfig:
    defaults = dict(
        poison_ratio=0.3,
        epochs=2,
        surrogate_steps=5,
        generator_steps=1,
        update_batch_size=4,
        trigger=TriggerConfig(trigger_size=2, hidden=8),
        selection=SelectionConfig(num_clusters=2, selector_epochs=10),
    )
    defaults.update(overrides)
    return BGCConfig(**defaults)


class TestInputImmutability:
    """Attacks and condensers must never mutate the caller's graph."""

    def _snapshot(self, graph):
        return (
            graph.adjacency.copy(),
            graph.features.copy(),
            graph.labels.copy(),
            graph.split.train.copy(),
        )

    def _assert_unchanged(self, graph, snapshot):
        adjacency, features, labels, train = snapshot
        assert (graph.adjacency != adjacency).nnz == 0
        np.testing.assert_allclose(graph.features, features)
        np.testing.assert_array_equal(graph.labels, labels)
        np.testing.assert_array_equal(graph.split.train, train)

    @pytest.mark.parametrize("condenser_name", ["dc-graph", "gcond", "gcond-x", "gc-sntk"])
    def test_condense_does_not_mutate_graph(self, small_graph, condenser_name):
        snapshot = self._snapshot(small_graph)
        condenser = make_condenser(condenser_name, CondensationConfig(epochs=2, ratio=0.3))
        condenser.condense(small_graph, new_rng(0))
        self._assert_unchanged(small_graph, snapshot)

    def test_bgc_does_not_mutate_graph(self, small_graph):
        snapshot = self._snapshot(small_graph)
        attack = BGC(tiny_attack_config())
        attack.run(small_graph, make_condenser("gcond-x", CondensationConfig(epochs=2, ratio=0.3)), new_rng(0))
        self._assert_unchanged(small_graph, snapshot)


class TestBudgetsAndProvenance:
    def test_condensed_node_budget_scales_with_ratio(self, small_graph):
        sizes = []
        for ratio in (0.2, 0.4, 0.8):
            condenser = make_condenser("dc-graph", CondensationConfig(epochs=1, ratio=ratio))
            condensed = condenser.condense(small_graph, new_rng(0))
            sizes.append(condensed.num_nodes)
        assert sizes == sorted(sizes)
        assert sizes[-1] <= small_graph.num_nodes

    def test_condensed_graph_records_provenance(self, small_graph):
        condenser = make_condenser("gcond", CondensationConfig(epochs=1, ratio=0.3))
        condensed = condenser.condense(small_graph, new_rng(0))
        assert condensed.source == small_graph.name
        assert condensed.ratio == pytest.approx(0.3)
        assert condensed.method == "gcond"

    def test_bgc_poison_budget_never_exceeded(self, small_graph):
        for ratio in (0.1, 0.25, 0.5):
            attack = BGC(tiny_attack_config(poison_ratio=ratio))
            result = attack.run(
                small_graph,
                make_condenser("gcond-x", CondensationConfig(epochs=2, ratio=0.3)),
                new_rng(0),
            )
            budget = max(1, int(round(ratio * small_graph.split.train.size)))
            assert result.poisoned_nodes.size <= budget

    def test_bgc_history_length_matches_epochs(self, small_graph):
        attack = BGC(tiny_attack_config(epochs=3))
        result = attack.run(
            small_graph,
            make_condenser("gcond-x", CondensationConfig(epochs=3, ratio=0.3)),
            new_rng(0),
        )
        assert len(result.history) == 3
        assert all(np.isfinite(entry["condensation_loss"]) for entry in result.history)


class TestDeterminism:
    def test_clean_condensation_is_deterministic_given_seed(self, small_graph):
        first = make_condenser("gcond-x", CondensationConfig(epochs=2, ratio=0.3)).condense(
            small_graph, new_rng(7)
        )
        second = make_condenser("gcond-x", CondensationConfig(epochs=2, ratio=0.3)).condense(
            small_graph, new_rng(7)
        )
        np.testing.assert_allclose(first.features, second.features)
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_bgc_is_deterministic_given_seed(self, small_graph):
        def run_once():
            attack = BGC(tiny_attack_config())
            return attack.run(
                small_graph,
                make_condenser("gcond-x", CondensationConfig(epochs=2, ratio=0.3)),
                new_rng(11),
            )

        first = run_once()
        second = run_once()
        np.testing.assert_array_equal(first.poisoned_nodes, second.poisoned_nodes)
        np.testing.assert_allclose(first.condensed.features, second.condensed.features)
