"""Shared test helpers (plain module, no fixtures).

Import from here (``from helpers import ...``), never ``from conftest import``:
both ``tests/`` and ``benchmarks/`` carry a ``conftest.py``, so the bare name
``conftest`` resolves to whichever directory pytest put on ``sys.path`` first
and silently shadows the other.
"""

from __future__ import annotations

import numpy as np

from repro.graph.data import GraphData
from repro.graph.generators import class_correlated_features, stochastic_block_model
from repro.graph.splits import make_planetoid_split
from repro.utils.seed import new_rng


def build_small_graph(
    seed: int = 7,
    nodes_per_class: int = 30,
    num_classes: int = 3,
    num_features: int = 24,
    train_per_class: int = 6,
) -> GraphData:
    """Construct a small, well-separated SBM graph used across the test suite."""
    generator = new_rng(seed)
    block_sizes = [nodes_per_class] * num_classes
    adjacency = stochastic_block_model(block_sizes, p_in=0.25, p_out=0.01, rng=generator)
    labels = np.repeat(np.arange(num_classes), nodes_per_class)
    features = class_correlated_features(
        labels,
        num_features=num_features,
        signal_words_per_class=4,
        signal_strength=0.6,
        density=0.05,
        rng=generator,
    )
    split = make_planetoid_split(
        labels, train_per_class=train_per_class, num_val=20, num_test=40, rng=generator
    )
    return GraphData(
        adjacency=adjacency,
        features=features,
        labels=labels,
        split=split,
        name="small-sbm",
    )


def numerical_gradient(function, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``array``."""
    gradient = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(array)
        flat[index] = original - epsilon
        lower = function(array)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return gradient
