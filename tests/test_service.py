"""The service subsystem: worker pool, job queue, content-addressed store.

The contract under test (see :mod:`repro.service`):

* the **pool** backend is bit-identical to serial execution for any worker
  count — long-lived workers, reuse order, recycling and respawns never
  reach a result;
* the pool survives arbitrary cell behaviour: a raising cell becomes a
  structured failed record, an over-deadline cell a ``CellTimeout``, a
  dying worker a ``WorkerCrash`` — and in every case the slot is respawned
  and the remaining cells complete;
* the **store** memoises completed cells by ``ExperimentSpec.cache_key()``:
  hits are served verbatim (only ``cell_index`` rewritten), failed records
  are refused, and the append-only ``store.jsonl`` survives replay, key
  rewrites and torn final lines;
* the **service** bounds its queue (``JobQueueFull``), isolates jobs from
  each other's failures, preserves a bare spec's seed, and answers a
  resubmitted sweep from the store without touching a worker.

Like ``tests/test_api_parallel.py``, fault-injection tests register
throwaway condensers at runtime and therefore need the ``fork`` start
method to reach worker processes.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import (
    ExecutionSpec,
    ExperimentSpec,
    RunRecord,
    SweepSpec,
    run_experiment,
    run_sweep,
)
from repro.api.parallel import preferred_start_method
from repro.exceptions import (
    ConfigurationError,
    JobCancelled,
    JobQueueFull,
    SweepExecutionError,
)
from repro.kernels import kernel_backend_name
from repro.registry import CONDENSERS
from repro.service import (
    CondensationService,
    JobStatus,
    ResultStore,
    WorkerPool,
)
from repro.service.server import request, wait_for_server

REPO_ROOT = Path(__file__).resolve().parent.parent

needs_fork = pytest.mark.skipif(
    preferred_start_method() != "fork",
    reason="in-test registered components reach workers only under fork",
)

#: Fields compared for bit-identity (hashes pin the full condensed arrays).
IDENTITY_FIELDS = (
    "clean_cta",
    "clean_asr",
    "attack_cta",
    "attack_asr",
    "defense_cta",
    "defense_asr",
    "defense_cta_delta",
    "defense_asr_delta",
    "poisoned_nodes",
    "condensed_nodes",
    "condensed_hash",
    "attack_condensed_hash",
    "status",
)


def assert_records_identical(a: RunRecord, b: RunRecord) -> None:
    """Exact equality of every identity field (NaN matches NaN)."""
    assert a.spec == b.spec, f"cell {a.cell_index}: specs differ"
    for name in IDENTITY_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if isinstance(va, float) and isinstance(vb, float):
            if math.isnan(va) and math.isnan(vb):
                continue
        assert va == vb, f"cell {a.cell_index}: {name} {va!r} != {vb!r}"


def smoke_sweep(seed: int = 7) -> SweepSpec:
    """The 2×2×1 acceptance grid: gcond/gc-sntk × bgc/naive × prune on tiny."""
    return SweepSpec.from_dict(
        {
            "name": "service-smoke",
            "seed": seed,
            "base": {
                "dataset": "tiny",
                "condenser": {"overrides": {"epochs": 2, "ratio": 0.2}},
                "trigger": {"overrides": {"trigger_size": 2}},
                "evaluation": {"overrides": {"epochs": 10}},
            },
            "axes": {
                "condenser": ["gcond", "gc-sntk"],
                "attack": [
                    {"name": "bgc", "overrides": {"epochs": 2, "poison_ratio": 0.2}},
                    {"name": "naive", "overrides": {"poison_fraction": 0.4}},
                ],
                "defense": ["prune"],
            },
        }
    )


def fault_sweep(condensers) -> SweepSpec:
    """A tiny attack-free grid sweeping the given condenser names."""
    return SweepSpec.from_dict(
        {
            "name": "service-fault-grid",
            "seed": 3,
            "base": {
                "dataset": "tiny",
                "condenser": {"overrides": {"epochs": 2, "ratio": 0.2}},
                "evaluation": {"overrides": {"epochs": 5}},
            },
            "axes": {"condenser": list(condensers)},
        }
    )


def cheap_spec(seed: int = 0) -> ExperimentSpec:
    """The cheapest meaningful cell: attack-free gcond-x on tiny."""
    return ExperimentSpec.from_dict(
        {
            "dataset": "tiny",
            "condenser": {"name": "gcond-x", "overrides": {"epochs": 1, "ratio": 0.2}},
            "evaluation": {"overrides": {"epochs": 2}},
            "seed": seed,
        }
    )


@pytest.fixture(scope="module")
def serial_baseline():
    """One serial run of the smoke grid, shared across the identity tests."""
    return run_sweep(smoke_sweep())


@pytest.fixture(scope="module")
def ok_record():
    """One completed RunRecord to feed the store tests."""
    return run_experiment(cheap_spec(), cell_index=3)


@pytest.fixture
def crashing_condenser():
    """A condenser that always raises (registered for this test only)."""

    class _Crashing:
        def condense(self, graph, rng):
            raise RuntimeError("deliberate service crash-test failure")

    CONDENSERS.register("svc-crash-test", factory=lambda **kwargs: _Crashing())
    yield "svc-crash-test"
    CONDENSERS.unregister("svc-crash-test")


@pytest.fixture
def sleeping_condenser():
    """A condenser that hangs far past any test timeout."""

    class _Sleeping:
        def condense(self, graph, rng):
            time.sleep(60.0)

    CONDENSERS.register("svc-sleep-test", factory=lambda **kwargs: _Sleeping())
    yield "svc-sleep-test"
    CONDENSERS.unregister("svc-sleep-test")


@pytest.fixture
def napping_condenser():
    """A condenser slow enough to hold a worker while the test intervenes."""

    class _Napping:
        def condense(self, graph, rng):
            time.sleep(2.0)
            raise RuntimeError("nap over")

    CONDENSERS.register("svc-nap-test", factory=lambda **kwargs: _Napping())
    yield "svc-nap-test"
    CONDENSERS.unregister("svc-nap-test")


@pytest.fixture
def dying_condenser():
    """A condenser that kills its worker process outright (no exception)."""

    class _Dying:
        def condense(self, graph, rng):
            os._exit(3)

    CONDENSERS.register("svc-die-test", factory=lambda **kwargs: _Dying())
    yield "svc-die-test"
    CONDENSERS.unregister("svc-die-test")


# ------------------------------------------------------------------ #
# ResultStore
# ------------------------------------------------------------------ #
class TestResultStore:
    def test_miss_then_hit_round_trip(self, ok_record, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        store = ResultStore()  # in-memory: no root argument, no env root
        assert store.root is None
        assert store.get(ok_record.spec) is None
        assert store.stats()["misses"] == 1
        assert store.put(ok_record)
        recovered = store.get(ok_record.spec)
        assert_records_identical(recovered, ok_record)
        assert store.stats() == {"entries": 1, "hits": 1, "misses": 1, "puts": 1}
        assert ok_record.spec in store
        assert ok_record.spec.cache_key() in store

    def test_hit_rewrites_only_the_cell_index(self, tmp_path, ok_record):
        store = ResultStore(tmp_path / "store")
        store.put(ok_record)
        recovered = store.get(ok_record.spec, cell_index=7)
        assert recovered.cell_index == 7
        assert recovered.timings == ok_record.timings  # everything else verbatim
        assert_records_identical(recovered, ok_record)

    def test_failed_records_are_refused(self, tmp_path, ok_record):
        failed = RunRecord.from_failure(
            ok_record.spec,
            0,
            {"type": "RuntimeError", "message": "boom", "traceback": ""},
            0.1,
        )
        store = ResultStore(tmp_path / "store")
        assert store.put(failed) is False
        assert len(store) == 0
        assert store.get(failed.spec) is None  # the failure was not memoised

    def test_persistence_across_reopen(self, tmp_path, ok_record):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            store.put(ok_record)
        reopened = ResultStore(root)
        assert len(reopened) == 1
        recovered = reopened.get(ok_record.spec, cell_index=0)
        assert_records_identical(recovered, ok_record)
        assert reopened.stats()["puts"] == 0  # replayed, not re-put

    def test_replay_later_lines_win(self, tmp_path, ok_record):
        root = tmp_path / "store"
        root.mkdir()
        key = ok_record.spec.cache_key()
        stale = dict(ok_record.to_dict(), condensed_nodes=-1)
        fresh = ok_record.to_dict()
        with open(root / "store.jsonl", "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": key, "record": stale}) + "\n")
            handle.write(json.dumps({"key": key, "record": fresh}) + "\n")
        store = ResultStore(root)
        assert len(store) == 1
        assert store.get(ok_record.spec).condensed_nodes == ok_record.condensed_nodes

    def test_replay_skips_torn_final_line(self, tmp_path, ok_record):
        root = tmp_path / "store"
        root.mkdir()
        line = json.dumps(
            {"key": ok_record.spec.cache_key(), "record": ok_record.to_dict()}
        )
        with open(root / "store.jsonl", "w", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.write(line[: len(line) // 2])  # crash mid-append
        store = ResultStore(root)
        assert len(store) == 1  # the intact line survived the torn one
        assert store.get(ok_record.spec) is not None

    def test_cache_key_is_seed_sensitive(self):
        assert cheap_spec(seed=0).cache_key() != cheap_spec(seed=1).cache_key()
        assert cheap_spec(seed=0).cache_key() == cheap_spec(seed=0).cache_key()


# ------------------------------------------------------------------ #
# WorkerPool and the "pool" execution backend
# ------------------------------------------------------------------ #
class TestPoolBitIdentity:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_count_never_changes_results(self, workers, serial_baseline):
        records = run_sweep(
            smoke_sweep(),
            execution=ExecutionSpec(backend="pool", workers=workers),
        )
        assert len(records) == len(serial_baseline)
        for a, b in zip(serial_baseline, records):
            assert_records_identical(a, b)

    def test_threaded_kernel_under_pool_matches_serial_numpy(self, serial_baseline):
        """Regression: pool workers apply the sweep's kernel backend.

        Records must be bit-identical to the serial numpy baseline — the
        threaded backend's chunked kernels preserve per-row accumulation
        order, and the worker-side ``set_kernel_backend`` pin must not leak
        into later dispatches once the sweep ends.
        """
        records = run_sweep(
            smoke_sweep(),
            execution=ExecutionSpec(
                backend="pool", workers=2, kernel_backend="threaded"
            ),
        )
        assert len(records) == len(serial_baseline)
        for a, b in zip(serial_baseline, records):
            assert_records_identical(a, b)
        assert kernel_backend_name() == "numpy"

    def test_pool_workers_resolve_kernel_environment(
        self, monkeypatch, serial_baseline
    ):
        """Workers see the parent's ``REPRO_KERNEL_BACKEND`` resolution even
        when the sweep's ``ExecutionSpec`` leaves ``kernel_backend`` unset."""
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
        records = run_sweep(
            smoke_sweep(), execution=ExecutionSpec(backend="pool", workers=2)
        )
        assert len(records) == len(serial_baseline)
        for a, b in zip(serial_baseline, records):
            assert_records_identical(a, b)

    def test_pool_backend_reports_merged_cache_stats(self):
        records = run_sweep(
            smoke_sweep(), execution=ExecutionSpec(backend="pool", workers=2)
        )
        stats = records.cache_stats
        assert stats["contributors"] == 5  # 4 cells + the parent's handoff delta
        assert stats["hits"] > 0

    def test_no_pool_processes_leak(self):
        import multiprocessing

        run_sweep(smoke_sweep(), execution=ExecutionSpec(backend="pool", workers=4))
        leaked = [
            child
            for child in multiprocessing.active_children()
            if child.name.startswith("repro-pool-")
        ]
        assert not leaked


class TestWorkerPool:
    def run_cells(self, pool: WorkerPool, specs) -> list:
        """Submit every spec and wait for all callbacks."""
        records = [None] * len(specs)
        remaining = threading.Event()
        state = {"left": len(specs)}
        lock = threading.Lock()

        def make_on_done(index):
            def on_done(record):
                with lock:
                    records[index] = record
                    state["left"] -= 1
                    if state["left"] == 0:
                        remaining.set()

            return on_done

        for index, spec in enumerate(specs):
            pool.submit(spec, index, on_done=make_on_done(index))
        assert remaining.wait(timeout=120.0), "pool cells did not complete"
        return records

    def test_workers_are_reused_across_cells(self):
        specs = [cheap_spec(seed=seed) for seed in range(6)]
        with WorkerPool(2) as pool:
            records = self.run_cells(pool, specs)
            assert all(record.ok for record in records)
            # Six cells, two launches: long-lived workers, no per-cell fork.
            assert pool.counters["launched"] == 2
            assert pool.counters["completed"] == 6
            assert pool.counters["recycled"] == 0

    def test_recycling_replaces_workers_without_changing_results(self):
        specs = [cheap_spec(seed=seed) for seed in range(4)]
        with WorkerPool(1, recycle_after=1) as pool:
            records = self.run_cells(pool, specs)
            assert all(record.ok for record in records)
            assert pool.counters["recycled"] >= 3  # every cell retired its worker
            assert pool.counters["launched"] >= 4
        baseline = [run_experiment(spec, cell_index=i) for i, spec in enumerate(specs)]
        for a, b in zip(baseline, records):
            assert_records_identical(a, b)

    def test_submit_before_start_rejected(self):
        pool = WorkerPool(1)
        with pytest.raises(RuntimeError, match="before start"):
            pool.submit(cheap_spec(), 0, on_done=lambda record: None)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(0)
        with pytest.raises(ValueError, match="recycle_after"):
            WorkerPool(1, recycle_after=0)

    @needs_fork
    def test_cancel_drops_pending_not_inflight(self, napping_condenser):
        nap_spec = ExperimentSpec.from_dict(
            dict(cheap_spec().to_dict(), condenser={"name": napping_condenser})
        )
        fired = []
        with WorkerPool(1) as pool:
            pool.submit(nap_spec, 0, on_done=lambda r: fired.append(("nap", r)), tag="nap")
            time.sleep(0.5)  # let the scheduler hand the nap to the worker
            for index in range(3):
                pool.submit(
                    cheap_spec(seed=index),
                    index + 1,
                    on_done=lambda r: fired.append(("cancelled", r)),
                    tag="batch",
                )
            dropped = pool.cancel(lambda tag: tag == "batch")
            assert dropped == 3
            assert pool.pending_count() == 0
            # The in-flight nap still reports (as a failed record — the nap
            # condenser raises after its sleep); the cancelled ones never do.
            deadline = time.monotonic() + 30.0
            while not fired and time.monotonic() < deadline:
                time.sleep(0.05)
        assert [kind for kind, _ in fired] == ["nap"]


class TestPoolFaultIsolation:
    @needs_fork
    def test_crashing_cell_is_recorded_and_isolated(self, crashing_condenser):
        records = run_sweep(
            fault_sweep(["gcond", crashing_condenser]),
            execution=ExecutionSpec(backend="pool", workers=2, on_error="record"),
        )
        assert records[0].ok
        assert records[1].status == "failed"
        assert records[1].error["type"] == "RuntimeError"
        assert "deliberate service crash-test" in records[1].error["message"]
        assert records.failed == [records[1]]

    @needs_fork
    def test_raise_mode_aborts_with_the_failed_record(self, crashing_condenser):
        with pytest.raises(SweepExecutionError, match="deliberate service") as info:
            run_sweep(
                fault_sweep([crashing_condenser, "gcond"]),
                execution=ExecutionSpec(backend="pool", workers=2, on_error="raise"),
            )
        assert info.value.record.error["type"] == "RuntimeError"

    @needs_fork
    def test_worker_death_respawns_and_records(self, dying_condenser):
        records = run_sweep(
            fault_sweep(["gcond", dying_condenser, "gcond-x"]),
            execution=ExecutionSpec(backend="pool", workers=2, on_error="record"),
        )
        assert records[0].ok and records[2].ok  # neighbours survived the crash
        assert records[1].error["type"] == "WorkerCrash"
        assert "exited with code 3" in records[1].error["message"]

    @needs_fork
    def test_timeout_terminates_and_records(self, sleeping_condenser):
        start = time.perf_counter()
        records = run_sweep(
            fault_sweep(["gcond", sleeping_condenser]),
            execution=ExecutionSpec(
                backend="pool", workers=2, timeout=1.0, on_error="record"
            ),
        )
        assert time.perf_counter() - start < 30.0, "timed-out cell was not terminated"
        assert records[0].ok
        assert records[1].error["type"] == "CellTimeout"
        assert records[1].timings["cell"] >= 1.0


# ------------------------------------------------------------------ #
# CondensationService
# ------------------------------------------------------------------ #
class TestCondensationService:
    def test_single_spec_preserves_its_seed(self, tmp_path):
        spec = cheap_spec(seed=11)
        with CondensationService(workers=1, store=ResultStore(tmp_path / "s")) as svc:
            record = svc.submit(spec).wait(timeout=120.0)[0]
        assert record.ok
        assert record.spec.seed == 11  # not re-derived by sweep expansion

    def test_resubmitted_sweep_is_served_from_the_store(
        self, tmp_path, serial_baseline
    ):
        with CondensationService(
            workers=2, store=ResultStore(tmp_path / "store")
        ) as svc:
            first = svc.submit(smoke_sweep())
            first_records = first.wait(timeout=300.0)
            second = svc.submit(smoke_sweep())
            second_records = second.wait(timeout=300.0)
            assert first.status is JobStatus.DONE
            assert first.summary()["store_hits"] == 0
            hits = second.summary()["store_hits"]
            assert hits >= math.ceil(0.95 * len(second_records))  # warm ≈ 100%
            launched = svc.stats()["pool"]["launched"]
        assert launched == 2  # both jobs shared the same two workers
        for a, b, c in zip(serial_baseline, first_records, second_records):
            assert_records_identical(a, b)
            assert_records_identical(a, c)

    def test_store_outlives_the_service(self, tmp_path):
        root = tmp_path / "store"
        sweep = fault_sweep(["gcond", "gcond-x"])
        with CondensationService(workers=1, store=ResultStore(root)) as svc:
            svc.submit(sweep).wait(timeout=300.0)
        # A fresh service on the same root answers everything from disk.
        with CondensationService(workers=1, store=ResultStore(root)) as svc:
            job = svc.submit(sweep)
            records = job.wait(timeout=300.0)
            assert job.summary()["store_hits"] == 2
            assert svc.stats()["pool"]["dispatched"] == 0  # no worker touched
        assert all(record.ok for record in records)

    def test_stream_yields_every_record(self, tmp_path):
        with CondensationService(workers=2, store=ResultStore(tmp_path / "s")) as svc:
            handle = svc.submit(fault_sweep(["gcond", "gcond-x"]))
            streamed = list(handle.stream(timeout=120.0))
        assert sorted(record.cell_index for record in streamed) == [0, 1]
        assert handle.status is JobStatus.DONE

    def test_queue_backpressure_raises_job_queue_full(self, tmp_path, monkeypatch):
        gate = threading.Event()
        original = CondensationService._launch

        def gated_launch(self, job):
            gate.wait(timeout=60.0)
            original(self, job)

        monkeypatch.setattr(CondensationService, "_launch", gated_launch)
        with CondensationService(
            workers=1, store=ResultStore(tmp_path / "s"), max_pending=1
        ) as svc:
            first = svc.submit(cheap_spec(seed=0))
            deadline = time.monotonic() + 10.0
            while svc._queue.qsize() > 0 and time.monotonic() < deadline:
                time.sleep(0.01)  # scheduler picked job 1 up and is gated
            second = svc.submit(cheap_spec(seed=1))  # fills the bounded queue
            with pytest.raises(JobQueueFull, match="full"):
                svc.submit(cheap_spec(seed=2))
            gate.set()
            assert first.wait(timeout=120.0)[0].ok
            assert second.wait(timeout=120.0)[0].ok

    def test_cancelled_queued_job_never_runs(self, tmp_path, monkeypatch):
        gate = threading.Event()
        original = CondensationService._launch

        def gated_launch(self, job):
            gate.wait(timeout=60.0)
            original(self, job)

        monkeypatch.setattr(CondensationService, "_launch", gated_launch)
        with CondensationService(workers=1, store=ResultStore(tmp_path / "s")) as svc:
            blocker = svc.submit(cheap_spec(seed=0))
            victim = svc.submit(cheap_spec(seed=1))
            assert victim.cancel() is True
            assert victim.status is JobStatus.CANCELLED
            gate.set()
            with pytest.raises(JobCancelled):
                victim.wait(timeout=30.0)
            assert blocker.wait(timeout=120.0)[0].ok
            assert victim.cancel() is False  # cancelling a terminal job: no-op
        # The cancelled job's cell was never computed, so it is not stored.
        assert svc.store.stats()["puts"] == 1

    @needs_fork
    def test_worker_crash_mid_job_completes_with_structured_failures(
        self, tmp_path, dying_condenser
    ):
        root = tmp_path / "store"
        sweep = fault_sweep(["gcond", dying_condenser])
        with CondensationService(workers=2, store=ResultStore(root)) as svc:
            job = svc.submit(sweep)
            records = job.wait(timeout=300.0)
            assert job.status is JobStatus.DONE  # the job completed regardless
            assert records[0].ok
            assert records[1].error["type"] == "WorkerCrash"
            # Resubmission: the ok cell comes from the store, the crashed
            # cell is retried (failures are never memoised).
            retry = svc.submit(sweep)
            retry_records = retry.wait(timeout=300.0)
            assert retry.summary()["store_hits"] == 1
            assert retry_records[0].ok
            assert retry_records[1].error["type"] == "WorkerCrash"

    def test_unexpandable_sweep_fails_the_job_alone(self, tmp_path):
        bad = SweepSpec.from_dict(
            {
                "base": {"dataset": "tiny"},
                "axes": {"num_hops": [1, 2]},  # not a sweepable axis
            }
        )
        with CondensationService(workers=1, store=ResultStore(tmp_path / "s")) as svc:
            job = svc.submit(bad)
            with pytest.raises(ConfigurationError, match="unknown sweep axis"):
                job.wait(timeout=60.0)
            assert job.status is JobStatus.FAILED
            # The service is still healthy: the next job runs normally.
            assert svc.submit(cheap_spec()).wait(timeout=120.0)[0].ok

    def test_submit_before_start_rejected(self, tmp_path):
        svc = CondensationService(workers=1, store=ResultStore(tmp_path / "s"))
        with pytest.raises(RuntimeError, match="before start"):
            svc.submit(cheap_spec())

    def test_submit_rejects_foreign_payloads(self, tmp_path):
        with CondensationService(workers=1, store=ResultStore(tmp_path / "s")) as svc:
            with pytest.raises(ConfigurationError, match="expects an ExperimentSpec"):
                svc.submit({"not": "a spec"})

    def test_stats_shape(self, tmp_path):
        with CondensationService(workers=1, store=ResultStore(tmp_path / "s")) as svc:
            svc.submit(cheap_spec()).wait(timeout=120.0)
            stats = svc.stats()
        assert set(stats) == {"store", "pool", "jobs", "queued"}
        assert stats["jobs"] == 1
        assert stats["pool"]["completed"] == 1
        assert stats["store"]["puts"] == 1


# ------------------------------------------------------------------ #
# The socket front end and its CLI verbs
# ------------------------------------------------------------------ #
def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if part
    )
    env.pop("REPRO_RESULT_STORE", None)  # the test passes --store explicitly
    return env


def _load_jsonl(path: Path) -> list:
    with open(path, encoding="utf-8") as handle:
        return [
            {k: v for k, v in json.loads(line).items() if k != "timings"}
            for line in handle
        ]


class TestServiceCli:
    def test_serve_submit_jobs_round_trip(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        env = _cli_env()
        spec_path = str(REPO_ROOT / "examples" / "sweep.json")
        serve = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--socket",
                socket_path,
                "--workers",
                "2",
                "--store",
                str(tmp_path / "store"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            wait_for_server(socket_path, timeout=60.0)
            outputs = []
            for name in ("first.jsonl", "second.jsonl"):
                result = subprocess.run(
                    [
                        sys.executable,
                        "-m",
                        "repro.cli",
                        "submit",
                        "--socket",
                        socket_path,
                        "--spec",
                        spec_path,
                        "--out",
                        str(tmp_path / name),
                    ],
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=300.0,
                )
                assert result.returncode == 0, result.stdout + result.stderr
                outputs.append(result.stdout)
            assert "0 served from store" in outputs[0]
            assert "4 served from store" in outputs[1]  # warm run: pure store

            jobs = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "jobs",
                    "--socket",
                    socket_path,
                    "--json",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60.0,
            )
            assert jobs.returncode == 0, jobs.stdout + jobs.stderr
            summaries = json.loads(jobs.stdout)
            assert [job["status"] for job in summaries] == ["done", "done"]
            assert summaries[1]["store_hits"] == 4

            assert request(socket_path, {"op": "shutdown"})["stopping"]
            assert serve.wait(timeout=60.0) == 0
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.wait()
        first, second = (
            _load_jsonl(tmp_path / "first.jsonl"),
            _load_jsonl(tmp_path / "second.jsonl"),
        )
        assert len(first) == len(second) == 4
        assert first == second  # store hits are the original records, verbatim

    def test_submit_without_server_exits_2(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "submit",
                "--socket",
                str(tmp_path / "nope.sock"),
                "--spec",
                str(REPO_ROOT / "examples" / "sweep.json"),
            ],
            env=_cli_env(),
            capture_output=True,
            text=True,
            timeout=60.0,
        )
        assert result.returncode == 2
        assert "repro serve" in result.stderr
