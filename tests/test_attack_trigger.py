"""Unit tests for trigger generation and the local trigger loss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack.trigger import (
    TriggerConfig,
    TriggerGenerator,
    UniversalTriggerGenerator,
    generate_hard_triggers,
    local_trigger_loss,
)
from repro.autograd import Adam, Tensor
from repro.exceptions import AttackError
from repro.utils.seed import new_rng


class TestTriggerConfig:
    def test_defaults_valid(self):
        config = TriggerConfig()
        assert config.trigger_size == 4
        assert config.encoder == "mlp"

    @pytest.mark.parametrize(
        "kwargs",
        [{"trigger_size": 0}, {"encoder": "rnn"}, {"learning_rate": 0.0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(AttackError):
            TriggerConfig(**kwargs)


class TestTriggerGenerator:
    @pytest.mark.parametrize("encoder", ["mlp", "gcn", "transformer"])
    def test_generate_shapes(self, encoder, small_graph, rng):
        config = TriggerConfig(trigger_size=3, hidden=16, encoder=encoder)
        generator = TriggerGenerator(small_graph.num_features, rng, config)
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        features, adjacency = generator.generate(inputs[:5])
        assert features.shape == (5, 3, small_graph.num_features)
        assert adjacency.shape == (5, 3, 3)

    def test_generated_adjacency_is_binary_symmetric_no_loops(self, small_graph, rng):
        generator = TriggerGenerator(small_graph.num_features, rng, TriggerConfig(trigger_size=4))
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        _, adjacency = generator.generate(inputs[:7])
        assert set(np.unique(adjacency)).issubset({0.0, 1.0})
        np.testing.assert_allclose(adjacency, np.transpose(adjacency, (0, 2, 1)))
        for block in adjacency:
            np.testing.assert_allclose(np.diag(block), 0.0)

    def test_gcn_encoder_uses_propagated_inputs(self, small_graph, rng):
        mlp = TriggerGenerator(small_graph.num_features, new_rng(0), TriggerConfig(encoder="mlp"))
        gcn = TriggerGenerator(small_graph.num_features, new_rng(0), TriggerConfig(encoder="gcn"))
        raw = mlp.encode_inputs(small_graph.adjacency, small_graph.features)
        propagated = gcn.encode_inputs(small_graph.adjacency, small_graph.features)
        assert not np.allclose(raw, propagated)

    def test_trigger_for_node_is_differentiable(self, small_graph, rng):
        generator = TriggerGenerator(small_graph.num_features, rng, TriggerConfig(trigger_size=2))
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        features, structure = generator.trigger_for_node(inputs[0])
        (features.sum() + structure.sum()).backward()
        assert any(p.grad is not None for p in generator.parameters())

    def test_generate_rejects_1d_input(self, rng):
        generator = TriggerGenerator(8, rng)
        with pytest.raises(AttackError):
            generator.generate(np.ones(8))

    def test_generate_hard_triggers_wrapper(self, small_graph, rng):
        generator = TriggerGenerator(small_graph.num_features, rng, TriggerConfig(trigger_size=2))
        nodes = np.array([0, 3, 5])
        features, adjacency = generate_hard_triggers(
            generator, small_graph.adjacency, small_graph.features, nodes
        )
        assert features.shape == (3, 2, small_graph.num_features)
        assert adjacency.shape == (3, 2, 2)

    def test_different_nodes_get_different_triggers(self, small_graph, rng):
        generator = TriggerGenerator(small_graph.num_features, rng, TriggerConfig(trigger_size=2))
        features, _ = generate_hard_triggers(
            generator, small_graph.adjacency, small_graph.features, np.array([0, 50])
        )
        assert not np.allclose(features[0], features[1])


class TestUniversalTriggerGenerator:
    def test_same_trigger_for_all_nodes(self, small_graph, rng):
        generator = UniversalTriggerGenerator(
            small_graph.num_features, rng, TriggerConfig(trigger_size=3)
        )
        features, adjacency = generate_hard_triggers(
            generator, small_graph.adjacency, small_graph.features, np.array([0, 10, 20])
        )
        np.testing.assert_allclose(features[0], features[1])
        np.testing.assert_allclose(features[1], features[2])
        np.testing.assert_allclose(adjacency[0], adjacency[1])

    def test_structure_is_fully_connected(self, rng):
        generator = UniversalTriggerGenerator(6, rng, TriggerConfig(trigger_size=3))
        _, adjacency = generator.generate(np.zeros((1, 6)))
        expected = 1.0 - np.eye(3)
        np.testing.assert_allclose(adjacency[0], expected)

    def test_trigger_parameters_are_trainable(self, rng):
        generator = UniversalTriggerGenerator(6, rng, TriggerConfig(trigger_size=2))
        assert len(generator.parameters()) == 1
        features, _ = generator.trigger_for_node(np.zeros(6))
        features.sum().backward()
        assert generator.trigger_features.grad is not None


class TestLocalTriggerLoss:
    def test_loss_is_finite_and_differentiable(self, small_graph, rng):
        generator = TriggerGenerator(small_graph.num_features, rng, TriggerConfig(trigger_size=2))
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        weight = Tensor(rng.normal(size=(small_graph.num_features, small_graph.num_classes)))
        loss = local_trigger_loss(0, small_graph, inputs, generator, weight, target_class=1)
        assert np.isfinite(loss.item())
        loss.backward()
        assert any(p.grad is not None for p in generator.parameters())

    def test_optimising_the_generator_reduces_the_loss(self, small_graph):
        generator_rng = new_rng(3)
        generator = TriggerGenerator(
            small_graph.num_features, generator_rng, TriggerConfig(trigger_size=2, hidden=16)
        )
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        weight = Tensor(new_rng(4).normal(size=(small_graph.num_features, small_graph.num_classes)))
        optimizer = Adam(generator.parameters(), lr=0.05)
        nodes = [0, 5, 10, 33]

        def batch_loss() -> float:
            total = 0.0
            for node in nodes:
                total += local_trigger_loss(
                    node, small_graph, inputs, generator, weight, target_class=2
                ).item()
            return total / len(nodes)

        before = batch_loss()
        for _ in range(25):
            optimizer.zero_grad()
            total = None
            for node in nodes:
                loss = local_trigger_loss(
                    node, small_graph, inputs, generator, weight, target_class=2
                )
                total = loss if total is None else total + loss
            (total * (1.0 / len(nodes))).backward()
            optimizer.step()
        after = batch_loss()
        assert after < before

    def test_isolated_node_still_works(self, small_graph, rng):
        """A node with no neighbours gets a pure star computation graph."""
        import scipy.sparse as sp

        adjacency = small_graph.adjacency.tolil()
        adjacency[0, :] = 0
        adjacency[:, 0] = 0
        isolated = small_graph.with_(adjacency=sp.csr_matrix(adjacency))
        generator = TriggerGenerator(isolated.num_features, rng, TriggerConfig(trigger_size=2))
        inputs = generator.encode_inputs(isolated.adjacency, isolated.features)
        weight = Tensor(rng.normal(size=(isolated.num_features, isolated.num_classes)))
        loss = local_trigger_loss(0, isolated, inputs, generator, weight, target_class=0)
        assert np.isfinite(loss.item())

    def test_max_neighbors_caps_subgraph(self, small_graph, rng):
        generator = TriggerGenerator(small_graph.num_features, rng, TriggerConfig(trigger_size=2))
        inputs = generator.encode_inputs(small_graph.adjacency, small_graph.features)
        weight = Tensor(rng.normal(size=(small_graph.num_features, small_graph.num_classes)))
        loss = local_trigger_loss(
            0, small_graph, inputs, generator, weight, target_class=1, max_neighbors=1
        )
        assert np.isfinite(loss.item())
