"""Unit tests for the condensation base classes and configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.condensation import (
    CondensationConfig,
    CondensedGraph,
    available_condensers,
    make_condenser,
)
from repro.condensation.base import Condenser
from repro.condensation.dc_graph import DCGraph
from repro.condensation.gcond import GCond, GCondX
from repro.condensation.gc_sntk import GCSNTK
from repro.exceptions import CondensationError, ConfigurationError


class TestCondensedGraph:
    def test_valid_construction(self):
        condensed = CondensedGraph(
            features=np.ones((3, 4)),
            labels=np.array([0, 1, 2]),
            adjacency=np.eye(3),
            method="test",
        )
        assert condensed.num_nodes == 3
        assert condensed.num_classes == 3

    def test_label_shape_mismatch_rejected(self):
        with pytest.raises(CondensationError):
            CondensedGraph(
                features=np.ones((3, 4)), labels=np.array([0, 1]), adjacency=np.eye(3)
            )

    def test_adjacency_shape_mismatch_rejected(self):
        with pytest.raises(CondensationError):
            CondensedGraph(
                features=np.ones((3, 4)), labels=np.array([0, 1, 2]), adjacency=np.eye(4)
            )

    def test_copy_is_deep(self):
        condensed = CondensedGraph(
            features=np.ones((2, 2)), labels=np.array([0, 1]), adjacency=np.eye(2)
        )
        clone = condensed.copy()
        clone.features[0, 0] = 42.0
        assert condensed.features[0, 0] == 1.0


class TestCondensationConfig:
    def test_defaults_are_valid(self):
        CondensationConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"ratio": 0.0},
            {"ratio": 1.5},
            {"num_hops": 0},
            {"distance": "manhattan"},
            {"lr_features": 0.0},
            {"surrogate_steps": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CondensationConfig(**kwargs)


class TestRegistry:
    def test_all_paper_condensers_registered(self):
        names = available_condensers()
        for expected in ("dc-graph", "gcond", "gcond-x", "gc-sntk"):
            assert expected in names

    def test_unknown_condenser_rejected(self):
        with pytest.raises(ConfigurationError):
            make_condenser("doscond")

    @pytest.mark.parametrize(
        "name,cls",
        [("dc-graph", DCGraph), ("gcond", GCond), ("gcond-x", GCondX), ("gc-sntk", GCSNTK)],
    )
    def test_factory_returns_expected_class(self, name, cls):
        assert isinstance(make_condenser(name), cls)

    def test_config_is_passed_through(self):
        config = CondensationConfig(epochs=3, ratio=0.2)
        condenser = make_condenser("gcond", config)
        assert condenser.config.epochs == 3


class TestSyntheticBudget:
    def test_budget_proportional_to_class_frequency(self, small_graph):
        budget = Condenser.synthetic_budget(small_graph, ratio=0.5)
        assert budget.sum() >= small_graph.num_classes
        assert budget.shape == (small_graph.num_classes,)
        assert np.all(budget >= 1)

    def test_budget_scales_with_ratio(self, small_graph):
        small = Condenser.synthetic_budget(small_graph, ratio=0.2).sum()
        large = Condenser.synthetic_budget(small_graph, ratio=0.9).sum()
        assert large >= small
