"""Differential conformance suite: every kernel backend vs the numpy reference.

The :class:`repro.kernels.base.KernelBackend` contract (see its docstring):
primitives whose floating-point evaluation order is fixed by the reference
must be **bit-identical** to :class:`~repro.kernels.NumpyBackend`; reductions
a backend may legitimately reorder must agree within ``atol <= 1e-10``.  This
suite runs every registered backend (plus an explicitly multi-threaded
``ThreadedBackend``, which on a 1-core CI host would otherwise fall back to
its serial path) against the reference over one shared grid of shapes and
edge cases — empty rows, single-row CSR, ``F=1``, 1-D operands,
non-contiguous inputs, NaN/inf propagation — and then pins the end-to-end
guarantees: the fused softmax-xent pass is bit-identical to the unfused
autograd chain, a same-seed BGC cell is bit-identical across backends, and a
same-seed tiny sweep is bit-identical across ``numpy``/``threaded`` ×
``serial``/``process``/``pool``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro import kernels
from repro.autograd.functional import cross_entropy, log_softmax, nll_loss
from repro.autograd.tensor import Tensor
from repro.api import ExperimentSpec, run_experiment, run_sweep
from repro.exceptions import ConfigurationError
from repro.kernels import (
    NumpyBackend,
    ThreadedBackend,
    active_backend,
    available_kernel_backends,
    kernel_backend_name,
    set_kernel_backend,
)

from test_service import IDENTITY_FIELDS, assert_records_identical, smoke_sweep

REFERENCE = NumpyBackend()


def _registered_instance(name: str):
    previous = set_kernel_backend(name)
    try:
        return active_backend()
    finally:
        set_kernel_backend(previous)


def candidate_backends():
    """Every registered non-reference backend, plus a forced-parallel threaded one."""
    candidates = [
        (name, _registered_instance(name))
        for name in available_kernel_backends()
        if name != "numpy"
    ]
    candidates.append(("threaded-w3", ThreadedBackend(workers=3)))
    return candidates


BACKENDS = candidate_backends()
BACKEND_IDS = [name for name, _ in BACKENDS]
BACKEND_PARAMS = pytest.mark.parametrize(
    "backend", [instance for _, instance in BACKENDS], ids=BACKEND_IDS
)


def assert_same_values(result, expected) -> None:
    """Exact (bit-level, NaN-aware) agreement plus shape/dtype equality."""
    result = np.asarray(result)
    expected = np.asarray(expected)
    assert result.shape == expected.shape
    assert result.dtype == expected.dtype
    np.testing.assert_array_equal(result, expected)


def _csr_case(kind: str) -> sp.csr_matrix:
    rng = np.random.default_rng(hash(kind) % (2**32))
    if kind == "single-row":
        return sp.csr_matrix(np.array([[1.0, 0.0, -2.0, 0.5, 0.0]]))
    if kind == "empty-rows":
        dense = rng.standard_normal((8, 5))
        dense[[0, 3, 7]] = 0.0
        dense[dense < 0.3] = 0.0
        return sp.csr_matrix(dense)
    if kind == "all-zero":
        return sp.csr_matrix((6, 4))
    if kind == "signed":
        dense = rng.standard_normal((12, 9))
        dense[np.abs(dense) < 0.8] = 0.0
        return sp.csr_matrix(dense)
    if kind == "large":
        # Big enough that ThreadedBackend takes its chunked parallel path
        # (nnz * F clears the serial-fallback work threshold).
        return sp.random(400, 350, density=0.05, random_state=11, format="csr")
    raise AssertionError(kind)


SPMM_KINDS = ("single-row", "empty-rows", "all-zero", "signed", "large")


class TestSpmmConformance:
    @BACKEND_PARAMS
    @pytest.mark.parametrize("kind", SPMM_KINDS)
    @pytest.mark.parametrize("num_features", [1, 7])
    def test_matches_reference_2d(self, backend, kind, num_features):
        matrix = _csr_case(kind)
        rng = np.random.default_rng(5)
        dense = rng.standard_normal((matrix.shape[1], num_features))
        assert_same_values(
            backend.spmm(matrix, dense), REFERENCE.spmm(matrix, dense)
        )

    @BACKEND_PARAMS
    @pytest.mark.parametrize("kind", SPMM_KINDS)
    def test_matches_reference_1d(self, backend, kind):
        matrix = _csr_case(kind)
        vector = np.random.default_rng(6).standard_normal(matrix.shape[1])
        assert_same_values(
            backend.spmm(matrix, vector), REFERENCE.spmm(matrix, vector)
        )

    @BACKEND_PARAMS
    def test_non_contiguous_dense(self, backend):
        matrix = _csr_case("large")
        wide = np.random.default_rng(7).standard_normal((matrix.shape[1], 24))
        dense = wide[:, ::2]  # non-contiguous column view
        assert not dense.flags["C_CONTIGUOUS"]
        assert_same_values(
            backend.spmm(matrix, dense), REFERENCE.spmm(matrix, dense)
        )

    @BACKEND_PARAMS
    def test_nan_inf_propagation(self, backend):
        matrix = _csr_case("large")
        dense = np.random.default_rng(8).standard_normal((matrix.shape[1], 6))
        dense[0, 0] = np.nan
        dense[1, 1] = np.inf
        dense[2, 2] = -np.inf
        assert_same_values(
            backend.spmm(matrix, dense), REFERENCE.spmm(matrix, dense)
        )

    @BACKEND_PARAMS
    def test_csc_operand(self, backend):
        # The blocked engine slices CSC columns; spmm must accept both formats.
        matrix = _csr_case("signed").tocsc()
        dense = np.random.default_rng(9).standard_normal((matrix.shape[1], 4))
        assert_same_values(
            backend.spmm(matrix, dense), REFERENCE.spmm(matrix, dense)
        )


class TestDenseProductConformance:
    @BACKEND_PARAMS
    @pytest.mark.parametrize("shape", [(1, 1, 1), (3, 4, 2), (60, 50, 40)])
    def test_matmul(self, backend, shape):
        n, k, m = shape
        rng = np.random.default_rng(10)
        a, b = rng.standard_normal((n, k)), rng.standard_normal((k, m))
        assert_same_values(backend.matmul(a, b), REFERENCE.matmul(a, b))

    @BACKEND_PARAMS
    @pytest.mark.parametrize(
        "shape", [(1, 2, 2, 2), (5, 3, 4, 2), (48, 16, 16, 16)]
    )
    def test_batched_matmul(self, backend, shape):
        batch, n, k, m = shape
        rng = np.random.default_rng(11)
        a = rng.standard_normal((batch, n, k))
        b = rng.standard_normal((batch, k, m))
        assert_same_values(
            backend.batched_matmul(a, b), REFERENCE.batched_matmul(a, b)
        )

    @BACKEND_PARAMS
    def test_batched_matmul_non_contiguous(self, backend):
        rng = np.random.default_rng(12)
        a = np.swapaxes(rng.standard_normal((16, 48, 20)), -1, -2)
        b = rng.standard_normal((16, 48, 24))
        assert not a.flags["C_CONTIGUOUS"]
        assert_same_values(
            backend.batched_matmul(a, b), REFERENCE.batched_matmul(a, b)
        )

    @BACKEND_PARAMS
    def test_batched_matmul_nan_inf(self, backend):
        rng = np.random.default_rng(13)
        a = rng.standard_normal((40, 10, 14))
        b = rng.standard_normal((40, 14, 12))
        a[0, 0, 0] = np.nan
        b[1, 2, 3] = np.inf
        assert_same_values(
            backend.batched_matmul(a, b), REFERENCE.batched_matmul(a, b)
        )

    @BACKEND_PARAMS
    @pytest.mark.parametrize("shape", [(2, 3), (4, 1, 6), (3, 5, 5)])
    def test_transpose_last2(self, backend, shape):
        x = np.random.default_rng(14).standard_normal(shape)
        result = backend.transpose_last2(x)
        assert_same_values(result, REFERENCE.transpose_last2(x))
        assert result.flags["C_CONTIGUOUS"]


class TestScatterGatherConformance:
    @BACKEND_PARAMS
    def test_embed_blocks(self, backend):
        rng = np.random.default_rng(15)
        base = rng.standard_normal((4, 7, 6))
        blocks = rng.standard_normal((4, 3, 2))
        assert_same_values(
            backend.embed_blocks(base, blocks, 2, 1),
            REFERENCE.embed_blocks(base, blocks, 2, 1),
        )

    @BACKEND_PARAMS
    @pytest.mark.parametrize(
        "index,unique",
        [
            (np.array([0, 2, 5]), True),
            (np.array([4]), True),
            (np.array([3, 0, 3, 1, 3]), False),
            (np.array([], dtype=np.int64), True),
        ],
        ids=["sorted-unique", "single", "duplicates", "empty"],
    )
    def test_scatter_add_rows(self, backend, index, unique):
        values = np.random.default_rng(16).standard_normal((index.size, 3))
        assert_same_values(
            backend.scatter_add_rows((6, 3), index, values, unique),
            REFERENCE.scatter_add_rows((6, 3), index, values, unique),
        )

    @BACKEND_PARAMS
    def test_gather_scale(self, backend):
        rng = np.random.default_rng(17)
        data = rng.standard_normal(40)
        index = rng.integers(0, 9, size=40)
        scale = rng.standard_normal(9)
        assert_same_values(
            backend.gather_scale(data, index, scale),
            REFERENCE.gather_scale(data, index, scale),
        )

    @BACKEND_PARAMS
    @pytest.mark.parametrize("kind", ["signed", "empty-rows", "all-zero"])
    def test_scale_csr(self, backend, kind):
        matrix = _csr_case(kind)
        rng = np.random.default_rng(18)
        row_scale = rng.standard_normal(matrix.shape[0])
        col_scale = rng.standard_normal(matrix.shape[1])
        result = backend.scale_csr(matrix, row_scale, col_scale)
        expected = REFERENCE.scale_csr(matrix, row_scale, col_scale)
        assert result.shape == expected.shape
        assert_same_values(result.indptr, expected.indptr)
        assert_same_values(result.indices, expected.indices)
        assert_same_values(result.data, expected.data)


class TestFusedLossConformance:
    @BACKEND_PARAMS
    @pytest.mark.parametrize("shape", [(1, 1), (5, 3), (64, 7)])
    def test_softmax_xent_forward(self, backend, shape):
        rng = np.random.default_rng(19)
        logits = 4.0 * rng.standard_normal(shape)
        weighted = rng.random(shape) / max(shape[0], 1)
        loss, probs = backend.softmax_xent(logits, weighted)
        ref_loss, ref_probs = REFERENCE.softmax_xent(logits, weighted)
        assert_same_values(loss, ref_loss)
        assert_same_values(probs, ref_probs)

    @BACKEND_PARAMS
    def test_softmax_xent_grad(self, backend):
        rng = np.random.default_rng(20)
        logits = rng.standard_normal((12, 5))
        weighted = rng.random((12, 5)) / 12.0
        _, probs = REFERENCE.softmax_xent(logits, weighted)
        upstream = np.asarray(1.7)
        assert_same_values(
            backend.softmax_xent_grad(upstream, probs, weighted),
            REFERENCE.softmax_xent_grad(upstream, probs, weighted),
        )

    def test_fused_cross_entropy_matches_unfused_chain(self):
        """The fused pass is bit-identical to nll_loss(log_softmax(...))."""
        rng = np.random.default_rng(21)
        logits_data = 3.0 * rng.standard_normal((30, 4))
        labels = rng.integers(0, 4, size=30)
        weights = rng.random(30) + 0.1

        for w in (None, weights):
            fused_in = Tensor(logits_data.copy(), requires_grad=True)
            fused = cross_entropy(fused_in, labels, weights=w)
            fused.backward()

            chain_in = Tensor(logits_data.copy(), requires_grad=True)
            chain = nll_loss(log_softmax(chain_in, axis=-1), labels, weights=w)
            chain.backward()

            assert fused.item() == chain.item()
            np.testing.assert_array_equal(fused_in.grad, chain_in.grad)


class TestRegistryAndSelection:
    def test_reference_is_registered_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert "numpy" in available_kernel_backends()
        assert "threaded" in available_kernel_backends()
        assert kernel_backend_name() == "numpy"
        assert active_backend().name == "numpy"

    def test_override_wins_and_restores(self):
        ambient = kernel_backend_name()
        previous = set_kernel_backend("threaded")
        try:
            assert kernel_backend_name() == "threaded"
            assert active_backend().name == "threaded"
        finally:
            set_kernel_backend(previous)
        assert kernel_backend_name() == ambient

    def test_unknown_override_lists_registered(self):
        with pytest.raises(ConfigurationError) as excinfo:
            set_kernel_backend("definitely-not-a-backend")
        message = str(excinfo.value)
        for name in available_kernel_backends():
            assert name in message

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
        assert kernel_backend_name() == "threaded"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "nope")
        with pytest.raises(ConfigurationError):
            kernel_backend_name()
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        assert kernel_backend_name() == "numpy"

    def test_threads_environment_sets_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "5")
        assert ThreadedBackend().workers == 5
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "junk")
        assert ThreadedBackend().workers >= 1
        assert ThreadedBackend(workers=2).workers == 2

    def test_register_rejects_abstract_name(self):
        with pytest.raises(ConfigurationError):
            kernels.register_kernel_backend(kernels.KernelBackend)


def _bgc_cell(seed: int = 5) -> ExperimentSpec:
    """One cheap BGC attack cell on the tiny dataset."""
    return ExperimentSpec.from_dict(
        {
            "dataset": "tiny",
            "condenser": {"name": "gcond", "overrides": {"epochs": 2, "ratio": 0.2}},
            "attack": {"name": "bgc", "overrides": {"epochs": 2, "poison_ratio": 0.2}},
            "trigger": {"overrides": {"trigger_size": 2}},
            "evaluation": {"overrides": {"epochs": 5}},
            "seed": seed,
        }
    )


class TestEndToEndIdentity:
    def test_bgc_cell_bit_identical_across_backends(self):
        """Same-seed BGC epochs produce identical records under every backend."""
        baseline = run_experiment(_bgc_cell(), cell_index=0)
        assert baseline.ok
        for name in available_kernel_backends():
            if name == "numpy":
                continue
            previous = set_kernel_backend(name)
            try:
                record = run_experiment(_bgc_cell(), cell_index=0)
            finally:
                set_kernel_backend(previous)
            assert_records_identical(baseline, record)

    @pytest.mark.parametrize("exec_backend", ["serial", "process", "pool"])
    def test_tiny_sweep_bit_identical_across_kernel_backends(self, exec_backend):
        """numpy/threaded × serial/process/pool all agree bit for bit."""
        sweep = smoke_sweep(seed=11)
        ambient = kernel_backend_name()  # numpy unless the env selects another
        baseline = run_sweep(sweep)  # serial, ambient backend
        assert all(record.ok for record in baseline)
        for kernel in available_kernel_backends():
            if exec_backend == "serial" and kernel == ambient:
                continue  # that IS the baseline
            result = run_sweep(
                sweep,
                execution={
                    "backend": exec_backend,
                    "workers": 2,
                    "kernel_backend": kernel,
                },
            )
            assert len(result) == len(baseline)
            for expected, actual in zip(baseline, result):
                assert_records_identical(expected, actual)
        # The override never leaks past the sweep.
        assert kernel_backend_name() == ambient
