"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_subcommand(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_condense_defaults(self):
        args = build_parser().parse_args(["condense"])
        assert args.dataset == "cora"
        assert args.method == "gcond"
        assert args.ratio == pytest.approx(0.026)

    def test_attack_arguments(self):
        args = build_parser().parse_args(
            [
                "attack",
                "--dataset",
                "citeseer",
                "--method",
                "dc-graph",
                "--poison-number",
                "12",
                "--trigger-size",
                "2",
                "--random-selection",
            ]
        )
        assert args.dataset == "citeseer"
        assert args.poison_number == 12
        assert args.random_selection

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["condense", "--dataset", "ogbn-products"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["condense", "--method", "doscond"])


class TestCommands:
    def test_datasets_command_prints_table(self, capsys):
        exit_code = main(["datasets"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cora" in captured.out
        assert "reddit" in captured.out

    def test_condense_command_smoke(self, capsys):
        exit_code = main(
            [
                "condense",
                "--dataset",
                "cora",
                "--method",
                "gcond-x",
                "--ratio",
                "0.013",
                "--epochs",
                "2",
                "--eval-epochs",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "C-CTA %" in captured.out

    def test_attack_command_smoke(self, capsys):
        exit_code = main(
            [
                "attack",
                "--dataset",
                "cora",
                "--method",
                "gcond-x",
                "--ratio",
                "0.013",
                "--epochs",
                "2",
                "--eval-epochs",
                "5",
                "--trigger-size",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ASR %" in captured.out
        assert "poisoned nodes" in captured.out
