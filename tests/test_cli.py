"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_subcommand(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_condense_defaults(self):
        args = build_parser().parse_args(["condense"])
        assert args.dataset == "cora"
        assert args.method == "gcond"
        assert args.ratio == pytest.approx(0.026)

    def test_attack_arguments(self):
        args = build_parser().parse_args(
            [
                "attack",
                "--dataset",
                "citeseer",
                "--method",
                "dc-graph",
                "--poison-number",
                "12",
                "--trigger-size",
                "2",
                "--random-selection",
            ]
        )
        assert args.dataset == "citeseer"
        assert args.poison_number == 12
        assert args.random_selection

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["condense", "--dataset", "ogbn-products"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["condense", "--method", "doscond"])

    @pytest.mark.parametrize("alias", ["gcondx", "dcgraph", "gcsntk"])
    def test_method_alias_spellings_still_parse(self, alias):
        args = build_parser().parse_args(["condense", "--method", alias])
        assert args.method == alias


class TestSweepExecutionFlags:
    def _args(self, *extra):
        return build_parser().parse_args(["sweep", "--spec", "sweep.json", *extra])

    def test_defaults_leave_spec_execution_untouched(self):
        from repro.api import ExecutionSpec
        from repro.cli import execution_from_args

        base = ExecutionSpec(backend="process", workers=3, on_error="record")
        assert execution_from_args(self._args(), base) == base

    def test_workers_above_one_implies_process_backend(self):
        from repro.api import ExecutionSpec
        from repro.cli import execution_from_args

        execution = execution_from_args(self._args("--workers", "4"), ExecutionSpec())
        assert execution.backend == "process"
        assert execution.workers == 4

    def test_explicit_serial_backend_wins_over_workers(self):
        from repro.api import ExecutionSpec
        from repro.cli import execution_from_args

        execution = execution_from_args(
            self._args("--workers", "4", "--backend", "serial"), ExecutionSpec()
        )
        assert execution.backend == "serial"

    def test_timeout_and_on_error_flags_override(self):
        from repro.api import ExecutionSpec
        from repro.cli import execution_from_args

        execution = execution_from_args(
            self._args("--cell-timeout", "2.5", "--on-error", "record"),
            ExecutionSpec(),
        )
        assert execution.timeout == 2.5
        assert execution.on_error == "record"

    def test_invalid_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            self._args("--backend", "threads")


class TestOrderedJsonlSink:
    def test_out_of_order_records_flush_in_canonical_order(self, tmp_path):
        import io
        import json

        from repro.api import ExperimentSpec, RunRecord
        from repro.cli import _OrderedJsonlSink

        buffer = io.StringIO()
        sink = _OrderedJsonlSink(buffer)
        spec = ExperimentSpec.from_dict({"dataset": "tiny"})
        for index in (2, 0, 1):  # completion order != grid order
            sink(RunRecord(spec=spec, cell_index=index))
        written = [
            json.loads(line)["cell_index"]
            for line in buffer.getvalue().strip().splitlines()
        ]
        assert written == [0, 1, 2]

    def test_flush_remaining_preserves_completed_records_on_abort(self):
        """A raise-mode abort must not drop records buffered behind the gap."""
        import io
        import json

        from repro.api import ExperimentSpec, RunRecord
        from repro.cli import _OrderedJsonlSink

        buffer = io.StringIO()
        sink = _OrderedJsonlSink(buffer)
        spec = ExperimentSpec.from_dict({"dataset": "tiny"})
        sink(RunRecord(spec=spec, cell_index=2))  # completed while 0 failed
        assert buffer.getvalue() == ""  # held back waiting for cells 0-1
        sink.flush_remaining()  # the CLI's finally block on abort
        written = [
            json.loads(line)["cell_index"]
            for line in buffer.getvalue().strip().splitlines()
        ]
        assert written == [2]


class TestRowAlignment:
    def test_align_rows_unions_columns(self):
        """Mixed clean/attacked sweep rows must not lose attack columns."""
        from repro.cli import _align_rows

        rows = _align_rows(
            [{"dataset": "tiny", "C-CTA %": "90"}, {"dataset": "tiny", "ASR %": "99"}]
        )
        assert list(rows[0]) == ["dataset", "C-CTA %", "ASR %"]
        assert rows[0]["ASR %"] == ""
        assert rows[1]["ASR %"] == "99"


class TestLegacySpecBuilder:
    def test_seed_reaches_dataset_generation(self):
        """--seed must control the generated graph, as it did pre-registry."""
        from repro.cli import spec_from_legacy_args

        args = build_parser().parse_args(["condense", "--seed", "5"])
        spec = spec_from_legacy_args(args, with_attack=False)
        assert spec.dataset.overrides["seed"] == 5
        assert spec.seed == 5

    def test_condense_and_attack_share_defaults(self):
        """One builder serves both subcommands — defaults cannot drift."""
        from repro.cli import spec_from_legacy_args

        condense = spec_from_legacy_args(
            build_parser().parse_args(["condense"]), with_attack=False
        )
        attack = spec_from_legacy_args(
            build_parser().parse_args(["attack"]), with_attack=True
        )
        assert condense.condenser == attack.condenser
        assert condense.evaluation == attack.evaluation
        assert condense.dataset == attack.dataset
        assert attack.attack.name == "bgc"


class TestCommands:
    def test_datasets_command_prints_table(self, capsys):
        exit_code = main(["datasets"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cora" in captured.out
        assert "reddit" in captured.out

    def test_condense_command_smoke(self, capsys):
        exit_code = main(
            [
                "condense",
                "--dataset",
                "cora",
                "--method",
                "gcond-x",
                "--ratio",
                "0.013",
                "--epochs",
                "2",
                "--eval-epochs",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "C-CTA %" in captured.out

    def test_attack_command_smoke(self, capsys):
        exit_code = main(
            [
                "attack",
                "--dataset",
                "cora",
                "--method",
                "gcond-x",
                "--ratio",
                "0.013",
                "--epochs",
                "2",
                "--eval-epochs",
                "5",
                "--trigger-size",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ASR %" in captured.out
        assert "poisoned nodes" in captured.out
