"""Unit tests for the autograd Tensor: forward values and backward gradients."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, no_grad, is_grad_enabled
from repro.autograd.tensor import sparse_matmul
from repro.exceptions import AutogradError

from helpers import numerical_gradient


def check_gradient(build_loss, shape, rng, rtol=1e-5, atol=1e-7):
    """Compare analytic and numerical gradients of a scalar-valued function."""
    array = rng.normal(size=shape)
    tensor = Tensor(array.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()

    def numeric(a):
        return build_loss(Tensor(a)).item()

    expected = numerical_gradient(numeric, array.copy())
    np.testing.assert_allclose(tensor.grad, expected, rtol=rtol, atol=atol)


class TestTensorBasics:
    def test_construction_converts_to_float64(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.data.dtype == np.float64
        assert t.shape == (2, 2)
        assert t.size == 4
        assert t.ndim == 2

    def test_item_on_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_item_on_non_scalar_raises(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones((2, 2))).item()

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_copy_is_independent(self):
        t = Tensor(np.ones(3), requires_grad=True)
        c = t.copy()
        c.data[0] = 5.0
        assert t.data[0] == 1.0
        assert c.requires_grad

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(3)).backward()

    def test_backward_without_grad_on_vector_raises(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            (t * 2.0).backward()

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.sum()).backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_gradient_accumulates_over_backward_calls(self):
        t = Tensor(np.ones(3), requires_grad=True)
        t.sum().backward()
        t.sum().backward()
        np.testing.assert_allclose(t.grad, 2.0 * np.ones(3))


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        with no_grad():
            assert not is_grad_enabled()
            t = Tensor(np.ones(3), requires_grad=True)
            out = t * 2.0
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda t: (t + 3.0).sum(), (4, 3), rng)

    def test_sub(self, rng):
        check_gradient(lambda t: (5.0 - t).sum(), (4, 3), rng)

    def test_mul(self, rng):
        other = rng.normal(size=(4, 3))
        check_gradient(lambda t: (t * other).sum(), (4, 3), rng)

    def test_div(self, rng):
        other = rng.normal(size=(4, 3)) + 3.0
        check_gradient(lambda t: (t / other).sum(), (4, 3), rng)

    def test_rdiv(self, rng):
        check_gradient(lambda t: (2.0 / (t + 5.0)).sum(), (3, 3), rng)

    def test_pow(self, rng):
        check_gradient(lambda t: ((t + 4.0) ** 3).sum(), (4,), rng, rtol=1e-4)

    def test_neg(self, rng):
        check_gradient(lambda t: (-t).sum(), (4, 3), rng)

    def test_broadcast_row_vector(self, rng):
        other = rng.normal(size=(1, 3))
        check_gradient(lambda t: (t + other).sum(), (4, 3), rng)

    def test_broadcast_grad_on_small_operand(self, rng):
        big = Tensor(rng.normal(size=(4, 3)))
        small = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
        (big * small).sum().backward()
        assert small.grad.shape == (1, 3)
        np.testing.assert_allclose(small.grad, big.data.sum(axis=0, keepdims=True))

    def test_pow_with_tensor_exponent_raises(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            t ** Tensor(np.ones(3))


class TestLinearAlgebraGradients:
    def test_matmul_left(self, rng):
        other = rng.normal(size=(3, 5))
        check_gradient(lambda t: t.matmul(other).sum(), (4, 3), rng)

    def test_matmul_right(self, rng):
        left = rng.normal(size=(4, 3))
        check_gradient(lambda t: Tensor(left).matmul(t).sum(), (3, 5), rng)

    def test_matmul_rejects_1d(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(3), requires_grad=True).matmul(np.ones(3))

    def test_transpose(self, rng):
        weights = rng.normal(size=(5, 4))
        check_gradient(lambda t: (t.T * weights).sum(), (4, 5), rng)

    def test_transpose_rejects_1d(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(3)).transpose()

    def test_reshape(self, rng):
        check_gradient(lambda t: (t.reshape(2, 6) ** 2).sum(), (4, 3), rng)

    def test_inverse(self, rng):
        base = rng.normal(size=(4, 4)) + 4.0 * np.eye(4)
        check_gradient(lambda t: (t + 4.0 * np.eye(4)).inverse().sum(), (4, 4), rng, rtol=1e-4)
        del base

    def test_inverse_rejects_non_square(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones((2, 3))).inverse()

    def test_inverse_value(self):
        matrix = np.array([[2.0, 0.0], [0.0, 4.0]])
        inv = Tensor(matrix).inverse()
        np.testing.assert_allclose(inv.data, np.array([[0.5, 0.0], [0.0, 0.25]]))


class TestReductionsAndElementwise:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum(), (3, 4), rng)

    def test_sum_axis0(self, rng):
        w = rng.normal(size=(4,))
        check_gradient(lambda t: (t.sum(axis=0) * w).sum(), (3, 4), rng)

    def test_sum_axis1_keepdims(self, rng):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), (3, 4), rng, rtol=1e-4)

    def test_mean(self, rng):
        check_gradient(lambda t: t.mean(), (3, 4), rng)

    def test_mean_axis(self, rng):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (3, 4), rng, rtol=1e-4)

    def test_exp(self, rng):
        check_gradient(lambda t: t.exp().sum(), (3, 3), rng, rtol=1e-4)

    def test_log(self, rng):
        check_gradient(lambda t: (t + 5.0).log().sum(), (3, 3), rng)

    def test_sqrt(self, rng):
        check_gradient(lambda t: (t + 5.0).sqrt().sum(), (3, 3), rng)

    def test_abs(self, rng):
        check_gradient(lambda t: (t + 0.7).abs().sum(), (3, 3), rng)

    def test_relu_forward_and_grad(self):
        t = Tensor(np.array([[-1.0, 2.0], [0.5, -3.0]]), requires_grad=True)
        out = t.relu()
        np.testing.assert_allclose(out.data, [[0.0, 2.0], [0.5, 0.0]])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), (3, 3), rng, rtol=1e-4)

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh().sum(), (3, 3), rng, rtol=1e-4)

    def test_clip_gradient_masks_out_of_range(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestIndexing:
    def test_index_rows_gradient_scatters(self):
        t = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        idx = np.array([0, 2, 2])
        out = t.index_rows(idx)
        assert out.shape == (3, 3)
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 1.0
        expected[2] = 2.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_slice_gradient(self, rng):
        check_gradient(lambda t: (t[0:2] ** 2).sum(), (4, 3), rng, rtol=1e-4)

    def test_getitem_with_list_routes_to_index_rows(self):
        t = Tensor(np.eye(3), requires_grad=True)
        out = t[[1, 2]]
        assert out.shape == (2, 3)


class TestConcatenate:
    def test_concatenate_axis0_values(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.zeros((1, 3)))
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (3, 3)

    def test_concatenate_gradient_split(self, rng):
        a_data = rng.normal(size=(2, 3))
        b_data = rng.normal(size=(3, 3))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a_data)
        np.testing.assert_allclose(b.grad, 2 * b_data)

    def test_concatenate_axis1(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 6)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 4)

    def test_stack_rows(self):
        rows = [Tensor(np.arange(3.0)), Tensor(np.arange(3.0) + 10)]
        out = Tensor.stack_rows(rows)
        assert out.shape == (2, 3)


class TestSparseMatmul:
    def test_forward_matches_dense(self, rng):
        dense = (rng.random((5, 5)) < 0.4).astype(float)
        sparse = sp.csr_matrix(dense)
        x = Tensor(rng.normal(size=(5, 3)))
        out = sparse_matmul(sparse, x)
        np.testing.assert_allclose(out.data, dense @ x.data)

    def test_gradient_is_transpose_product(self, rng):
        dense = (rng.random((5, 5)) < 0.4).astype(float)
        sparse = sp.csr_matrix(dense)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        sparse_matmul(sparse, x).sum().backward()
        np.testing.assert_allclose(x.grad, dense.T @ np.ones((5, 3)))

    def test_rejects_dense_first_operand(self):
        with pytest.raises(AutogradError):
            sparse_matmul(np.eye(3), Tensor(np.ones((3, 2))))


class TestGraphReuse:
    def test_diamond_graph_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = x * 4.0
        (y + z).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        out = x
        for _ in range(50):
            out = out * 1.01
        out.sum().backward()
        assert x.grad[0] == pytest.approx(1.01 ** 50, rel=1e-9)
