"""Unit and small end-to-end tests for the BGC attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import BGC, BGCConfig, TriggerConfig
from repro.attack.selection import SelectionConfig
from repro.condensation import CondensationConfig, make_condenser
from repro.evaluation.pipeline import (
    EvaluationConfig,
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.exceptions import AttackError
from repro.utils.seed import new_rng


def fast_attack_config(**overrides) -> BGCConfig:
    defaults = dict(
        target_class=0,
        poison_ratio=0.3,
        epochs=4,
        surrogate_steps=10,
        generator_steps=1,
        update_batch_size=4,
        trigger=TriggerConfig(trigger_size=2, hidden=16),
        selection=SelectionConfig(num_clusters=2, selector_epochs=15),
    )
    defaults.update(overrides)
    return BGCConfig(**defaults)


def fast_condenser(name="gcond-x"):
    return make_condenser(name, CondensationConfig(epochs=4, ratio=0.3))


class TestBGCConfig:
    def test_defaults_valid(self):
        BGCConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"poison_ratio": None, "poison_number": None},
            {"poison_ratio": 1.5},
            {"poison_number": 0},
            {"epochs": 0},
            {"generator_steps": -1},
            {"update_batch_size": 0},
            {"directed": True, "source_class": None},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(AttackError):
            BGCConfig(**kwargs)


class TestBGCRun:
    def test_result_structure(self, small_graph):
        attack = BGC(fast_attack_config())
        result = attack.run(small_graph, fast_condenser(), new_rng(0))
        assert result.target_class == 0
        assert result.poisoned_nodes.size >= 1
        assert result.condensed.num_nodes >= small_graph.num_classes
        assert len(result.history) == 4
        assert all("trigger_loss" in entry for entry in result.history)

    def test_poisoned_nodes_not_of_target_class(self, small_graph):
        attack = BGC(fast_attack_config())
        result = attack.run(small_graph, fast_condenser(), new_rng(0))
        assert np.all(small_graph.labels[result.poisoned_nodes] != 0)

    def test_poison_number_overrides_ratio(self, small_graph):
        attack = BGC(fast_attack_config(poison_number=3, poison_ratio=None))
        result = attack.run(small_graph, fast_condenser(), new_rng(0))
        assert result.poisoned_nodes.size <= 3

    def test_invalid_target_class_rejected(self, small_graph):
        attack = BGC(fast_attack_config(target_class=99))
        with pytest.raises(AttackError):
            attack.run(small_graph, fast_condenser(), new_rng(0))

    def test_random_selection_variant(self, small_graph):
        attack = BGC(fast_attack_config(use_random_selection=True))
        result = attack.run(small_graph, fast_condenser(), new_rng(0))
        assert result.poisoned_nodes.size >= 1

    def test_directed_variant_poisons_only_source_class(self, small_graph):
        attack = BGC(fast_attack_config(directed=True, source_class=2))
        result = attack.run(small_graph, fast_condenser(), new_rng(0))
        assert np.all(small_graph.labels[result.poisoned_nodes] == 2)

    def test_works_with_gcond_structure_learner(self, small_graph):
        attack = BGC(fast_attack_config())
        result = attack.run(small_graph, fast_condenser("gcond"), new_rng(0))
        assert result.condensed.method == "gcond"

    def test_works_with_gc_sntk(self, small_graph):
        attack = BGC(fast_attack_config())
        result = attack.run(small_graph, fast_condenser("gc-sntk"), new_rng(0))
        assert result.condensed.method == "gc-sntk"

    def test_works_on_inductive_graph(self, small_graph):
        inductive = small_graph.with_(inductive=True)
        attack = BGC(fast_attack_config(poison_number=4, poison_ratio=None))
        result = attack.run(inductive, fast_condenser(), new_rng(0))
        assert result.condensed.num_nodes >= 1

    def test_condensed_labels_still_cover_all_classes(self, small_graph):
        attack = BGC(fast_attack_config())
        result = attack.run(small_graph, fast_condenser(), new_rng(0))
        assert set(np.unique(result.condensed.labels)) == set(range(small_graph.num_classes))


class TestSeedDeterminism:
    """Two runs at a fixed seed must agree bit for bit.

    Guards the rng-batch refactor: the generator update now draws whole
    batches through one autograd graph, and the poisoned graph is built by
    CSR surgery with incremental renormalisation — none of which may perturb
    the sampled streams or the arithmetic from run to run.  The second run
    deliberately reuses whatever propagation-cache state the first one left
    behind: results must not depend on cache residency.
    """

    def _run_once(self, graph, seed: int):
        attack = BGC(fast_attack_config(generator_steps=2, epochs=3))
        return attack.run(graph, fast_condenser(), new_rng(seed))

    def test_bit_identical_poisoned_outputs(self, small_graph):
        from repro.graph.cache import PropagationCache, set_default_cache

        previous = set_default_cache(PropagationCache())
        try:
            first = self._run_once(small_graph, seed=123)
            second = self._run_once(small_graph, seed=123)
        finally:
            set_default_cache(previous)

        np.testing.assert_array_equal(first.poisoned_nodes, second.poisoned_nodes)
        # Condensed (poisoned) graph: bit-identical arrays.
        assert first.condensed.features.tobytes() == second.condensed.features.tobytes()
        assert np.asarray(first.condensed.adjacency).tobytes() == np.asarray(
            second.condensed.adjacency
        ).tobytes()
        np.testing.assert_array_equal(first.condensed.labels, second.condensed.labels)
        # Trigger generator parameters: bit-identical.
        for p1, p2 in zip(first.generator.parameters(), second.generator.parameters()):
            assert p1.data.tobytes() == p2.data.tobytes()
        # Attack metrics history: exact float equality, not approximate.
        assert first.history == second.history

    def test_different_seeds_diverge(self, small_graph):
        first = self._run_once(small_graph, seed=123)
        second = self._run_once(small_graph, seed=124)
        assert first.history != second.history


class TestBGCEffectiveness:
    """End-to-end check that BGC actually backdoors the downstream model."""

    @pytest.fixture(scope="class")
    def attack_outcome(self):
        from helpers import build_small_graph

        graph = build_small_graph(seed=11, nodes_per_class=50, train_per_class=15)
        condenser = make_condenser("gcond-x", CondensationConfig(epochs=10, ratio=0.25))
        attack = BGC(
            BGCConfig(
                target_class=0,
                poison_ratio=0.2,
                epochs=10,
                surrogate_steps=20,
                generator_steps=2,
                update_batch_size=8,
                trigger=TriggerConfig(trigger_size=3, hidden=16, feature_scale=0.2),
                selection=SelectionConfig(num_clusters=2, selector_epochs=30),
            )
        )
        result = attack.run(graph, condenser, new_rng(5))
        evaluation = EvaluationConfig(epochs=80, hidden=16)
        model = train_model_on_condensed(result.condensed, graph, evaluation, new_rng(6))
        cta = evaluate_clean(model, graph)
        asr = evaluate_backdoor(model, graph, result.generator, result.target_class)
        return graph, result, cta, asr

    def _clean_condensation_config(self):
        return CondensationConfig(epochs=10, ratio=0.25)

    def test_attack_success_rate_is_high(self, attack_outcome):
        _, _, _, asr = attack_outcome
        assert asr > 0.8

    def test_clean_accuracy_is_preserved(self, attack_outcome):
        _, _, cta, _ = attack_outcome
        assert cta > 0.6

    def test_clean_model_is_not_fooled(self, attack_outcome):
        graph, result, _, _ = attack_outcome
        clean_condenser = make_condenser("gcond-x", CondensationConfig(epochs=10, ratio=0.25))
        clean_condensed = clean_condenser.condense(graph, new_rng(7))
        clean_model = train_model_on_condensed(
            clean_condensed, graph, EvaluationConfig(epochs=80, hidden=16), new_rng(8)
        )
        clean_asr = evaluate_backdoor(clean_model, graph, result.generator, result.target_class)
        _, _, _, attacked_asr = attack_outcome
        assert clean_asr < attacked_asr
