"""Integration tests: the full threat-model pipeline on a small graph.

These tests exercise the same code paths as the paper's headline experiments
(Table II / Figure 1) end to end: clean condensation, BGC attack, downstream
training, CTA/ASR measurement and the two defenses — but on the small test
graph so the whole module runs in seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import BGC, BGCConfig, TriggerConfig
from repro.attack.selection import SelectionConfig
from repro.condensation import CondensationConfig, make_condenser
from repro.defenses import PruneConfig, PruneDefense, RandSmoothConfig, RandSmoothDefense
from repro.evaluation.pipeline import (
    EvaluationConfig,
    evaluate_backdoor,
    evaluate_clean,
    train_model_on_condensed,
)
from repro.utils.seed import new_rng

from helpers import build_small_graph


@pytest.fixture(scope="module")
def scenario():
    """Run one clean condensation and one BGC attack, shared across tests."""
    graph = build_small_graph(seed=21, nodes_per_class=50, train_per_class=15)
    condensation = CondensationConfig(epochs=10, ratio=0.25)
    evaluation = EvaluationConfig(epochs=80, hidden=16)

    clean_condenser = make_condenser("gcond-x", condensation)
    clean_condensed = clean_condenser.condense(graph, new_rng(1))
    clean_model = train_model_on_condensed(clean_condensed, graph, evaluation, new_rng(2))

    attack = BGC(
        BGCConfig(
            target_class=0,
            poison_ratio=0.2,
            epochs=10,
            surrogate_steps=20,
            generator_steps=2,
            update_batch_size=8,
            trigger=TriggerConfig(trigger_size=3, hidden=16, feature_scale=0.2),
            selection=SelectionConfig(num_clusters=2, selector_epochs=30),
        )
    )
    attacked_condenser = make_condenser("gcond-x", condensation)
    result = attack.run(graph, attacked_condenser, new_rng(3))
    backdoored_model = train_model_on_condensed(result.condensed, graph, evaluation, new_rng(4))

    return {
        "graph": graph,
        "evaluation": evaluation,
        "clean_condensed": clean_condensed,
        "clean_model": clean_model,
        "result": result,
        "backdoored_model": backdoored_model,
    }


class TestThreatModelEndToEnd:
    def test_clean_condensation_preserves_utility(self, scenario):
        graph = scenario["graph"]
        clean_cta = evaluate_clean(scenario["clean_model"], graph)
        assert clean_cta > 0.6

    def test_backdoored_graph_preserves_utility(self, scenario):
        graph = scenario["graph"]
        clean_cta = evaluate_clean(scenario["clean_model"], graph)
        attacked_cta = evaluate_clean(scenario["backdoored_model"], graph)
        # The paper's headline: CTA close to C-CTA (allow a modest gap here).
        assert attacked_cta > clean_cta - 0.25

    def test_attack_success_rate_gap(self, scenario):
        graph = scenario["graph"]
        result = scenario["result"]
        attacked_asr = evaluate_backdoor(
            scenario["backdoored_model"], graph, result.generator, result.target_class
        )
        clean_asr = evaluate_backdoor(
            scenario["clean_model"], graph, result.generator, result.target_class
        )
        assert attacked_asr > 0.7
        assert attacked_asr > clean_asr + 0.3

    def test_condensed_graph_is_small(self, scenario):
        graph = scenario["graph"]
        condensed = scenario["result"].condensed
        assert condensed.num_nodes < graph.num_nodes / 2

    def test_architecture_transfer(self, scenario):
        """Table III: the backdoor transfers to other downstream architectures."""
        graph = scenario["graph"]
        result = scenario["result"]
        transfer_asrs = []
        for architecture in ("sgc", "mlp"):
            model = train_model_on_condensed(
                result.condensed,
                graph,
                EvaluationConfig(architecture=architecture, epochs=60, hidden=16),
                new_rng(10),
            )
            transfer_asrs.append(
                evaluate_backdoor(model, graph, result.generator, result.target_class)
            )
        assert max(transfer_asrs) > 0.5


class TestDefensesEndToEnd:
    def test_prune_defense_pipeline(self, scenario):
        graph = scenario["graph"]
        result = scenario["result"]
        pruned = PruneDefense(PruneConfig(prune_fraction=0.2)).apply_to_condensed(result.condensed)
        model = train_model_on_condensed(pruned, graph, scenario["evaluation"], new_rng(11))
        cta = evaluate_clean(model, graph)
        asr = evaluate_backdoor(model, graph, result.generator, result.target_class)
        assert 0.0 <= cta <= 1.0
        assert 0.0 <= asr <= 1.0

    def test_randsmooth_defense_pipeline(self, scenario):
        graph = scenario["graph"]
        result = scenario["result"]
        smoothed = RandSmoothDefense(RandSmoothConfig(num_samples=3)).wrap(
            scenario["backdoored_model"]
        )
        cta = evaluate_clean(smoothed, graph)
        asr = evaluate_backdoor(smoothed, graph, result.generator, result.target_class)
        assert 0.0 <= cta <= 1.0
        assert 0.0 <= asr <= 1.0


class TestExperimentRunnerSmoke:
    def test_runner_produces_aggregated_cell(self, monkeypatch):
        """ExperimentRunner on a miniature configuration produces a full row."""
        from repro.evaluation.experiment import ExperimentRunner
        import repro.evaluation.experiment as experiment_module

        graph = build_small_graph(seed=31, nodes_per_class=30)
        monkeypatch.setattr(experiment_module, "load_dataset", lambda name, seed=0: graph)

        runner = ExperimentRunner(
            condensation_config=CondensationConfig(epochs=3, ratio=0.3),
            attack_config=BGCConfig(
                poison_ratio=0.3,
                epochs=3,
                surrogate_steps=10,
                generator_steps=1,
                update_batch_size=4,
                trigger=TriggerConfig(trigger_size=2, hidden=8),
                selection=SelectionConfig(num_clusters=2, selector_epochs=10),
            ),
            evaluation_config=EvaluationConfig(epochs=20, hidden=8),
            num_seeds=1,
        )
        cell = runner.run_cell("small-sbm", "gcond-x", ratio=0.3)
        row = cell.as_row()
        assert np.isfinite(row["CTA"])
        assert np.isfinite(row["ASR"])
        assert np.isfinite(row["C-CTA"])
        assert cell.dataset == "small-sbm"
